"""E8 — Fig. 8 / Case study 3: hardware design space vs. latency-area.

Sweeps the memory pool across the three MAC-array sizes at GB bandwidths
128 (low) and 1024 (high) bit/cycle and reproduces the figure's claims:

(a) with a memory-BW-unaware model, all designs of one array size land on
    (almost) the same latency, so the min-area point looks optimal;
(b) at low GB BW the memory hierarchy matters a lot (wide latency spread
    per array size) and a mid-size array can beat the biggest one;
(c) at high GB BW same-array designs cluster again and the largest array
    extends the Pareto front.
"""

import pytest

from repro.dse.arch_search import ArchSearch, ArchSearchConfig
from repro.dse.mapper import MapperConfig
from repro.hardware.pool import MemoryPool
from repro.hardware.presets import KB, array_scales
from repro.workload.generator import dense_layer

from benchmarks.conftest import full_mode


def _pool():
    if full_mode():
        return MemoryPool(
            w_reg_options=(8, 16, 32),
            i_reg_options=(8, 16, 32),
            o_reg_options=(24, 48, 96),
            w_lb_options=tuple(s * KB for s in (4, 8, 16, 32, 64)),
            i_lb_options=tuple(s * KB for s in (2, 4, 8, 16, 32)),
        )
    return MemoryPool(
        w_reg_options=(8,),
        i_reg_options=(8, 32),
        o_reg_options=(24, 96),
        w_lb_options=(8 * KB, 32 * KB),
        i_lb_options=(4 * KB, 16 * KB),
    )


def _layer():
    # A GEMM big enough that every array size is exercised.
    return dense_layer(128, 256, 512)


def _config(gb_bws, bw_aware=True):
    return ArchSearchConfig(
        array_scales=array_scales(),
        pool=_pool(),
        gb_bandwidths=gb_bws,
        bw_aware=bw_aware,
        mapper_config=MapperConfig(max_enumerated=80, samples=50, keep_top=1),
    )


@pytest.fixture(scope="module")
def aware_points():
    return ArchSearch(_config((128.0, 1024.0))).evaluate(_layer())


@pytest.fixture(scope="module")
def unaware_points():
    return ArchSearch(_config((128.0,), bw_aware=False)).evaluate(_layer())


def _subset(points, array=None, gb=None):
    return [
        p for p in points
        if (array is None or p.array_label == array)
        and (gb is None or p.gb_bandwidth == gb)
    ]


def test_design_count_reported(aware_points):
    per_bw = len(_subset(aware_points, gb=128.0))
    print(f"\nCase study 3: {len(aware_points)} designs evaluated "
          f"({per_bw} per GB bandwidth; paper sweeps 4176).")
    assert len(aware_points) == 2 * 3 * len(_pool())


def test_fig8a_unaware_designs_collapse(unaware_points):
    """Same-array designs are indistinguishable without BW awareness."""
    for label in array_scales():
        lats = [p.latency for p in _subset(unaware_points, array=label)]
        assert max(lats) - min(lats) <= 1e-6
    # Hence the min-area design is trivially 'optimal'.
    front = ArchSearch.front(unaware_points)
    min_area = min(p.area_mm2 for p in unaware_points)
    assert any(abs(p.area_mm2 - min_area) < 1e-9 for p in front)


def test_fig8b_low_bw_memory_hierarchy_matters(aware_points):
    """At 128 b/cyc the same array spans a wide latency range."""
    spreads = {}
    for label in array_scales():
        lats = [p.latency for p in _subset(aware_points, array=label, gb=128.0)]
        spreads[label] = (max(lats) - min(lats)) / min(lats)
    print(f"\nlow-BW relative latency spread per array: "
          f"{ {k: f'{v:.1%}' for k, v in spreads.items()} }")
    assert max(spreads.values()) > 0.10


def test_fig8c_high_bw_designs_cluster(aware_points):
    """At 1024 b/cyc the spread shrinks markedly (less SS_overall impact)."""
    def spread(label, gb):
        lats = [p.latency for p in _subset(aware_points, array=label, gb=gb)]
        return (max(lats) - min(lats)) / min(lats)

    for label in array_scales():
        assert spread(label, 1024.0) <= spread(label, 128.0) + 1e-9


def test_fig8_array_size_preference_vs_bw(aware_points):
    """Low BW: the biggest array cannot translate peak into latency.
    High BW: 64x64 extends the Pareto front (fastest overall)."""
    best = {
        (label, gb): min(
            p.latency for p in _subset(aware_points, array=label, gb=gb)
        )
        for label in array_scales()
        for gb in (128.0, 1024.0)
    }
    print("\nbest latency per (array, GB BW):")
    for key, lat in sorted(best.items()):
        print(f"  {key}: {lat:.0f} cc")
    # High BW: bigger array is strictly better.
    assert best[("64x64", 1024.0)] < best[("32x32", 1024.0)] < best[("16x16", 1024.0)]
    # Low BW: the 64x64 advantage collapses (paper: 32x32 can even win).
    gain_high = best[("32x32", 1024.0)] / best[("64x64", 1024.0)]
    gain_low = best[("32x32", 128.0)] / best[("64x64", 128.0)]
    assert gain_low < gain_high


def test_pareto_front_printout(aware_points):
    for gb in (128.0, 1024.0):
        front = ArchSearch.front(_subset(aware_points, gb=gb))
        front.sort(key=lambda p: p.area_mm2)
        print(f"\nFig. 8 Pareto front at GB BW {gb:.0f} b/cyc:")
        for p in front:
            print(f"  {p.array_label:6s} {p.candidate.label():30s} "
                  f"area {p.area_mm2:7.3f} mm2  latency {p.latency:9.0f} cc")
        assert front


def test_bench_one_design_point(benchmark):
    config = _config((128.0,))
    search = ArchSearch(config)
    label, gb, cand, preset = next(search.design_points())
    point = benchmark(search.evaluate_one, _layer(), label, gb, cand, preset)
    assert point is not None
