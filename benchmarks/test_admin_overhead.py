"""Admin-plane overhead: the observability PR must not tax the daemon.

The PR 8 plane — per-request metrics folding, the flight-recorder ring,
phase timing, and a live ``/metrics`` scraper hammering the admin thread
— all runs on every request. This bench drives the same pipelined corpus
through a bare daemon (admin off, the PR 7 configuration) and through a
fully instrumented one (admin listener up, a scrape loop running, slow
threshold armed), and bounds the added per-request cost at <5%.

The margin in the assertion is generous (wire latency on a loopback
socket is noisy at this scale); the honest number lands in
``BENCH_admin.json`` for the trajectory ledger.
"""

import threading
import time
import urllib.request

from conftest import emit_bench_artifact, full_mode

from test_serve_throughput import _ServerThread, _feasible_corpus

from repro.serve import connect


def _drive(handle, by_accel, repeats):
    """Pipelined bursts over the corpus; returns wall seconds."""
    client = connect(handle.server.url, use_cache=False)
    t0 = time.perf_counter()
    for _ in range(repeats):
        for group in by_accel.values():
            eng = client.derive(accelerator=group[0].accelerator)
            results = eng.evaluate_many([c.mapping for c in group])
            assert all(r is not None for r in results)
    wall_s = time.perf_counter() - t0
    stats = client.server_stats()
    client.close()
    return wall_s, stats


def test_admin_plane_overhead_is_bounded(capsys):
    n_cases = 32 if full_mode() else 12
    repeats = 4 if full_mode() else 3
    corpus = _feasible_corpus(n_cases)
    by_accel = {}
    for case in corpus:
        by_accel.setdefault(case.accelerator.fingerprint(), []).append(case)
    requests = len(corpus) * repeats

    # ---- baseline: the PR 7 daemon shape (no admin, no slow log) ----
    with _ServerThread() as handle:
        base_s, base_stats = _drive(handle, by_accel, repeats)
    assert base_stats["requests"] == requests

    # ---- instrumented: admin up + live scraper + slow threshold ----
    with _ServerThread(admin_port=0, slow_ms=1e9) as handle:
        admin = handle.server.admin.url
        stop = threading.Event()
        scrapes = [0]

        def scraper():
            while not stop.is_set():
                with urllib.request.urlopen(admin + "/metrics", timeout=10) as r:
                    r.read()
                scrapes[0] += 1
                time.sleep(0.01)

        t = threading.Thread(target=scraper, daemon=True)
        t.start()
        inst_s, inst_stats = _drive(handle, by_accel, repeats)
        stop.set()
        t.join(timeout=10)
    assert inst_stats["requests"] == requests
    assert len(handle.server.flight) > 0, "flight ring must have recorded"

    overhead = inst_s / max(base_s, 1e-9) - 1.0
    per_request_us = (inst_s - base_s) / requests * 1e6
    payload = {
        "cases": len(corpus),
        "repeats": repeats,
        "requests": requests,
        "baseline_s": round(base_s, 4),
        "instrumented_s": round(inst_s, 4),
        "overhead_pct": round(overhead * 100, 2),
        "per_request_us": round(per_request_us, 1),
        "scrapes_during_run": scrapes[0],
    }
    out = emit_bench_artifact("admin", payload)
    with capsys.disabled():
        print(f"\n[admin] {requests} requests: bare {base_s:.3f}s, "
              f"instrumented {inst_s:.3f}s "
              f"({payload['overhead_pct']:+.1f}%, "
              f"{payload['per_request_us']:+.0f}us/req), "
              f"{scrapes[0]} concurrent scrape(s); artifact {out}")
    # <5% is the design budget; loopback noise dominates at this scale,
    # so fail only when the regression is unambiguous.
    assert overhead < 0.05 + 0.10, (
        f"admin plane added {overhead:.1%} — far past the 5% budget"
    )
