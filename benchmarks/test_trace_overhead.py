"""Observability overhead: the disabled path must be (almost) free.

The tracing/metrics instrumentation rides inside the hot 3-step kernel
(Step 1 emits one span per DTL, Step 2 one per port, Step 3 one per
group), so its *disabled* cost decides whether observability can stay
compiled-in everywhere. The contract, asserted here and tracked per
commit via ``BENCH_observability.json``:

* with no ambient tracer (the default), evaluation through the
  instrumented kernel costs < 5% over the pre-instrumentation baseline —
  approximated by evaluating with the contextvar reads short-circuited
  to the same null objects the default path returns;
* with tracing *enabled*, the slowdown is bounded (spans are cheap
  records, not framework objects) and the span count is proportional to
  the model's work.
"""

import time

from conftest import emit_bench_artifact, make_mapper
from repro.core.model import LatencyModel
from repro.observability import Tracer, use_tracer
from repro.workload.generator import dense_layer


def _mappings(case_preset, count: int = 40):
    mapper = make_mapper(case_preset, enumerated=80, samples=60)
    out = []
    for mapping in mapper.mappings(dense_layer(64, 128, 1200)):
        out.append(mapping)
        if len(out) >= count:
            break
    return out


def _time_evaluations(model, mappings, repeats: int = 3) -> float:
    """Best-of-N wall time of one pass over ``mappings`` (seconds)."""
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        for mapping in mappings:
            model.evaluate(mapping, validate=False)
        best = min(best, time.perf_counter() - t0)
    return best


def _null_site_cost_us(iterations: int = 20_000) -> float:
    """Measured cost of one disabled instrumentation site, in µs.

    A site on the default path does exactly this: one contextvar read,
    one no-op ``span()`` returning the shared :class:`NullSpan`, and the
    null context-manager enter/exit.
    """
    from repro.observability import current_tracer

    t0 = time.perf_counter()
    for __ in range(iterations):
        with current_tracer().span("bench"):
            pass
    return (time.perf_counter() - t0) / iterations * 1e6


def test_disabled_tracing_overhead_under_5_percent(case_preset):
    mappings = _mappings(case_preset)
    model = LatencyModel(case_preset.accelerator)

    # Warm up allocators/caches before timing anything.
    _time_evaluations(model, mappings, repeats=1)

    disabled_s = _time_evaluations(model, mappings)
    disabled_us = disabled_s / len(mappings) * 1e6

    tracer = Tracer()
    with use_tracer(tracer):
        enabled_s = _time_evaluations(model, mappings)
    spans = len(tracer.records)

    # The disabled path hits one null site per *span* in the taxonomy
    # (model.evaluate, step1, step2.ports, step2.served, step3) plus the
    # guard reads; attribute-heavy per-DTL events are gated behind
    # ``tracer.enabled`` and never run. Charging every *enabled* span as
    # if it were a disabled site is therefore a strict upper bound on the
    # instrumentation the disabled path can possibly pay.
    site_us = _null_site_cost_us()
    sites_per_eval = spans / (3 * len(mappings))
    overhead = (site_us * sites_per_eval) / disabled_us
    enabled_ratio = enabled_s / disabled_s

    payload = {
        "mappings": len(mappings),
        "evaluations_timed": 3 * len(mappings),
        "disabled_us_per_eval": disabled_us,
        "enabled_us_per_eval": enabled_s / len(mappings) * 1e6,
        "null_site_us": site_us,
        "sites_per_eval_upper_bound": sites_per_eval,
        "disabled_overhead_pct": overhead * 100.0,
        "enabled_slowdown_x": enabled_ratio,
        "spans_per_pass": spans,
    }
    out = emit_bench_artifact("observability", payload)
    print(f"\nobservability bench written to {out}: "
          f"disabled {payload['disabled_us_per_eval']:.0f} us/eval "
          f"(+{payload['disabled_overhead_pct']:.2f}%), "
          f"enabled {payload['enabled_slowdown_x']:.2f}x, "
          f"{spans} spans")

    assert overhead < 0.05, (
        f"disabled-tracing overhead {overhead:.1%} exceeds the 5% bar"
    )
    # Enabled tracing emits real records; it may cost, but not explode.
    assert enabled_ratio < 10.0
    assert spans > len(mappings)  # at least one span tree per evaluation


def test_null_span_path_allocates_no_records(case_preset):
    """The ambient default records nothing while evaluating."""
    from repro.observability import NULL_TRACER, current_tracer

    mappings = _mappings(case_preset, count=3)
    model = LatencyModel(case_preset.accelerator)
    assert current_tracer() is NULL_TRACER
    for mapping in mappings:
        model.evaluate(mapping, validate=False)
    assert current_tracer() is NULL_TRACER
    assert NULL_TRACER.roots() == []
