"""Ablation benches for the modeling choices DESIGN.md calls out.

Each ablation switches one convention of the analytical model and measures
the accuracy change against the cycle-level simulator over a spread of
mappings (sampled plus best) on the case-study machine:

* ``combine_rule``: printed Eq. (2) vs. the refined busy-deficit bound;
* ``served_rule``: per-memory max (paper) vs. summed streams;
* ``paper_period_count``: Z vs. Z-1 steady-state periods;
* ``residency_extension``: reuse-extended Mem_CC vs. the plain product.
"""

import statistics

import pytest

from repro.core.model import LatencyModel
from repro.core.step1 import ModelOptions
from repro.simulator.engine import CycleSimulator
from repro.simulator.result import accuracy
from repro.workload.generator import dense_layer

from benchmarks.conftest import full_mode, make_mapper


@pytest.fixture(scope="module")
def mapping_spread(case_preset):
    """A spread of mappings: random samples plus the optimized one."""
    layers = [dense_layer(32, 64, 240), dense_layer(64, 128, 1200)]
    if full_mode():
        layers.append(dense_layer(128, 128, 512))
    mappings = []
    for layer in layers:
        sampler = make_mapper(case_preset, enumerated=0, samples=6, seed=3)
        mappings.extend(list(sampler.mappings(layer))[:6])
        mappings.append(make_mapper(case_preset, 200, 150).best_mapping(layer).mapping)
    return mappings


@pytest.fixture(scope="module")
def sim_truth(case_preset, mapping_spread):
    return [
        CycleSimulator(case_preset.accelerator, m).run().total_cycles
        for m in mapping_spread
    ]


def _accuracies(case_preset, mappings, truth, options):
    model = LatencyModel(case_preset.accelerator, options)
    return [
        accuracy(model.evaluate(m, validate=False).total_cycles, t)
        for m, t in zip(mappings, truth)
    ]


def test_ablation_combine_rule(case_preset, mapping_spread, sim_truth):
    refined = _accuracies(case_preset, mapping_spread, sim_truth, ModelOptions())
    printed = _accuracies(
        case_preset, mapping_spread, sim_truth, ModelOptions(combine_rule="paper")
    )
    print(f"\ncombine_rule: refined {statistics.mean(refined):.3f} "
          f"vs printed Eq.(2) {statistics.mean(printed):.3f}")
    assert statistics.mean(refined) >= statistics.mean(printed) - 1e-9


def test_ablation_served_rule(case_preset, mapping_spread, sim_truth):
    chained = _accuracies(case_preset, mapping_spread, sim_truth, ModelOptions())
    maxed = _accuracies(
        case_preset, mapping_spread, sim_truth, ModelOptions(served_rule="paper")
    )
    summed = _accuracies(
        case_preset, mapping_spread, sim_truth, ModelOptions(served_rule="sum")
    )
    print(f"\nserved_rule: chained {statistics.mean(chained):.3f} "
          f"vs max(paper) {statistics.mean(maxed):.3f} "
          f"vs sum {statistics.mean(summed):.3f}")
    # The unconditional sum over-predicts pipelined streams; the separation-
    # gated chain never does worse than either pure rule.
    assert statistics.mean(chained) >= statistics.mean(summed) - 0.02
    assert statistics.mean(chained) >= statistics.mean(maxed) - 0.02
    assert min(chained) >= min(maxed) - 1e-9


def test_ablation_period_count(case_preset, mapping_spread, sim_truth):
    exact = _accuracies(case_preset, mapping_spread, sim_truth, ModelOptions())
    paper_z = _accuracies(
        case_preset, mapping_spread, sim_truth,
        ModelOptions(paper_period_count=True),
    )
    diff = statistics.mean(exact) - statistics.mean(paper_z)
    print(f"\nperiod count: Z-1 {statistics.mean(exact):.4f} "
          f"vs Z {statistics.mean(paper_z):.4f} (delta {diff:+.4f})")
    # A 1/Z-order effect: both conventions must land close together.
    assert abs(diff) < 0.05


def test_ablation_residency_extension_noop_under_greedy(
    case_preset, mapping_spread, sim_truth
):
    """Greedy allocation absorbs irrelevant loops into the level (their
    footprint is free), so the loop directly above every boundary is
    relevant and the residency extension never fires — the two settings
    must agree exactly on mapper-produced mappings."""
    with_ext = _accuracies(case_preset, mapping_spread, sim_truth, ModelOptions())
    without = _accuracies(
        case_preset, mapping_spread, sim_truth,
        ModelOptions(residency_extension=False),
    )
    assert with_ext == pytest.approx(without)


def test_ablation_residency_extension_on_handmade_mapping(case_preset):
    """On a hand-built mapping with an empty register level under an ir
    block, disabling the extension fabricates a refill every cycle."""
    from repro.core.dtl import TrafficKind
    from repro.core.step1 import build_dtls
    from repro.mapping.loop import Loop
    from repro.testing import make_mapping, toy_accelerator
    from repro.workload.dims import LoopDim
    from repro.workload.operand import Operand

    acc = toy_accelerator(reg_bits=8, o_reg_bits=24 * 8)
    layer = dense_layer(8, 4, 4)
    levels = {
        # W register EMPTY, B8 (ir for W) directly above the boundary.
        Operand.W: [[], [Loop(LoopDim.B, 8), Loop(LoopDim.C, 4), Loop(LoopDim.K, 4)]],
        Operand.I: [[], [Loop(LoopDim.B, 8), Loop(LoopDim.C, 4), Loop(LoopDim.K, 4)]],
        Operand.O: [[Loop(LoopDim.B, 8), Loop(LoopDim.C, 4)], [Loop(LoopDim.K, 4)]],
    }
    mapping = make_mapping(layer, {}, levels)

    def w_refill_repeats(options):
        dtls = build_dtls(acc, mapping, options)
        return [
            d.transfer.repeats for d in dtls
            if d.transfer.operand is Operand.W
            and d.transfer.kind is TrafficKind.REFILL
        ][0]

    # With the extension: the weight dwells for 8 cycles (16 tiles, 15 refills).
    assert w_refill_repeats(ModelOptions(compute_edges=False)) == 15
    # Without: a phantom refill every cycle (128 periods, 127 refills).
    assert w_refill_repeats(
        ModelOptions(compute_edges=False, residency_extension=False)
    ) == 127


def test_ablation_step3_overlap_config(case_preset, mapping_spread, sim_truth):
    """Step 3: all-concurrent (max) vs all-sequential (sum) integration.

    The case-study machine's memories genuinely operate in parallel, so the
    concurrent default must track the simulator better than forcing
    serialized integration; sequential integration always predicts >= the
    concurrent latency (by construction)."""
    from repro.hardware.accelerator import StallOverlapConfig

    concurrent = case_preset.accelerator
    sequential = concurrent.replace_stall_overlap(
        StallOverlapConfig.all_sequential(concurrent.memory_names())
    )
    model_c = LatencyModel(concurrent)
    model_s = LatencyModel(sequential)
    accs_c, accs_s = [], []
    for mapping, truth in zip(mapping_spread, sim_truth):
        cc_c = model_c.evaluate(mapping, validate=False).total_cycles
        cc_s = model_s.evaluate(mapping, validate=False).total_cycles
        assert cc_s >= cc_c - 1e-6
        accs_c.append(accuracy(cc_c, truth))
        accs_s.append(accuracy(cc_s, truth))
    print(f"\nstep3 integration: concurrent {statistics.mean(accs_c):.3f} "
          f"vs sequential {statistics.mean(accs_s):.3f}")
    assert statistics.mean(accs_c) >= statistics.mean(accs_s) - 0.02


def test_ablation_compute_edges(case_preset, mapping_spread, sim_truth):
    """Compute-edge DTLs are non-binding on the matched-bus presets."""
    with_edges = _accuracies(case_preset, mapping_spread, sim_truth, ModelOptions())
    without = _accuracies(
        case_preset, mapping_spread, sim_truth, ModelOptions(compute_edges=False)
    )
    assert with_edges == pytest.approx(without)


def test_full_default_configuration_accuracy(case_preset, mapping_spread, sim_truth):
    """The headline number: mean accuracy of the shipped defaults."""
    accs = _accuracies(case_preset, mapping_spread, sim_truth, ModelOptions())
    mean = statistics.mean(accs)
    print(f"\ndefault-config mean accuracy across mapping spread: {mean:.1%} "
          f"(min {min(accs):.1%}) — paper reports 94.3% on its testchip")
    assert mean > 0.90


def test_bench_model_vs_simulator_cost(benchmark, case_preset, mapping_spread):
    """Benchmark: analytical evaluation (the speed argument of Section I)."""
    model = LatencyModel(case_preset.accelerator)
    mapping = mapping_spread[0]
    benchmark(model.evaluate, mapping, False)
