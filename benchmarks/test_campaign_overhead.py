"""Campaign-plane overhead: the no-campaign default must be (almost) free.

The campaign emit sites ride inside every search loop — the mapper's
per-order admit/discard, the climb's per-neighbor accounting, the
sweep's per-point funnel — so their cost with *no* ambient campaign
(the default) decides whether the plane can stay compiled-in. The
contract, asserted here and tracked per commit via
``BENCH_campaign.json``:

* a disabled site costs one contextvar read plus an ``enabled``
  attribute check (the ``current_campaign().enabled`` guard every site
  uses), and the sites-per-evaluation the flows execute stay under 5%
  of kernel time;
* with a campaign *recording*, a real search slows down by a bounded
  factor — funnel updates are plain integer bumps and convergence
  events fire only on improvement.
"""

import time

from conftest import emit_bench_artifact, make_mapper
from repro.core.model import LatencyModel
from repro.observability.campaign import CampaignRecorder, use_campaign
from repro.workload.generator import dense_layer


def _mappings(case_preset, count: int = 40):
    mapper = make_mapper(case_preset, enumerated=80, samples=60)
    out = []
    for mapping in mapper.mappings(dense_layer(64, 128, 1200)):
        out.append(mapping)
        if len(out) >= count:
            break
    return out


def _time_evaluations(model, mappings, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        for mapping in mappings:
            model.evaluate(mapping, validate=False)
        best = min(best, time.perf_counter() - t0)
    return best


def _null_site_cost_us(iterations: int = 50_000) -> float:
    """Measured cost of one disabled campaign site, in µs."""
    from repro.observability.campaign import current_campaign

    t0 = time.perf_counter()
    for __ in range(iterations):
        if current_campaign().enabled:
            raise AssertionError("benchmark requires the null campaign")
    return (time.perf_counter() - t0) / iterations * 1e6


def _time_search(mapper, layer, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        mapper.engine.cache.clear()
        t0 = time.perf_counter()
        mapper.search(layer)
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_campaign_overhead_under_5_percent(case_preset):
    mappings = _mappings(case_preset)
    model = LatencyModel(case_preset.accelerator)
    _time_evaluations(model, mappings, repeats=1)   # warm up

    disabled_s = _time_evaluations(model, mappings)
    disabled_us = disabled_s / len(mappings) * 1e6

    # Sites per evaluation on the disabled path: the mapper fetches the
    # campaign once per search and once per batch flush; per enumerated
    # order it touches only the (null) funnel whose methods are empty.
    # Charging TWO full guard sites per single evaluation is a strict
    # upper bound on what any flow executes.
    site_us = _null_site_cost_us()
    sites_per_eval = 2.0
    overhead = (site_us * sites_per_eval) / disabled_us

    # Enabled cost: the identical search with a recording campaign.
    layer = dense_layer(64, 128, 1200)
    mapper = make_mapper(case_preset, enumerated=60, samples=40)
    base_search_s = _time_search(mapper, layer)
    campaign = CampaignRecorder("bench")
    with use_campaign(campaign):
        enabled_search_s = _time_search(mapper, layer)
    enabled_ratio = enabled_search_s / base_search_s

    payload = {
        "mappings": len(mappings),
        "disabled_us_per_eval": disabled_us,
        "null_site_us": site_us,
        "sites_per_eval_upper_bound": sites_per_eval,
        "disabled_overhead_pct": overhead * 100.0,
        "search_s_no_campaign": base_search_s,
        "search_s_with_campaign": enabled_search_s,
        "enabled_slowdown_x": enabled_ratio,
        "funnel_enumerated": campaign.funnel_totals()["enumerated"],
        "funnel_conserved": 1.0 if campaign.conserved else 0.0,
    }
    out = emit_bench_artifact("campaign", payload)
    print(f"\ncampaign bench written to {out}: "
          f"null site {site_us:.3f} us "
          f"(+{payload['disabled_overhead_pct']:.3f}% of "
          f"{disabled_us:.0f} us/eval), "
          f"recording search {enabled_ratio:.2f}x")

    assert overhead < 0.05, (
        f"disabled-campaign overhead {overhead:.1%} exceeds the 5% bar"
    )
    # The recording search really accounted for its candidates ...
    assert campaign.conserved and campaign.funnel_totals()["enumerated"] > 0
    # ... and integer bumps plus improvement-only events stay bounded.
    assert enabled_ratio < 2.0


def test_null_campaign_path_records_nothing(case_preset):
    """The ambient default accounts nothing while searching."""
    from repro.observability.campaign import NULL_CAMPAIGN, current_campaign

    mapper = make_mapper(case_preset, enumerated=20, samples=10)
    assert current_campaign() is NULL_CAMPAIGN
    mapper.search(dense_layer(16, 32, 60))
    assert current_campaign() is NULL_CAMPAIGN
    assert NULL_CAMPAIGN.phase("mapper").enumerated == 0
