"""E6 — Fig. 6 / Case study 1: mapping vs. latency.

The paper compares two mappings of one Dense layer (CC_ideal = 38 400 on
the 16x16-MAC machine) that a BW-unaware model cannot tell apart:

* **Mapping B** — full output-stationary dataflow: all of O's reuse (C)
  loops at the O-Reg level, only final outputs travel to the GB;
* **Mapping A** — input-reuse-first: K loops at the I-LB level, part of
  the C reuse pushed to the GB level, so partial sums round-trip.

We rebuild both (same layer, same spatial unrolling, identical W
distribution up to capacity cuts) and reproduce the shape claims: equal
``CC_ideal``, a large latency/utilization gap only the temporal-stall-aware
model reveals, the Fig. 6(f) ReqBW-vs-RealBW table (3 072 vs 128 b/cycle on
the GB write port), and the partial-sum traffic anatomy.

Shape note (recorded in EXPERIMENTS.md): with our instantiation of the
unpublished layer/buffer details the *winner flips* — the psum-bearing
mapping A is faster here because full output stationarity forces W/I
re-reads through the same starved GB read port — but every mechanism the
paper uses to explain the gap (psum round trips, GB port saturation,
identical ideal latency) is reproduced and verified against the simulator.
"""

import pytest

from repro.core.baseline import BwUnawareModel
from repro.core.dtl import TrafficKind
from repro.core.model import LatencyModel
from repro.energy.energy_model import EnergyModel
from repro.mapping.mapping import Mapping
from repro.simulator.engine import CycleSimulator
from repro.simulator.result import accuracy
from repro.workload.dims import LoopDim
from repro.workload.operand import Operand

from benchmarks.conftest import make_mapper


def _build(mapper, layer, order):
    order = tuple((LoopDim(d), f) for d, f in order)
    temporal = mapper.allocate(layer, order)
    assert temporal is not None
    return Mapping(layer, mapper.spatial, temporal)


@pytest.fixture(scope="module")
def mappings(case_preset, case1_layer):
    mapper = make_mapper(case_preset)
    # B: all C innermost -> full output stationarity at O-Reg.
    mapping_b = _build(mapper, case1_layer, [
        ("C", 2), ("C", 2), ("C", 2), ("C", 3), ("C", 5), ("C", 5),
        ("K", 2), ("K", 2), ("K", 2), ("B", 2), ("B", 2), ("B", 2),
    ])
    # A: C split (C5 pushed outward), K block right above the inner C chunk
    # so the I-LB holds inputs across all K iterations.
    mapping_a = _build(mapper, case1_layer, [
        ("C", 2), ("C", 2), ("C", 2), ("C", 3), ("C", 5),
        ("K", 2), ("K", 2), ("K", 2), ("B", 2), ("B", 2), ("B", 2), ("C", 5),
    ])
    return mapping_a, mapping_b


@pytest.fixture(scope="module")
def reports(case_preset, mappings):
    model = LatencyModel(case_preset.accelerator)
    energy = EnergyModel(case_preset.accelerator)
    rows = {}
    for name, mapping in zip("AB", mappings):
        rows[name] = {
            "mapping": mapping,
            "report": model.evaluate(mapping),
            "energy": energy.evaluate(mapping),
            "sim": CycleSimulator(case_preset.accelerator, mapping).run(),
        }
    return rows


def test_identical_ideal_latency(reports):
    """Fig. 6(c)(d): both mappings share CC_ideal = 38 400 cycles."""
    assert reports["A"]["report"].cc_ideal == pytest.approx(38400)
    assert reports["B"]["report"].cc_ideal == pytest.approx(38400)
    assert reports["A"]["report"].cc_spatial == reports["B"]["report"].cc_spatial


def test_bw_unaware_model_cannot_distinguish(case_preset, mappings):
    unaware = BwUnawareModel(case_preset.accelerator, include_loading=False)
    a = unaware.evaluate(mappings[0]).total_cycles
    b = unaware.evaluate(mappings[1]).total_cycles
    assert a == pytest.approx(b)


def test_latency_gap_despite_equal_ideal(reports):
    """The stall-aware model separates the mappings by >= 15 %.

    (The paper reports 30 % for its instantiation; ours measures 17-31 %
    depending on the chain-bound convention — the simulator puts the true
    gap at 24 %.)"""
    a = reports["A"]["report"].total_cycles
    b = reports["B"]["report"].total_cycles
    gap = abs(a - b) / max(a, b)
    assert gap > 0.15
    sim_gap = abs(
        reports["A"]["sim"].total_cycles - reports["B"]["sim"].total_cycles
    ) / max(reports["A"]["sim"].total_cycles, reports["B"]["sim"].total_cycles)
    assert sim_gap > 0.20
    # Utilization gap follows (paper: 26 % relative).
    ua = reports["A"]["report"].utilization
    ub = reports["B"]["report"].utilization
    assert abs(ua - ub) / min(ua, ub) > 0.2


def test_fig6f_reqbw_table(reports):
    """GB write: ReqBW 3072 vs RealBW 128 b/cycle (the paper's numbers)."""
    report = reports["B"]["report"]
    gb_wr = report.port_combinations[("GB", "wr")]
    assert gb_wr.req_bw_comb == pytest.approx(3072)
    real_bw = max(d.real_bw for d in gb_wr.dtls if d.memory == "GB")
    assert real_bw == pytest.approx(128)


def test_psum_traffic_anatomy(reports):
    """Mapping A has partial-sum round trips; B flushes final outputs only."""
    def psum_bits(report):
        return sum(
            d.transfer.data_bits * d.transfer.repeats
            for d in report.dtls
            if d.transfer.kind is TrafficKind.PSUM_READBACK and d.memory == "GB"
        )

    assert psum_bits(reports["A"]["report"]) > 0
    assert psum_bits(reports["B"]["report"]) == 0


def test_model_matches_simulator_on_both(reports):
    """B matches tightly; A is conservatively over-predicted by the chain
    bound (its drain stalls partly hide under independent refill stalls),
    still inside the validation band."""
    for name in "AB":
        acc = accuracy(
            reports[name]["report"].total_cycles,
            reports[name]["sim"].total_cycles,
        )
        assert acc > 0.90, name
    assert accuracy(
        reports["B"]["report"].total_cycles, reports["B"]["sim"].total_cycles
    ) > 0.97


def test_case1_table_printout(reports):
    print("\nCase study 1 (Fig. 6) reproduction:")
    print(f"{'':10s} {'CC_ideal':>10s} {'total cc':>10s} {'util':>7s} "
          f"{'energy uJ':>10s} {'sim cc':>10s}")
    for name in "AB":
        r = reports[name]["report"]
        e = reports[name]["energy"]
        s = reports[name]["sim"]
        print(f"Mapping {name}: {r.cc_ideal:10.0f} {r.total_cycles:10.0f} "
              f"{r.utilization:7.1%} {e.total_pj / 1e6:10.3f} {s.total_cycles:10.0f}")
    a, b = reports["A"], reports["B"]
    faster = "A" if a["report"].total_cycles < b["report"].total_cycles else "B"
    slower = "B" if faster == "A" else "A"
    ratio = (reports[slower]["report"].total_cycles
             / reports[faster]["report"].total_cycles)
    print(f"Mapping {faster} is {ratio:.2f}x faster at identical CC_ideal "
          f"(paper: 1.43x for its instantiation).")
    for name in "AB":
        print(f"Mapping {name} O-chain: "
              f"{reports[name]['mapping'].temporal.describe(Operand.O)}")


def test_bench_case1_pair_evaluation(benchmark, case_preset, mappings):
    model = LatencyModel(case_preset.accelerator)

    def run():
        return (model.evaluate(mappings[0], validate=False).total_cycles,
                model.evaluate(mappings[1], validate=False).total_cycles)

    a, b = benchmark(run)
    assert a != b
