"""E2 — Table I: ReqBW determined by memory type and top temporal loop.

=================  ==========  ==============================
memory type        top loop    ReqBW
=================  ==========  ==============================
double-buffered    r or ir     BW0  (mapper sees A/2)
non-DB dual-port   r           BW0
non-DB dual-port   ir          BW0 x top-ir loop size
=================  ==========  ==============================
"""

import pytest

from repro.core.dtl import TrafficKind
from repro.core.step1 import ModelOptions, build_dtls
from repro.mapping.loop import Loop
from repro.mapping.mapping import Mapping
from repro.mapping.spatial import SpatialMapping
from repro.mapping.temporal import TemporalMapping, loops_from_pairs
from repro.workload.dims import LoopDim
from repro.workload.generator import dense_layer
from repro.workload.operand import Operand

from repro.testing import toy_accelerator


def _w_refill(acc, loops, cuts_w):
    layer = dense_layer(8, 4, 4)
    tm = TemporalMapping(
        loops_from_pairs(loops),
        {Operand.W: cuts_w, Operand.I: (0,), Operand.O: (0,)},
    )
    mapping = Mapping(layer, SpatialMapping({}), tm)
    dtls = build_dtls(acc, mapping, ModelOptions(compute_edges=False))
    return [
        d for d in dtls
        if d.transfer.operand is Operand.W and d.transfer.kind is TrafficKind.REFILL
    ][0].transfer


# W level 0 = [C4] with K4 (r) directly above -> the r-top rows.
_R_TOP = ([("C", 4), ("K", 4), ("B", 8)], (1,))
# W level 0 = [K4] with B8 ir directly above -> ir-top rows (top-ir = 8).
_IR_TOP = ([("K", 4), ("B", 8), ("C", 4)], (1,))


def test_row_db_r_top():
    acc = toy_accelerator(reg_bits=64, o_reg_bits=24 * 8, reg_double_buffered=True)
    t = _w_refill(acc, *_R_TOP)
    assert t.req_bw == pytest.approx(t.bw0)
    # Mapper-seen capacity is half the physical (checked on the instance).
    w_reg = acc.memory_by_name("W-Reg").instance
    assert w_reg.mapper_visible_bits == w_reg.size_bits // 2


def test_row_db_ir_top():
    acc = toy_accelerator(reg_bits=64, o_reg_bits=24 * 8, reg_double_buffered=True)
    t = _w_refill(acc, *_IR_TOP)
    assert t.req_bw == pytest.approx(t.bw0)  # DB never scales


def test_row_nondb_r_top():
    acc = toy_accelerator(reg_bits=32, o_reg_bits=24 * 8)
    t = _w_refill(acc, *_R_TOP)
    assert t.req_bw == pytest.approx(t.bw0)
    assert t.x_req == pytest.approx(t.period)


def test_row_nondb_ir_top_scales_by_top_ir():
    acc = toy_accelerator(reg_bits=32, o_reg_bits=24 * 8)
    t = _w_refill(acc, *_IR_TOP)
    assert t.req_bw == pytest.approx(t.bw0 * 8)
    assert t.x_req == pytest.approx(t.period / 8)


def test_multiple_consecutive_ir_loops_multiply():
    """'This minimum BW requirement needs to be scaled up by ALL top ir
    loop sizes.'"""
    acc = toy_accelerator(reg_bits=32, o_reg_bits=24 * 8)
    layer = dense_layer(8, 4, 4)
    tm = TemporalMapping(
        loops_from_pairs([("K", 4), ("B", 2), ("B", 4), ("C", 4)]),
        {Operand.W: (1,), Operand.I: (0,), Operand.O: (0,)},
    )
    mapping = Mapping(layer, SpatialMapping({}), tm)
    t = [
        d for d in build_dtls(acc, mapping, ModelOptions(compute_edges=False))
        if d.transfer.operand is Operand.W and d.transfer.kind is TrafficKind.REFILL
    ][0].transfer
    assert t.req_bw == pytest.approx(t.bw0 * 8)  # B2 x B4


def test_table_printout():
    rows = []
    for db in (True, False):
        acc = toy_accelerator(
            reg_bits=64 if db else 32, o_reg_bits=24 * 8, reg_double_buffered=db
        )
        for label, args in (("r", _R_TOP), ("ir", _IR_TOP)):
            t = _w_refill(acc, *args)
            rows.append((
                "DB" if db else "non-DB", label, t.bw0, t.req_bw, t.req_bw / t.bw0
            ))
    print("\nTable I reproduction (memtype, top-loop, BW0, ReqBW, ratio):")
    for row in rows:
        print(f"  {row[0]:7s} {row[1]:3s} BW0={row[2]:.3f} ReqBW={row[3]:.3f} x{row[4]:.0f}")
    ratios = {(r[0], r[1]): r[4] for r in rows}
    assert ratios[("DB", "r")] == ratios[("DB", "ir")] == 1
    assert ratios[("non-DB", "r")] == 1
    assert ratios[("non-DB", "ir")] == 8


def test_bench_dtl_construction(benchmark, case_preset, case1_layer):
    """Benchmark: Step-1 DTL construction for a real mapping."""
    from benchmarks.conftest import make_mapper

    mapping = next(make_mapper(case_preset, 20, 20).mappings(case1_layer))
    result = benchmark(
        build_dtls, case_preset.accelerator, mapping, ModelOptions()
    )
    assert result
