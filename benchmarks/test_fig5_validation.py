"""E5 — Fig. 5(c): latency-model validation on the in-house accelerator.

The paper validates against RTL simulation of the taped-out chip and
reports 94.3 % average accuracy across hand-tracking NN layers. Our ground
truth is the event-driven cycle-level simulator (see DESIGN.md's
substitution table); the workload is the SSD-MobileNetV1 layer table,
Im2Col-lowered exactly like the chip's RISC-V front-end does.
"""

import pytest

from repro.simulator.engine import CycleSimulator
from repro.simulator.result import accuracy
from repro.workload.im2col import im2col
from repro.workload.networks import validation_layers

from benchmarks.conftest import full_mode, make_mapper


def _validation_set():
    layers = validation_layers()
    return layers if full_mode() else layers[:8]


@pytest.fixture(scope="module")
def validation_rows(inhouse_preset):
    mapper = make_mapper(inhouse_preset, enumerated=200, samples=150)
    rows = []
    for layer in _validation_set():
        lowered = im2col(layer)
        best = mapper.best_mapping(lowered)
        sim = CycleSimulator(inhouse_preset.accelerator, best.mapping).run()
        rows.append(
            {
                "layer": layer.name,
                "macs": layer.total_macs,
                "model_cc": best.report.total_cycles,
                "sim_cc": sim.total_cycles,
                "accuracy": accuracy(best.report.total_cycles, sim.total_cycles),
                "utilization": best.report.utilization,
            }
        )
    return rows


def test_fig5c_table(validation_rows):
    print("\nFig. 5(c) reproduction (model vs cycle-level simulator):")
    print(f"{'layer':10s} {'MACs':>12s} {'model cc':>12s} {'sim cc':>12s} "
          f"{'accuracy':>9s} {'util':>7s}")
    for row in validation_rows:
        print(
            f"{row['layer']:10s} {row['macs']:12d} {row['model_cc']:12.0f} "
            f"{row['sim_cc']:12.0f} {row['accuracy']:9.1%} {row['utilization']:7.1%}"
        )
    mean = sum(r["accuracy"] for r in validation_rows) / len(validation_rows)
    print(f"average accuracy: {mean:.1%} (paper reports 94.3 %)")
    # Shape claim: high average accuracy, comparable to the paper's 94.3 %.
    assert mean >= 0.90
    assert all(r["accuracy"] > 0.75 for r in validation_rows)


def test_validation_spans_layer_sizes(validation_rows):
    macs = [r["macs"] for r in validation_rows]
    assert max(macs) / min(macs) > 50


def test_model_never_absurd(validation_rows):
    for row in validation_rows:
        assert row["model_cc"] >= 0.5 * row["sim_cc"]
        assert row["model_cc"] <= 2.0 * row["sim_cc"]


def test_bench_one_validation_layer(benchmark, inhouse_preset):
    """Benchmark: full model evaluation of one Im2Col'd conv layer."""
    from repro.core.model import LatencyModel

    layer = im2col(_validation_set()[2])
    mapper = make_mapper(inhouse_preset, enumerated=100, samples=60)
    best = mapper.best_mapping(layer)
    model = LatencyModel(inhouse_preset.accelerator)
    report = benchmark(model.evaluate, best.mapping, False)
    assert report.total_cycles > 0
