"""E9 — Section V: the temporal-mapping search space.

The paper's ZigZag mapper produces "30240 valid mappings" for the Case-1
layer on the scaled-down machine. Our mapper enumerates the same kind of
space (multiset permutations of the prime-factorized temporal loops with
capacity-driven allocation); the count depends on the layer's
factorization, so we verify both our Case-1 space and a layer engineered
to yield exactly the paper's 30240 orders.
"""

import itertools

import pytest

from repro.dse.factorize import count_permutations
from repro.workload.generator import dense_layer

from benchmarks.conftest import make_mapper


def test_case1_space_size(case_preset, case1_layer):
    mapper = make_mapper(case_preset)
    size = mapper.space_size(case1_layer)
    print(f"\nCase-1 layer order space: {size} (paper's instance: 30240)")
    assert size == 1_108_800


def test_constructed_layer_with_exactly_30240_orders(case_preset):
    """B=64, K=64, C=4620 on the 16x16 machine: t = (8, 4, 2310);
    atoms = B:2^3, K:2^2, C:{2,3,5,7,11} -> 12!/(3!2!2!) ... engineered to
    9 + ... let us verify the combinatorics directly."""
    # t_B = 8 -> 2,2,2 ; t_K = 4 -> 2,2 ; t_C = 1155 -> 3,5,7,11.
    layer = dense_layer(64, 64, 2310)
    mapper = make_mapper(case_preset)
    atoms = mapper.loop_multiset(layer)
    assert len(atoms) == 9
    assert mapper.space_size(layer) == 30240  # 9! / (3! * 2!)
    assert count_permutations(atoms) == 30240


def test_most_orders_allocate_validly(case_preset, case1_layer):
    """Capacity-driven allocation accepts the bulk of sampled orders."""
    mapper = make_mapper(case_preset, enumerated=0, samples=60)
    total = 0
    valid = 0
    for order in itertools.islice(mapper.orders(case1_layer), 60):
        total += 1
        if mapper.allocate(case1_layer, order) is not None:
            valid += 1
    print(f"\nallocation success: {valid}/{total} sampled orders")
    assert valid / total > 0.9


def test_distinct_allocations_fewer_than_orders(case_preset, case1_layer):
    """Allocation collapses equivalent orders (the dedup the mapper does)."""
    mapper = make_mapper(case_preset, enumerated=0, samples=80)
    mappings = list(itertools.islice(mapper.mappings(case1_layer), 100))
    orders_seen = 80 + 24  # samples + seeds (upper bound)
    assert 0 < len(mappings) <= orders_seen


def test_bench_enumeration_throughput(benchmark, case_preset, case1_layer):
    """Benchmark: enumerating + allocating 50 mappings."""
    mapper = make_mapper(case_preset, enumerated=0, samples=50)

    def run():
        return sum(1 for __ in itertools.islice(mapper.mappings(case1_layer), 50))

    count = benchmark(run)
    assert count > 0


def test_bench_search_smoke(benchmark, case_preset):
    """Benchmark: a full (small) search on a modest layer."""
    layer = dense_layer(32, 32, 96)
    mapper = make_mapper(case_preset, enumerated=60, samples=40)
    result = benchmark(mapper.best_mapping, layer)
    assert result.report.total_cycles > 0
