"""RTL backend throughput: how fast the second oracle simulates.

The register-stage-accurate backend exists for differential verification,
not speed — but its cost bounds how many three-way cases CI can afford,
so the simulated-cycles-per-wall-second rate is tracked per commit as
``BENCH_rtl.json``. The bench also records the event engine's rate on
the same case population, so the artifact shows the price of the second
oracle relative to the first.
"""

import time

import pytest

from repro.simulator.engine import CycleSimulator
from repro.simulator.rtl import RtlSimulator
from repro.verify.generators import sample_cases

from benchmarks.conftest import emit_bench_artifact, full_mode


@pytest.fixture(scope="module")
def population():
    count = 60 if full_mode() else 20
    return sample_cases(seed=5, count=count)


def _throughput(cases, make_sim):
    cycles = 0.0
    t0 = time.perf_counter()
    for case in cases:
        result = make_sim(case).run()
        cycles += result.total_cycles
    wall = time.perf_counter() - t0
    return cycles, wall


def test_emit_rtl_bench_artifact(population):
    """Measure both backends on one population; writes ``BENCH_rtl.json``."""
    rtl_cycles, rtl_s = _throughput(
        population, lambda c: RtlSimulator(c.accelerator, c.mapping)
    )
    event_cycles, event_s = _throughput(
        population, lambda c: CycleSimulator(c.accelerator, c.mapping)
    )
    assert rtl_cycles == pytest.approx(event_cycles, rel=0.6), (
        "backends drifted apart beyond the sim/sim band on the bench "
        "population — run repro-latency verify --backend both"
    )

    payload = {
        "cases": len(population),
        "simulated_cycles": rtl_cycles,
        "rtl_wall_s": rtl_s,
        "rtl_cycles_per_s": rtl_cycles / rtl_s,
        "event_wall_s": event_s,
        "event_cycles_per_s": event_cycles / event_s,
        "rtl_slowdown_vs_event": rtl_s / event_s,
        "rtl_ms_per_case": rtl_s / len(population) * 1e3,
    }
    out = emit_bench_artifact("rtl", payload)
    print(f"\nrtl bench written to {out}: "
          f"{payload['rtl_cycles_per_s']:.0f} cycles/s rtl vs "
          f"{payload['event_cycles_per_s']:.0f} event "
          f"({payload['rtl_slowdown_vs_event']:.1f}x slower, "
          f"{payload['rtl_ms_per_case']:.1f} ms/case)")
    # The three-way CI budget assumes a case is cheap; keep it that way.
    assert payload["rtl_ms_per_case"] < 2000.0


def test_rtl_stride_fast_path_pays_off(population):
    """The stride scheduler must beat the plain tick loop on wall time —
    it is the reason the RTL leg fits in the tier-1 budget."""
    case = max(
        population,
        key=lambda c: RtlSimulator(c.accelerator, c.mapping).run().total_cycles,
    )
    _, fast_s = _throughput([case], lambda c: RtlSimulator(
        c.accelerator, c.mapping, stride=True))
    _, slow_s = _throughput([case], lambda c: RtlSimulator(
        c.accelerator, c.mapping, stride=False))
    fast = RtlSimulator(case.accelerator, case.mapping, stride=True).run()
    slow = RtlSimulator(case.accelerator, case.mapping, stride=False).run()
    assert fast.events <= slow.events
    assert fast.total_cycles == slow.total_cycles
    # Wall-time advantage tracks the iteration advantage; allow noise.
    assert fast_s < slow_s * 1.5
