"""Engine cache and executor benchmarks.

Two claims from the evaluation-engine design are measured here:

1. **Cache**: a network sweep with repeated layer shapes (the common case
   — residual stacks, repeated blocks) runs >= 2x faster through a cached
   engine than through the same engine with caching disabled, with
   identical results. Repeats hit at two levels: per-mapping latency
   reports, and whole memoized search outcomes (both live in the same
   LRU, keyed by canonical fingerprints).
2. **Executor**: the process backend produces byte-identical reports and
   identical mapper rankings; on multi-core hosts it also speeds up a
   cold (cache-disabled) search. The timing half is skipped on
   single-core runners where fan-out cannot win.
"""

import os
import time

import pytest

from repro.analysis.network import NetworkEvaluator
from repro.dse.mapper import MapperConfig, TemporalMapper
from repro.engine import EvaluationEngine
from repro.hardware.presets import case_study_accelerator
from repro.workload.generator import dense_layer


def _repeated_network(repeats: int = 6):
    """A network of 4 distinct shapes, each appearing ``repeats`` times
    under distinct names (as in a real topology)."""
    shapes = [(64, 128, 600), (32, 64, 1200), (64, 64, 2400), (16, 128, 900)]
    return [
        dense_layer(b, k, c, name=f"L{i}_rep{r}")
        for r in range(repeats)
        for i, (b, k, c) in enumerate(shapes)
    ]


def _evaluate_network(use_cache: bool):
    preset = case_study_accelerator()
    engine = EvaluationEngine(preset.accelerator, use_cache=use_cache)
    evaluator = NetworkEvaluator(
        preset,
        mapper_config=MapperConfig(max_enumerated=80, samples=60),
        engine=engine,
    )
    layers = _repeated_network()
    t0 = time.perf_counter()
    result = evaluator.evaluate(layers)
    return time.perf_counter() - t0, result, engine.stats


def test_cache_speedup_on_repeated_network():
    uncached_s, uncached, __ = _evaluate_network(use_cache=False)
    cached_s, cached, stats = _evaluate_network(use_cache=True)
    speedup = uncached_s / cached_s
    print(f"\nRepeated-layer network (24 layers, 4 distinct shapes):")
    print(f"  uncached {uncached_s * 1e3:8.1f} ms")
    print(f"  cached   {cached_s * 1e3:8.1f} ms   ({speedup:.2f}x)")
    print(f"  {stats.summary()}")
    # Identical numbers either way...
    assert cached.total_cycles == uncached.total_cycles
    assert len(cached.layers) == len(uncached.layers)
    # ...but repeats were served from the cache, >= 2x faster end to end.
    assert stats.cache_hits > 0
    assert speedup >= 2.0, f"cache speedup {speedup:.2f}x below the 2x bar"


def test_cache_hits_report_in_stats():
    __, ___, stats = _evaluate_network(use_cache=True)
    assert stats.requests == stats.cache_hits + stats.cache_misses
    assert 0.0 < stats.hit_rate < 1.0
    assert stats.phase_seconds  # at least one phase timed


@pytest.fixture(scope="module")
def search_setup():
    preset = case_study_accelerator()
    layer = dense_layer(64, 128, 1200)
    config = MapperConfig(max_enumerated=400, samples=600)
    return preset, layer, config


def _cold_search(preset, layer, config, engine):
    mapper = TemporalMapper(
        preset.accelerator, preset.spatial_unrolling, config, engine=engine
    )
    t0 = time.perf_counter()
    results = mapper.search(layer)
    return time.perf_counter() - t0, results


def test_parallel_backend_matches_serial(search_setup):
    preset, layer, config = search_setup
    serial_s, serial = _cold_search(
        preset, layer, config, EvaluationEngine(preset.accelerator, use_cache=False)
    )
    with EvaluationEngine(
        preset.accelerator, use_cache=False, executor="process", chunk_size=64
    ) as engine:
        engine.evaluate_many([serial[0].mapping] * 2)  # warm the pool
        parallel_s, parallel = _cold_search(preset, layer, config, engine)
    print(f"\nMapper search ({len(serial)} results kept): "
          f"serial {serial_s * 1e3:.0f} ms, "
          f"process pool {parallel_s * 1e3:.0f} ms "
          f"({serial_s / parallel_s:.2f}x, {os.cpu_count()} cpus)")
    assert [r.objective for r in serial] == [r.objective for r in parallel]
    assert [r.mapping.fingerprint() for r in serial] == [
        r.mapping.fingerprint() for r in parallel
    ]
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-core host: process fan-out cannot beat serial")
    assert parallel_s < serial_s * 1.2, (
        "process backend slower than serial despite multiple cores"
    )
