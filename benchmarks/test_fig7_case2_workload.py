"""E7 — Fig. 7 / Case study 2: workload size vs. latency breakdown.

Sweeps Dense layer dimensions B/K/C between 8 and 512 on the fixed
case-study machine and reproduces:

* Fig. 7(a): operand size shares and total MAC counts per layer;
* Fig. 7(b): the latency breakdown (preload / ideal / spatial stall /
  temporal stall) where *Ideal latency follows total MAC ops but Real
  latency follows total data size*;
* the cyan-dotted-line claim: a BW-unaware model under-predicts
  Output-dominant layers by large factors (paper: 7.4x at (128,128,8),
  9.2x at (512,512,8)).
"""

import math

import pytest

from repro.core.baseline import BwUnawareModel
from repro.workload.dims import LoopDim
from repro.workload.generator import bkc_sweep, dense_layer
from repro.workload.operand import Operand

from benchmarks.conftest import full_mode, make_mapper


def _sweep_layers():
    values = (8, 32, 128, 512) if full_mode() else (8, 128, 512)
    return bkc_sweep(values=values)


@pytest.fixture(scope="module")
def sweep_rows(case_preset):
    mapper = make_mapper(case_preset, enumerated=150, samples=120)
    unaware = BwUnawareModel(case_preset.accelerator)
    rows = []
    for layer in _sweep_layers():
        best = mapper.best_mapping(layer)
        report = best.report
        rows.append(
            {
                "b": layer.size(LoopDim.B),
                "k": layer.size(LoopDim.K),
                "c": layer.size(LoopDim.C),
                "macs": layer.total_macs,
                "data_bits": layer.total_data_bits,
                "o_share": layer.operand_bits(Operand.O) / layer.total_data_bits,
                "report": report,
                "unaware_cc": unaware.evaluate(best.mapping).total_cycles,
            }
        )
    return rows


def test_fig7_breakdown_table(sweep_rows):
    print("\nCase study 2 (Fig. 7) reproduction:")
    print(f"{'(B,K,C)':>15s} {'MACs':>11s} {'data kb':>9s} {'O%':>5s} "
          f"{'preload':>8s} {'ideal':>9s} {'sp.stall':>9s} {'tmp.stall':>10s} "
          f"{'total':>10s} {'unaware':>10s}")
    for row in sweep_rows:
        bd = row["report"].breakdown
        print(
            f"({row['b']:4d},{row['k']:4d},{row['c']:4d}) {row['macs']:11d} "
            f"{row['data_bits'] / 8192:9.1f} {row['o_share']:5.0%} "
            f"{bd.preload:8.0f} {bd.ideal:9.0f} {bd.spatial_stall:9.0f} "
            f"{bd.temporal_stall:10.0f} {bd.total:10.0f} {row['unaware_cc']:10.0f}"
        )
    assert len(sweep_rows) >= 7


def test_ideal_latency_follows_mac_ops(sweep_rows):
    """Fig. 7: 'the Ideal latency matches with Total MAC Ops'."""
    pairs = sorted(
        ((r["macs"], r["report"].cc_ideal) for r in sweep_rows)
    )
    for (m1, i1), (m2, i2) in zip(pairs, pairs[1:]):
        if m1 < m2:
            assert i1 <= i2 + 1e-9


def test_real_latency_follows_data_size(sweep_rows):
    """'the Real latency follows the Total data size' — rank correlation."""
    data = [r["data_bits"] for r in sweep_rows]
    total = [r["report"].total_cycles for r in sweep_rows]

    def ranks(xs):
        order = sorted(range(len(xs)), key=lambda i: xs[i])
        out = [0] * len(xs)
        for rank, i in enumerate(order):
            out[i] = rank
        return out

    rd, rt = ranks(data), ranks(total)
    n = len(rd)
    spearman = 1 - 6 * sum((a - b) ** 2 for a, b in zip(rd, rt)) / (n * (n * n - 1))
    print(f"\nSpearman(total data, real latency) = {spearman:.3f}")
    assert spearman > 0.8


def test_output_dominant_layers_deviate_most(sweep_rows):
    """Large B,K / small C: O-precision bloat + weak output stationarity
    push the Real latency far above Ideal."""
    def deviation(row):
        return row["report"].total_cycles / max(row["report"].cc_ideal, 1)

    o_dominant = [r for r in sweep_rows if r["o_share"] > 0.5]
    compute_dominant = [r for r in sweep_rows if r["o_share"] < 0.1]
    assert o_dominant and compute_dominant
    worst_o = max(deviation(r) for r in o_dominant)
    worst_c = max(deviation(r) for r in compute_dominant)
    assert worst_o > worst_c


def test_bw_unaware_discrepancy_factors(sweep_rows):
    """Paper: 7.4x under-prediction at (128,128,8), 9.2x at (512,512,8)."""
    factors = {}
    for row in sweep_rows:
        key = (row["b"], row["k"], row["c"])
        factors[key] = row["report"].total_cycles / row["unaware_cc"]
    print("\nBW-unaware under-prediction factors:")
    for key in ((128, 128, 8), (512, 512, 8)):
        if key in factors:
            print(f"  {key}: {factors[key]:.1f}x")
    assert factors[(128, 128, 8)] > 3
    assert factors[(512, 512, 8)] > 3
    assert factors[(512, 512, 8)] >= factors[(128, 128, 8)] * 0.8


def test_large_c_layers_converge_to_ideal(sweep_rows):
    """'For larger layer sizes (large C), Ideal computation cycles dominate
    and the deviation reduces.'"""
    big_c = [r for r in sweep_rows if r["c"] == 512 and r["b"] >= 128 and r["k"] >= 128]
    small_c = [r for r in sweep_rows if r["c"] == 8 and r["b"] >= 128 and r["k"] >= 128]
    assert big_c and small_c
    dev_big = min(r["report"].total_cycles / r["report"].cc_ideal for r in big_c)
    dev_small = min(r["report"].total_cycles / r["report"].cc_ideal for r in small_c)
    assert dev_big < dev_small


def test_bench_sweep_single_layer(benchmark, case_preset):
    mapper = make_mapper(case_preset, enumerated=60, samples=40)
    layer = dense_layer(128, 128, 8)
    result = benchmark(mapper.best_mapping, layer)
    assert result.report.total_cycles > 0


def test_math_isfinite(sweep_rows):
    for row in sweep_rows:
        assert math.isfinite(row["report"].total_cycles)
