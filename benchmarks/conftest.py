"""Shared fixtures for the benchmark / experiment-reproduction suite.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md's experiment index). Run with::

    pytest benchmarks/ --benchmark-only            # quick versions
    REPRO_FULL=1 pytest benchmarks/ --benchmark-only   # paper-scale sweeps

Each bench prints the reproduced rows/series (visible with ``-s``) and
asserts the *shape* claims of the paper (who wins, by roughly what factor,
where crossovers fall).
"""

from __future__ import annotations

import os

import pytest

from repro.dse.mapper import MapperConfig, TemporalMapper
from repro.hardware.presets import Preset, case_study_accelerator, inhouse_accelerator
from repro.workload.generator import dense_layer


def full_mode() -> bool:
    """Whether paper-scale sweeps were requested (REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")


@pytest.fixture(scope="session")
def case_preset() -> Preset:
    """The Section-V scaled-down machine (Cases 1 and 2)."""
    return case_study_accelerator()


@pytest.fixture(scope="session")
def inhouse_preset() -> Preset:
    """The Section-IV validation chip."""
    return inhouse_accelerator()


@pytest.fixture(scope="session")
def case1_layer():
    """Dense layer with CC_ideal = 38400 on the 256-MAC machine."""
    return dense_layer(64, 128, 1200)


def make_mapper(preset: Preset, enumerated: int = 300, samples: int = 300,
                seed: int = 0) -> TemporalMapper:
    """Mapper with a benchmark-friendly budget."""
    return TemporalMapper(
        preset.accelerator,
        preset.spatial_unrolling,
        MapperConfig(max_enumerated=enumerated, samples=samples, seed=seed),
    )
