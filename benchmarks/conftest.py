"""Shared fixtures for the benchmark / experiment-reproduction suite.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md's experiment index). Run with::

    pytest benchmarks/ --benchmark-only            # quick versions
    REPRO_FULL=1 pytest benchmarks/ --benchmark-only   # paper-scale sweeps

Each bench prints the reproduced rows/series (visible with ``-s``) and
asserts the *shape* claims of the paper (who wins, by roughly what factor,
where crossovers fall).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict

import pytest

from repro.dse.mapper import MapperConfig, TemporalMapper
from repro.hardware.presets import Preset, case_study_accelerator, inhouse_accelerator
from repro.observability.ledger import RunLedger, RunRecord, git_sha
from repro.workload.generator import dense_layer


def full_mode() -> bool:
    """Whether paper-scale sweeps were requested (REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "0") not in ("0", "", "false")


def emit_bench_artifact(name: str, payload: Dict[str, Any]) -> str:
    """Write ``BENCH_{name}.json`` under ``$BENCH_DIR`` and ledger the run.

    Every bench routes its result payload through here so the numbers
    land twice: as the per-commit JSON artifact CI uploads, and as one
    ``kind="bench"`` row appended to ``$BENCH_DIR/bench_ledger.sqlite``
    — the same append-only store the engine writes evaluation rows to,
    so ``repro-latency diff`` can gate bench trajectories against a
    committed baseline. Returns the JSON artifact path.
    """
    bench_dir = os.environ.get("BENCH_DIR", ".")
    out = os.path.join(bench_dir, f"BENCH_{name}.json")
    with open(out, "w") as handle:
        json.dump(payload, handle, indent=2)

    extra = {
        k: float(v)
        for k, v in _flatten(payload).items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }
    record = RunRecord(
        kind="bench", label=name, ts=time.time(), git_sha=git_sha(), extra=extra
    )
    with RunLedger(os.path.join(bench_dir, "bench_ledger.sqlite")) as ledger:
        ledger.append(record)
    return out


def _flatten(payload: Dict[str, Any], prefix: str = "") -> Dict[str, Any]:
    flat: Dict[str, Any] = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{name}."))
        else:
            flat[name] = value
    return flat


@pytest.fixture(scope="session")
def case_preset() -> Preset:
    """The Section-V scaled-down machine (Cases 1 and 2)."""
    return case_study_accelerator()


@pytest.fixture(scope="session")
def inhouse_preset() -> Preset:
    """The Section-IV validation chip."""
    return inhouse_accelerator()


@pytest.fixture(scope="session")
def case1_layer():
    """Dense layer with CC_ideal = 38400 on the 256-MAC machine."""
    return dense_layer(64, 128, 1200)


def make_mapper(preset: Preset, enumerated: int = 300, samples: int = 300,
                seed: int = 0) -> TemporalMapper:
    """Mapper with a benchmark-friendly budget."""
    return TemporalMapper(
        preset.accelerator,
        preset.spatial_unrolling,
        MapperConfig(max_enumerated=enumerated, samples=samples, seed=seed),
    )
