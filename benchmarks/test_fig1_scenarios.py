"""E1 — Fig. 1(b): the four computation-phase scenarios.

Builds one mapping per scenario on the case-study machine and checks the
table's latency / utilization formulas, then benchmarks a full model
evaluation.
"""

import pytest

from repro.core.baseline import BwUnawareModel
from repro.core.model import LatencyModel
from repro.core.scenarios import classify
from repro.workload.generator import dense_layer

from benchmarks.conftest import make_mapper


def _best(preset, layer):
    return make_mapper(preset, enumerated=100, samples=80).best_mapping(layer)


def test_scenario1_ideal(case_preset):
    """Full spatial + generous BW: CC = CC_ideal, U = 100 %."""
    from repro.hardware.presets import case_study_accelerator

    fast = case_study_accelerator(gb_read_bw=65536.0)
    layer = dense_layer(64, 32, 60)  # divides the unrolling exactly
    best = make_mapper(fast, enumerated=100, samples=80).best_mapping(layer)
    report = best.report
    q = classify(best.mapping, fast.accelerator.mac_array.size, report.ss_overall)
    assert q.scenario in (1, 3)
    if q.scenario == 1:
        assert q.utilization == pytest.approx(1.0)
    assert report.cc_spatial == pytest.approx(report.cc_ideal)


def test_scenario2_spatial_underuse(case_preset):
    """Layer dims below the unrolling: CC = CC_spatial > CC_ideal."""
    from repro.hardware.presets import case_study_accelerator

    fast = case_study_accelerator(gb_read_bw=65536.0)
    layer = dense_layer(4, 8, 60)  # B=4 < 8, K=8 < 16
    best = make_mapper(fast, enumerated=100, samples=80).best_mapping(layer)
    q = classify(best.mapping, fast.accelerator.mac_array.size, best.report.ss_overall)
    assert not q.spatially_full
    assert q.cc_spatial > q.cc_ideal
    assert q.utilization == pytest.approx(q.cc_ideal / q.latency)


def test_scenario3_temporal_stall(case_preset, case1_layer):
    """BW-starved GB: CC = CC_ideal + SS_overall (spatially full)."""
    best = _best(case_preset, case1_layer)
    q = classify(best.mapping, case_preset.accelerator.mac_array.size,
                 best.report.ss_overall)
    assert q.scenario == 3
    assert q.spatially_full and not q.temporally_full
    assert q.latency == pytest.approx(q.cc_ideal + q.temporal_stall)


def test_scenario4_both_stalls(case_preset):
    layer = dense_layer(4, 8, 4800)  # spatially AND temporally starved
    best = _best(case_preset, layer)
    q = classify(best.mapping, case_preset.accelerator.mac_array.size,
                 best.report.ss_overall)
    if q.temporal_stall > 0:
        assert q.scenario == 4
        assert q.latency == pytest.approx(q.cc_spatial + q.temporal_stall)


def test_scenario_table_printout(case_preset, case1_layer):
    """Print the reproduced Fig. 1(b)-style row for the Case-1 layer."""
    best = _best(case_preset, case1_layer)
    q = classify(best.mapping, 256, best.report.ss_overall)
    print(
        f"\nFig1(b) row: scenario={q.scenario} CC_ideal={q.cc_ideal:.0f} "
        f"CC_spatial={q.cc_spatial} SS_overall={q.ss_overall:.0f} "
        f"latency={q.latency:.0f} U={q.utilization:.1%}"
    )
    unaware = BwUnawareModel(case_preset.accelerator).evaluate(best.mapping)
    assert unaware.ss_overall == 0


def test_bench_model_evaluation(benchmark, case_preset, case1_layer):
    """Benchmark: one full 3-step model evaluation."""
    best = _best(case_preset, case1_layer)
    model = LatencyModel(case_preset.accelerator)
    report = benchmark(model.evaluate, best.mapping, False)
    assert report.total_cycles > 0
