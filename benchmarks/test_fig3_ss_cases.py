"""E3 — Fig. 3: six timeline cases of memory-induced stall/slack.

(a)(b)(c): double-buffered memory or non-DB with an r loop on top — the
update can overlap computation fully (X_REQ = Mem_CC).
(d)(e)(f): non-DB with an ir loop on top — a keep-out zone shrinks the
window (X_REQ < Mem_CC).
Columns: SS_u = 0 (X_REAL = X_REQ), SS_u < 0 (slack), SS_u > 0 (stall).
"""

import pytest

from repro.analysis.timeline import render_timeline
from repro.core.dtl import TrafficKind
from repro.core.step1 import ModelOptions, build_dtls
from repro.mapping.mapping import Mapping
from repro.mapping.spatial import SpatialMapping
from repro.mapping.temporal import TemporalMapping, loops_from_pairs
from repro.testing import toy_accelerator
from repro.workload.generator import dense_layer
from repro.workload.operand import Operand

# W level 0 holds [C4]; K4 (r) directly above -> full-period window (a-c).
_R_TOP_LOOPS = ([("C", 4), ("K", 4), ("B", 8)], (1,))
# W level 0 holds [K4]; B8 ir directly above -> keep-out zone (cases d-f).
_IR_TOP_LOOPS = ([("K", 4), ("B", 8), ("C", 4)], (1,))


def _gb_side_w_refill(acc, loops, cuts_w):
    layer = dense_layer(8, 4, 4)
    tm = TemporalMapping(
        loops_from_pairs(loops),
        {Operand.W: cuts_w, Operand.I: (0,), Operand.O: (0,)},
    )
    mapping = Mapping(layer, SpatialMapping({}), tm)
    dtls = build_dtls(acc, mapping, ModelOptions(compute_edges=False))
    return [
        d for d in dtls
        if d.transfer.operand is Operand.W
        and d.transfer.kind is TrafficKind.REFILL
        and d.memory == "GB"
    ][0]


# (case label, loops, db?, gb read bw, expected SS_u sign)
# X_REQ: r-top/db -> full period (data 32b over P=4 cycles -> 8 b/cyc par);
# ir-top non-db -> window P/8.
_CASES = [
    ("a", _R_TOP_LOOPS, True, 8.0, 0),      # X_REAL = X_REQ
    ("b", _R_TOP_LOOPS, True, 32.0, -1),    # X_REAL < X_REQ: slack
    ("c", _R_TOP_LOOPS, False, 4.0, 1),     # X_REAL > X_REQ: stall
    ("d", _IR_TOP_LOOPS, False, 8.0, 0),    # keep-out, exactly met
    ("e", _IR_TOP_LOOPS, False, 16.0, -1),  # keep-out, slack
    ("f", _IR_TOP_LOOPS, False, 4.0, 1),    # keep-out, stall
]


@pytest.mark.parametrize("label,loop_spec,db,bw,sign", _CASES)
def test_case_sign(label, loop_spec, db, bw, sign):
    acc = toy_accelerator(
        reg_bits=64 if db else 32, o_reg_bits=24 * 8,
        reg_double_buffered=db, gb_read_bw=bw,
    )
    dtl = _gb_side_w_refill(acc, *loop_spec)
    if label == "d":
        # Case (d): X_REQ < Mem_CC yet SS_u = 0 because X_REAL matches.
        assert dtl.x_req < dtl.transfer.period
    if sign == 0:
        assert dtl.ss_u == pytest.approx(0.0, abs=1e-9)
    elif sign < 0:
        assert dtl.ss_u < 0
    else:
        assert dtl.ss_u > 0


def test_cases_a_and_d_same_ss_different_window():
    """Fig. 3 note: (a) and (d) both have SS_u = 0 despite different types."""
    acc_a = toy_accelerator(reg_bits=64, o_reg_bits=24 * 8,
                            reg_double_buffered=True, gb_read_bw=8.0)
    acc_d = toy_accelerator(reg_bits=32, o_reg_bits=24 * 8, gb_read_bw=8.0)
    a = _gb_side_w_refill(acc_a, *_R_TOP_LOOPS)
    d = _gb_side_w_refill(acc_d, *_IR_TOP_LOOPS)
    assert a.ss_u == pytest.approx(0.0)
    assert d.ss_u == pytest.approx(0.0)
    assert a.x_req == pytest.approx(a.transfer.period)
    assert d.x_req < d.transfer.period


def test_render_all_six_timelines():
    print()
    for label, loop_spec, db, bw, __ in _CASES:
        acc = toy_accelerator(
            reg_bits=64 if db else 32, o_reg_bits=24 * 8,
            reg_double_buffered=db, gb_read_bw=bw,
        )
        dtl = _gb_side_w_refill(acc, *loop_spec)
        text = render_timeline(dtl, periods=3)
        print(f"--- Fig.3({label}) ---")
        print(text)
        assert "comp:" in text


def test_bench_timeline_rendering(benchmark):
    acc = toy_accelerator(reg_bits=32, o_reg_bits=24 * 8, gb_read_bw=4.0)
    dtl = _gb_side_w_refill(acc, *_IR_TOP_LOOPS)
    text = benchmark(render_timeline, dtl)
    assert "mem:" in text
