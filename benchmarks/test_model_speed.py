"""E12 — the Section-I speed argument: analytical beats cycle-level.

"Analytical models are preferred for early-phase DSE, thanks to their fast
run-time (orders of magnitude faster than others)." The analytical model's
cost is set by the number of DTLs — *independent of the layer's cycle
count* — while a cycle-level simulator scales with the number of transfer
jobs (~ cycles). This bench measures both runtimes across a 64x range of
layer sizes and asserts the scaling separation.
"""

import time

import pytest

from repro.core.batch import BatchEvaluator
from repro.core.model import LatencyModel
from repro.dse.mapper import MapperConfig, TemporalMapper
from repro.engine import EvaluationEngine
from repro.simulator.engine import CycleSimulator
from repro.workload.generator import dense_layer

from benchmarks.conftest import emit_bench_artifact, full_mode, make_mapper


def _timed(fn, repeat=3):
    best = float("inf")
    for __ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def scaling_rows(case_preset):
    model = LatencyModel(case_preset.accelerator)
    rows = []
    for c in (150, 600, 2400, 9600):
        layer = dense_layer(64, 128, c)
        mapper = make_mapper(case_preset, enumerated=80, samples=60)
        mapping = mapper.best_mapping(layer).mapping
        model_s = _timed(lambda: model.evaluate(mapping, validate=False))
        sim_s = _timed(lambda: CycleSimulator(case_preset.accelerator, mapping).run(), repeat=1)
        rows.append(
            {
                "cycles": mapping.spatial_cycles,
                "model_s": model_s,
                "sim_s": sim_s,
                "speedup": sim_s / model_s,
            }
        )
    return rows


def test_speed_table(scaling_rows):
    print("\nModel-vs-simulator runtime scaling:")
    print(f"{'CC_spatial':>12s} {'model ms':>10s} {'sim ms':>10s} {'speedup':>9s}")
    for row in scaling_rows:
        print(f"{row['cycles']:12d} {row['model_s'] * 1e3:10.2f} "
              f"{row['sim_s'] * 1e3:10.1f} {row['speedup']:8.0f}x")
    # Orders of magnitude faster on non-trivial layers.
    assert scaling_rows[-1]["speedup"] > 100


def test_model_runtime_nearly_size_independent(scaling_rows):
    """64x more cycles must not cost anywhere near 64x model time."""
    growth = scaling_rows[-1]["model_s"] / scaling_rows[0]["model_s"]
    cycle_growth = scaling_rows[-1]["cycles"] / scaling_rows[0]["cycles"]
    assert growth < cycle_growth / 4


def test_simulator_runtime_grows_with_cycles(scaling_rows):
    assert scaling_rows[-1]["sim_s"] > scaling_rows[0]["sim_s"]


def test_bench_model_largest_layer(benchmark, case_preset):
    layer = dense_layer(64, 128, 9600)
    mapper = make_mapper(case_preset, enumerated=60, samples=40)
    mapping = mapper.best_mapping(layer).mapping
    model = LatencyModel(case_preset.accelerator)
    report = benchmark(model.evaluate, mapping, False)
    assert report.total_cycles > 0


def test_emit_batch_bench_artifact(case_preset):
    """Batch-vs-scalar sweep throughput; writes ``BENCH_batch.json``.

    The SoA batch evaluator must reproduce the scalar model bit-for-bit
    while evaluating a realistic mapper sweep an order of magnitude
    faster — the acceptance bar of the vectorized core. Measured both
    materialized (one ``LatencyReport`` per mapping, what the engine
    consumes) and slim (arrays only, what array-level DSE loops consume).
    """
    layer = dense_layer(64, 128, 1200)
    budget = 4000 if full_mode() else 2000
    mapper = make_mapper(case_preset, enumerated=2 * budget, samples=budget)
    mappings = []
    for mapping in mapper.mappings(layer):
        mappings.append(mapping)
        if len(mappings) >= budget:
            break
    model = LatencyModel(case_preset.accelerator)
    evaluator = BatchEvaluator(case_preset.accelerator)

    t0 = time.perf_counter()
    scalar = [model.evaluate(m, validate=False) for m in mappings]
    scalar_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch = evaluator.evaluate(mappings, materialize=True)
    batch_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    slim = evaluator.evaluate(mappings, materialize=False)
    slim_s = time.perf_counter() - t0

    mismatches = sum(
        1 for s, b in zip(scalar, batch.reports)
        if (s.total_cycles, s.ss_overall, s.preload, s.offload, s.scenario)
        != (b.total_cycles, b.ss_overall, b.preload, b.offload, b.scenario)
    )
    n = len(mappings)
    payload = {
        "mappings": n,
        "scalar_us_per_mapping": scalar_s / n * 1e6,
        "batch_us_per_mapping": batch_s / n * 1e6,
        "slim_us_per_mapping": slim_s / n * 1e6,
        "speedup_materialized": scalar_s / batch_s,
        "speedup_slim": scalar_s / slim_s,
        "mismatches": mismatches,
    }
    out = emit_bench_artifact("batch", payload)
    print(f"\nbatch bench written to {out}: "
          f"scalar {payload['scalar_us_per_mapping']:.0f} us/map, "
          f"batch {payload['batch_us_per_mapping']:.1f} us/map "
          f"({payload['speedup_materialized']:.1f}x, "
          f"slim {payload['speedup_slim']:.1f}x)")
    assert mismatches == 0
    assert slim.total_cycles.tolist() == [r.total_cycles for r in scalar]
    assert payload["speedup_materialized"] >= 10.0
    assert payload["speedup_slim"] >= 10.0


def test_emit_engine_bench_artifact(case_preset, tmp_path_factory):
    """Measure the engine's evaluation paths and write ``BENCH_engine.json``.

    CI uploads the file as a build artifact, so engine performance
    (kernel evaluation rate, cache hit cost, repeated-sweep hit rate) is
    tracked per commit. The output path honors ``BENCH_DIR`` (defaults
    to the working directory).
    """
    layer = dense_layer(64, 128, 1200)
    mapper = make_mapper(case_preset, enumerated=80, samples=60)
    mappings = []
    for mapping in mapper.mappings(layer):
        mappings.append(mapping)
        if len(mappings) >= 50:
            break

    cold = EvaluationEngine(case_preset.accelerator, use_cache=False)
    t0 = time.perf_counter()
    cold.evaluate_many(mappings)
    cold_s = time.perf_counter() - t0

    warm = EvaluationEngine(case_preset.accelerator)
    warm.evaluate_many(mappings)  # populate
    t0 = time.perf_counter()
    warm.evaluate_many(mappings)  # all hits
    hit_s = time.perf_counter() - t0

    payload = {
        "mappings": len(mappings),
        "uncached_eval_us": cold_s / len(mappings) * 1e6,
        "cache_hit_us": hit_s / len(mappings) * 1e6,
        "hit_vs_eval_speedup": cold_s / hit_s if hit_s else None,
        "stats": warm.stats.snapshot(),
    }
    out = emit_bench_artifact("engine", payload)
    print(f"\nengine bench written to {out}: "
          f"eval {payload['uncached_eval_us']:.0f} us, "
          f"hit {payload['cache_hit_us']:.1f} us")
    assert payload["stats"]["cache_hits"] >= len(mappings)
    assert hit_s < cold_s
