"""E11 — the title claim: one model, diverse architectures and dataflows.

Runs the SAME workload through architecturally different machines — the
dual-ported per-operand-LB case-study chip, a shared-LB machine with
single read/write ports everywhere, a machine with a deep (three-level)
output hierarchy, and a double-buffered-register variant — evaluates
several dataflow styles on each, and checks the uniform model against the
cycle-level simulator on every (architecture, dataflow) pair.
"""

import itertools

import pytest

from repro.core.model import LatencyModel
from repro.dse.mapper import MapperConfig, TemporalMapper
from repro.hardware.presets import (
    build_accelerator,
    case_study_accelerator,
    shared_lb_accelerator,
)
from repro.simulator.engine import CycleSimulator
from repro.simulator.result import accuracy
from repro.workload.generator import dense_layer


def _machines():
    return {
        "dual-port-LBs": case_study_accelerator(),
        "shared-LB-single-RW": shared_lb_accelerator(),
        "db-registers": build_accelerator(
            "db-regs-16x16", macs_k=16, macs_b=8, macs_c=2,
            w_reg_bits=16, i_reg_bits=16,  # room for ping-pong halves
            gb_read_bw=128.0,
        ),
        "high-bw-gb": case_study_accelerator(gb_read_bw=1024.0),
    }


@pytest.fixture(scope="module")
def rows():
    layer = dense_layer(32, 64, 240)
    out = []
    for arch_name, preset in _machines().items():
        mapper = TemporalMapper(
            preset.accelerator, preset.spatial_unrolling,
            MapperConfig(max_enumerated=0, samples=4, seed=7),
        )
        mappings = list(itertools.islice(mapper.mappings(layer), 4))
        mappings.append(
            TemporalMapper(
                preset.accelerator, preset.spatial_unrolling,
                MapperConfig(max_enumerated=120, samples=80),
            ).best_mapping(layer).mapping
        )
        model = LatencyModel(preset.accelerator)
        for index, mapping in enumerate(mappings):
            report = model.evaluate(mapping, validate=False)
            sim = CycleSimulator(preset.accelerator, mapping).run()
            out.append(
                {
                    "arch": arch_name,
                    "mapping": f"m{index}" if index < 4 else "best",
                    "model": report.total_cycles,
                    "sim": sim.total_cycles,
                    "accuracy": accuracy(report.total_cycles, sim.total_cycles),
                }
            )
    return out


def test_generality_table(rows):
    print("\nUniformity across architectures (model vs simulator):")
    for row in rows:
        print(f"  {row['arch']:22s} {row['mapping']:5s} model {row['model']:9.0f} "
              f"sim {row['sim']:9.0f}  acc {row['accuracy']:6.1%}")
    by_arch = {}
    for row in rows:
        by_arch.setdefault(row["arch"], []).append(row["accuracy"])
    for arch, accs in by_arch.items():
        mean = sum(accs) / len(accs)
        print(f"  {arch:22s} mean accuracy {mean:6.1%}")
        assert mean > 0.85, arch


def test_every_architecture_produces_stall_anatomy(rows):
    assert {r["arch"] for r in rows} == set(_machines())
    assert all(r["model"] > 0 and r["sim"] > 0 for r in rows)


def test_bench_model_across_architectures(benchmark):
    layer = dense_layer(32, 64, 240)
    machines = _machines()
    mappings = {}
    for name, preset in machines.items():
        mapper = TemporalMapper(
            preset.accelerator, preset.spatial_unrolling,
            MapperConfig(max_enumerated=30, samples=20),
        )
        mappings[name] = next(mapper.mappings(layer))

    def run():
        total = 0.0
        for name, preset in machines.items():
            report = LatencyModel(preset.accelerator).evaluate(
                mappings[name], validate=False
            )
            total += report.total_cycles
        return total

    assert benchmark(run) > 0
