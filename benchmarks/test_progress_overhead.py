"""Progress-event overhead: the no-emitter default must be (almost) free.

The telemetry emit sites ride inside every long-running flow — the
engine's per-chunk loop, the mapper's incumbent updates, the sweep's
per-point advance — so their cost with *no* ambient emitter (the
default) decides whether the event stream can stay compiled-in
everywhere. The contract, asserted here and tracked per commit via
``BENCH_progress.json``:

* a disabled emit site costs one contextvar read plus an ``enabled``
  attribute check (the ``current_emitter().enabled`` guard every site
  uses), and the sites-per-evaluation the flows actually execute stay
  under 5% of kernel time;
* with an emitter *enabled* and a real search running, the slowdown is
  bounded (events are frozen dataclasses fanned to plain callables).
"""

import time

from conftest import emit_bench_artifact, make_mapper
from repro.core.model import LatencyModel
from repro.observability import ProgressEmitter, use_emitter
from repro.workload.generator import dense_layer


def _mappings(case_preset, count: int = 40):
    mapper = make_mapper(case_preset, enumerated=80, samples=60)
    out = []
    for mapping in mapper.mappings(dense_layer(64, 128, 1200)):
        out.append(mapping)
        if len(out) >= count:
            break
    return out


def _time_evaluations(model, mappings, repeats: int = 3) -> float:
    """Best-of-N wall time of one pass over ``mappings`` (seconds)."""
    best = float("inf")
    for __ in range(repeats):
        t0 = time.perf_counter()
        for mapping in mappings:
            model.evaluate(mapping, validate=False)
        best = min(best, time.perf_counter() - t0)
    return best


def _null_site_cost_us(iterations: int = 50_000) -> float:
    """Measured cost of one disabled emit site, in µs.

    A site on the default path does exactly this: one contextvar read
    and one ``enabled`` check that short-circuits everything else.
    """
    from repro.observability import current_emitter

    t0 = time.perf_counter()
    for __ in range(iterations):
        if current_emitter().enabled:
            raise AssertionError("benchmark requires the null emitter")
    return (time.perf_counter() - t0) / iterations * 1e6


def _time_search(mapper, layer, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        mapper.engine.cache.clear()
        t0 = time.perf_counter()
        mapper.search(layer)
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_progress_overhead_under_5_percent(case_preset):
    mappings = _mappings(case_preset)
    model = LatencyModel(case_preset.accelerator)

    # Warm up allocators/caches before timing anything.
    _time_evaluations(model, mappings, repeats=1)

    disabled_s = _time_evaluations(model, mappings)
    disabled_us = disabled_s / len(mappings) * 1e6

    # Sites per evaluation on the disabled path: the engine checks the
    # emitter once per batch and once per chunk (chunks hold >= 1
    # mapping), the mapper once per search plus once per incumbent
    # candidate. Charging TWO full sites per single evaluation is a
    # strict upper bound on what any flow executes.
    site_us = _null_site_cost_us()
    sites_per_eval = 2.0
    overhead = (site_us * sites_per_eval) / disabled_us

    # Enabled cost: a real mapper search streaming into a throwaway
    # subscriber, against the identical search with the default emitter.
    layer = dense_layer(64, 128, 1200)
    mapper = make_mapper(case_preset, enumerated=60, samples=40)
    base_search_s = _time_search(mapper, layer)
    emitter = ProgressEmitter()
    sink_count = [0]
    emitter.subscribe(lambda _event: sink_count.__setitem__(0, sink_count[0] + 1))
    with use_emitter(emitter):
        enabled_search_s = _time_search(mapper, layer)
    enabled_ratio = enabled_search_s / base_search_s

    payload = {
        "mappings": len(mappings),
        "disabled_us_per_eval": disabled_us,
        "null_site_us": site_us,
        "sites_per_eval_upper_bound": sites_per_eval,
        "disabled_overhead_pct": overhead * 100.0,
        "search_s_no_emitter": base_search_s,
        "search_s_with_emitter": enabled_search_s,
        "enabled_slowdown_x": enabled_ratio,
        "events_per_search": sink_count[0] / 3.0,
    }
    out = emit_bench_artifact("progress", payload)
    print(f"\nprogress bench written to {out}: "
          f"null site {site_us:.3f} us "
          f"(+{payload['disabled_overhead_pct']:.3f}% of "
          f"{disabled_us:.0f} us/eval), "
          f"enabled search {enabled_ratio:.2f}x")

    assert overhead < 0.05, (
        f"disabled-progress overhead {overhead:.1%} exceeds the 5% bar"
    )
    assert sink_count[0] > 0  # the enabled search really streamed events
    # Enabled streaming emits real events; it may cost, but not explode.
    assert enabled_ratio < 10.0


def test_null_emitter_path_emits_nothing(case_preset):
    """The ambient default streams no events while evaluating."""
    from repro.observability import NULL_EMITTER, current_emitter

    mappings = _mappings(case_preset, count=3)
    model = LatencyModel(case_preset.accelerator)
    assert current_emitter() is NULL_EMITTER
    for mapping in mappings:
        model.evaluate(mapping, validate=False)
    assert current_emitter() is NULL_EMITTER
    assert NULL_EMITTER.current_run() is None
