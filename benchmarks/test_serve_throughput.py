"""Evaluation-service benchmarks: throughput, coalescing, warm start.

Three claims from the PR 7 service design are measured against a live
daemon on an ephemeral port:

1. **Throughput**: the wire adds overhead, but a pipelined
   ``evaluate_many`` burst amortizes it — per-evaluation cost over the
   socket stays within an order of magnitude of in-process.
2. **Coalescing**: N clients asking for the same fingerprint while it is
   in flight cost one kernel run, not N.
3. **Warm start**: a daemon restarted over the previous run's ledger
   answers the whole corpus from the persistent store — zero
   re-evaluations. The hit counts land in ``BENCH_serve.json``.
"""

import asyncio
import threading
import time

from conftest import emit_bench_artifact, full_mode

from repro.engine import EvaluationEngine
from repro.hardware.presets import case_study_accelerator
from repro.mapping.mapping import MappingError
from repro.observability.ledger import RunLedger
from repro.serve import EvaluationServer, ServerConfig, connect
from repro.verify.generators import sample_cases


class _ServerThread:
    def __init__(self, **overrides):
        overrides.setdefault("preset", case_study_accelerator())
        self.server = EvaluationServer(ServerConfig(**overrides))
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self.server.run(install_signal_handlers=False))

    def __enter__(self):
        self.thread.start()
        deadline = time.time() + 10
        while not self.server.started_ts:
            if time.time() > deadline:  # pragma: no cover
                raise RuntimeError("server did not start")
            time.sleep(0.01)
        return self

    def __exit__(self, *exc):
        try:
            client = connect(self.server.url)
            client.shutdown()
            client.close()
        except Exception:
            asyncio.run_coroutine_threadsafe(
                self.server.drain(), self.server.loop
            )
        self.thread.join(timeout=10)


def _feasible_corpus(count):
    """(accelerator, mapping) pairs that evaluate cleanly, grouped by fp."""
    corpus = []
    for case in sample_cases(seed=23, count=count * 2):
        engine = EvaluationEngine(case.accelerator, executor="serial")
        try:
            engine.evaluate(case.mapping)
        except MappingError:
            continue
        corpus.append(case)
        if len(corpus) == count:
            break
    return corpus


def test_serve_throughput_coalescing_and_warm_start(tmp_path, capsys):
    n_cases = 48 if full_mode() else 16
    corpus = _feasible_corpus(n_cases)
    by_accel = {}
    for case in corpus:
        by_accel.setdefault(case.accelerator.fingerprint(), []).append(case)

    # ---- in-process reference timing (cold engine per accelerator) ----
    t0 = time.perf_counter()
    for fp, group in by_accel.items():
        engine = EvaluationEngine(group[0].accelerator, executor="serial")
        for case in group:
            engine.evaluate(case.mapping)
    local_s = time.perf_counter() - t0

    ledger_path = str(tmp_path / "serve_bench.sqlite")

    # ---- cold remote pass: pipelined bursts per accelerator ----
    with _ServerThread(ledger=RunLedger(ledger_path)) as handle:
        client = connect(handle.server.url, use_cache=False)
        t0 = time.perf_counter()
        for fp, group in by_accel.items():
            eng = client.derive(accelerator=group[0].accelerator)
            results = eng.evaluate_many([c.mapping for c in group])
            assert all(r is not None for r in results)
        remote_s = time.perf_counter() - t0

        # ---- coalescing: hold the kernel, fire duplicates ----
        gate = threading.Event()
        handle.server.config.pre_evaluate_hook = lambda item: gate.wait(30)
        dup = corpus[0]
        dup_clients = []

        def _dup():
            c = connect(handle.server.url, use_cache=False)
            c.derive(accelerator=dup.accelerator).evaluate(dup.mapping)
            c.close()

        # The cold pass already stored this fingerprint; wipe the store
        # entry so the duplicates actually reach the shards.
        handle.server.store._index.clear()
        threads = [threading.Thread(target=_dup) for _ in range(6)]
        for t in threads:
            t.start()
            dup_clients.append(t)
        deadline = time.time() + 30
        while time.time() < deadline:
            if client.server_stats()["coalesced"] >= 5:
                break
            time.sleep(0.02)
        gate.set()
        for t in threads:
            t.join(timeout=30)
        cold_stats = client.server_stats()
        client.close()

    coalesced = cold_stats["coalesced"]
    cold_evals = cold_stats["evaluations"]
    assert coalesced >= 5, "duplicates must coalesce onto one flight"

    # ---- warm restart over the ledger the first daemon wrote ----
    with _ServerThread(warm_start=(ledger_path,)) as handle:
        client = connect(handle.server.url, use_cache=False)
        t0 = time.perf_counter()
        for fp, group in by_accel.items():
            eng = client.derive(accelerator=group[0].accelerator)
            results = eng.evaluate_many([c.mapping for c in group])
            assert all(r is not None for r in results)
        warm_s = time.perf_counter() - t0
        warm_stats = client.server_stats()
        client.close()

    assert warm_stats["evaluations"] == 0, "warm corpus must not re-evaluate"
    assert warm_stats["warm_hits"] == len(corpus)

    payload = {
        "cases": len(corpus),
        "accelerators": len(by_accel),
        "local_s": round(local_s, 4),
        "remote_cold_s": round(remote_s, 4),
        "remote_warm_s": round(warm_s, 4),
        "remote_overhead_x": round(remote_s / max(local_s, 1e-9), 2),
        "warm_speedup_x": round(remote_s / max(warm_s, 1e-9), 2),
        "cold_evaluations": cold_evals,
        "coalesced": coalesced,
        "warm_hits": warm_stats["warm_hits"],
        "warm_evaluations": warm_stats["evaluations"],
        "warm_rows": warm_stats["warm_rows"],
    }
    out = emit_bench_artifact("serve", payload)
    with capsys.disabled():
        print(f"\n[serve] {len(corpus)} cases / {len(by_accel)} machines")
        print(f"[serve] local {local_s:.3f}s  cold-remote {remote_s:.3f}s "
              f"({payload['remote_overhead_x']}x)  warm {warm_s:.3f}s "
              f"({payload['warm_speedup_x']}x vs cold)")
        print(f"[serve] coalesced {coalesced} duplicates; "
              f"warm hits {warm_stats['warm_hits']}/{len(corpus)}; "
              f"artifact {out}")
