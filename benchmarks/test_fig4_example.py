"""E4 — Fig. 4: the worked Divide/Combine example.

The figure derives ``SS_comb`` of a local buffer's read port that feeds
three non-double-buffered registers (W/I/O-Reg). We rebuild that machine —
one shared LB whose single read port serves all three operands' registers —
walk Step 1 (per-DTL ReqBW_u / MUW_u / SS_u without interference) and
Step 2 (Eq. (1) combination with interference), and print the intermediate
table the figure tabulates.
"""

import pytest

from repro.core.dtl import TrafficKind
from repro.core.step1 import ModelOptions, build_dtls
from repro.core.step2 import combine_all_ports, served_memory_stalls
from repro.hardware.accelerator import Accelerator
from repro.hardware.hierarchy import MemoryHierarchy, auto_allocate
from repro.hardware.mac_array import MacArray
from repro.hardware.memory import MemoryInstance, dual_port
from repro.mapping.mapping import Mapping
from repro.mapping.spatial import SpatialMapping
from repro.mapping.temporal import TemporalMapping, loops_from_pairs
from repro.workload.generator import dense_layer
from repro.workload.operand import Operand


def _fig4_machine(lb_read_bw: float = 8.0) -> Accelerator:
    """W/I/O registers fed from ONE shared LB read port (as in Fig. 4)."""
    w_reg = auto_allocate(MemoryInstance("W-Reg", 8, dual_port(8, 8)), {Operand.W})
    i_reg = auto_allocate(MemoryInstance("I-Reg", 8, dual_port(8, 8)), {Operand.I})
    o_reg = auto_allocate(MemoryInstance("O-Reg", 24, dual_port(24, 24)), {Operand.O})
    lb = auto_allocate(
        MemoryInstance("LB", 64 * 1024, dual_port(lb_read_bw, lb_read_bw)),
        set(Operand),
    )
    hierarchy = MemoryHierarchy(
        {
            Operand.W: (w_reg, lb),
            Operand.I: (i_reg, lb),
            Operand.O: (o_reg, lb),
        }
    )
    return Accelerator("fig4", MacArray(1, 1), hierarchy)


def _fig4_mapping():
    """A register-level mapping giving each operand a distinct period.

    inner -> outer: C2 | B4 | K8. W-Reg holds one weight for C2 (r) cycles
    extended by B4 (ir) -> period 8 with keep-out; I-Reg holds one input
    reused across... and O-Reg accumulates over C2 with B4 relevant.
    """
    layer = dense_layer(4, 8, 2)
    tm = TemporalMapping(
        loops_from_pairs([("C", 2), ("B", 4), ("K", 8)]),
        {Operand.W: (1,), Operand.I: (0,), Operand.O: (2,)},
    )
    return Mapping(layer, SpatialMapping({}), tm)


def test_step1_divide_attributes():
    acc = _fig4_machine()
    mapping = _fig4_mapping()
    dtls = build_dtls(acc, mapping, ModelOptions(compute_edges=False))
    lb_read = [d for d in dtls if d.port_key == ("LB", "rd")]
    by_op = {d.transfer.operand: d for d in lb_read}
    # W: tile of 1 weight (C2 at reg... level 0 = [C2], ext B4): P = 8.
    assert by_op[Operand.W].transfer.period == 8
    # I: no reg loops, K8... I-Reg refreshed every cycle extended by nothing
    # (B is relevant): P = 1.
    assert by_op[Operand.I].transfer.period == 1
    assert by_op[Operand.I].x_req == pytest.approx(1.0)


def test_step2_combine_on_shared_port():
    acc = _fig4_machine(lb_read_bw=8.0)
    mapping = _fig4_mapping()
    dtls = build_dtls(acc, mapping, ModelOptions(compute_edges=False))
    ports = combine_all_ports(dtls, float(mapping.spatial_cycles))
    combo = ports[("LB", "rd")]
    # The shared port carries W and I refills (O psums would use the write
    # port; with full accumulation below K there are only final flushes).
    assert {d.transfer.operand for d in combo.dtls} >= {Operand.W, Operand.I}
    assert combo.req_bw_comb == pytest.approx(
        sum(d.req_bw for d in combo.dtls)
    )
    # Interference: the combined stall exceeds every individual stall.
    assert combo.ss_comb >= max(d.ss_u for d in combo.dtls) - 1e-9


def test_divide_then_combine_printout():
    acc = _fig4_machine(lb_read_bw=8.0)
    mapping = _fig4_mapping()
    dtls = build_dtls(acc, mapping, ModelOptions(compute_edges=False))
    horizon = float(mapping.spatial_cycles)
    ports = combine_all_ports(dtls, horizon)
    print("\nFig. 4 Step 1 (Divide) — per-DTL attributes:")
    for d in dtls:
        if d.memory == "LB":
            t = d.transfer
            print(
                f"  {t.operand}-{t.kind.value:7s} Mem_DATA={t.data_bits:5.0f}b "
                f"Mem_CC={t.period:4.0f} Z={t.repeats:4d} ReqBW={t.req_bw:6.2f} "
                f"MUW_u={d.muw_u:7.1f} SS_u={d.ss_u:+8.1f}"
            )
    combo = ports[("LB", "rd")]
    print("Fig. 4 Step 2 (Combine) — LB read port:")
    print(f"  ReqBW_comb={combo.req_bw_comb:.2f} MUW_comb={combo.muw_comb:.1f} "
          f"SS_comb={combo.ss_comb:+.1f}")
    served = served_memory_stalls(dtls, ports)
    for s in served:
        print(f"  served {s.describe()}")
    assert combo.muw_comb <= horizon


def test_interference_grows_with_contention():
    """Starving the shared port turns individual slack into combined stall."""
    mapping = _fig4_mapping()
    horizon = float(mapping.spatial_cycles)
    lenient = combine_all_ports(
        build_dtls(_fig4_machine(64.0), mapping, ModelOptions(compute_edges=False)),
        horizon,
    )[("LB", "rd")]
    starved = combine_all_ports(
        build_dtls(_fig4_machine(2.0), mapping, ModelOptions(compute_edges=False)),
        horizon,
    )[("LB", "rd")]
    assert starved.ss_comb > lenient.ss_comb


def test_bench_step2_combination(benchmark):
    acc = _fig4_machine()
    mapping = _fig4_mapping()
    dtls = build_dtls(acc, mapping, ModelOptions(compute_edges=False))
    result = benchmark(combine_all_ports, dtls, float(mapping.spatial_cycles))
    assert ("LB", "rd") in result
