"""Shim for environments without the `wheel` package (offline installs).

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation`` on legacy tooling.
"""

from setuptools import setup

setup()
