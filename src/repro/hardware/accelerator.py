"""The full accelerator: MAC array + hierarchy + stall-overlap config."""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.hardware.area import accelerator_area_mm2
from repro.hardware.hierarchy import MemoryHierarchy, MemoryLevel
from repro.hardware.mac_array import MacArray


@dataclasses.dataclass(frozen=True)
class StallOverlapConfig:
    """Which memories' stalls can hide under each other (Step 3).

    The paper (Section III-D): "For the memory operations that can be
    overlapped, SS_overall takes the maximum of SS_comb [...]; otherwise,
    SS_overall is the sum of all stalls [...]. Users can customize this
    memory parallel operation constraint based on the design."

    ``concurrent_groups`` is a partition (by memory name) of the memory
    system: stalls of memories inside one group combine with ``max``
    (their operation overlaps), and the per-group results are *summed*
    across groups (groups operate sequentially). Memories not named in any
    group fall into one implicit final group together. The common default —
    everything overlaps — is an empty config.
    """

    concurrent_groups: Tuple[FrozenSet[str], ...] = ()

    def __post_init__(self) -> None:
        groups = tuple(frozenset(g) for g in self.concurrent_groups)
        object.__setattr__(self, "concurrent_groups", groups)
        seen: set = set()
        for group in groups:
            if not group:
                raise ValueError("empty concurrent group")
            overlap = seen & group
            if overlap:
                raise ValueError(f"memory {sorted(overlap)} in more than one group")
            seen |= group

    def group_of(self, memory_name: str) -> int:
        """Index of the group containing ``memory_name``.

        Memories not explicitly listed share the implicit last group
        (index ``len(concurrent_groups)``).
        """
        for i, group in enumerate(self.concurrent_groups):
            if memory_name in group:
                return i
        return len(self.concurrent_groups)

    @staticmethod
    def all_concurrent() -> "StallOverlapConfig":
        """Every memory's operation overlaps (single implicit group)."""
        return StallOverlapConfig(())

    @staticmethod
    def all_sequential(names: Iterable[str]) -> "StallOverlapConfig":
        """No overlap at all: every memory is its own group (stalls add up)."""
        return StallOverlapConfig(tuple(frozenset({n}) for n in names))


@dataclasses.dataclass(frozen=True)
class Accelerator:
    """A complete accelerator design point.

    Parameters
    ----------
    name:
        Identifier for reports.
    mac_array:
        The PE/MAC array.
    hierarchy:
        Per-operand memory chains.
    stall_overlap:
        Step-3 integration policy (default: all memories overlap).
    offchip_bandwidth:
        Bits/cycle available for filling the outermost level during the
        data pre-loading phase (Section III intro). ``None`` means the
        outermost level already holds the layer's data (the validation
        chip's 1 MB GB case) and preload only fills the on-chip levels.
    """

    name: str
    mac_array: MacArray
    hierarchy: MemoryHierarchy
    stall_overlap: StallOverlapConfig = StallOverlapConfig.all_concurrent()
    offchip_bandwidth: Optional[float] = None

    def memory_by_name(self, name: str) -> MemoryLevel:
        """Look up a memory level by its memory name."""
        for level in self.hierarchy.unique_levels():
            if level.name == name:
                return level
        raise KeyError(f"accelerator {self.name} has no memory {name!r}")

    @property
    def peak_macs_per_cycle(self) -> int:
        """Theoretical peak throughput (MAC array size)."""
        return self.mac_array.size

    def area_mm2(self, include: Optional[Iterable[str]] = None) -> float:
        """Total area of the design (see :mod:`repro.hardware.area`).

        ``include`` restricts the accounted memories by name — Case study 3
        excludes the (constant) global buffer from the comparison.
        """
        return accelerator_area_mm2(self, include=include)

    def describe(self) -> str:
        """Multi-line human-readable architecture summary."""
        lines = [f"Accelerator {self.name}: {self.mac_array.describe()}"]
        for level in self.hierarchy.unique_levels():
            inst = level.instance
            ops = "/".join(str(op) for op in sorted(level.serves, key=str))
            ports = ", ".join(
                f"{p.name}:{p.direction.value}@{p.bandwidth:g}b/cyc" for p in inst.ports
            )
            db = " DB" if inst.double_buffered else ""
            extra = f" x{inst.instances}" if inst.instances > 1 else ""
            lines.append(
                f"  {inst.name}[{ops}] {inst.size_bits}b{extra}{db} ({ports})"
            )
        return "\n".join(lines)

    def memory_names(self) -> Tuple[str, ...]:
        """Names of all distinct memories."""
        return tuple(level.name for level in self.hierarchy.unique_levels())

    def replace_stall_overlap(self, config: StallOverlapConfig) -> "Accelerator":
        """Copy of this accelerator with a different Step-3 policy."""
        return dataclasses.replace(self, stall_overlap=config)

    def fingerprint(self) -> str:
        """Stable content hash of this design point.

        Equal-by-value accelerators — whatever their construction path
        (preset builder, serde round trip, ``dataclasses.replace``) —
        fingerprint identically; any field change changes the digest. The
        evaluation engine keys its cache on this, so one cache can serve a
        whole architecture sweep. Memoized (the dataclass is frozen).
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            from repro.fingerprint import stable_fingerprint

            cached = stable_fingerprint(self)
            object.__setattr__(self, "_fingerprint", cached)
        return cached
