"""Memory levels and per-operand memory hierarchies.

A physical memory may be shared by several operands (e.g. a global buffer
holding W, I and O). Step 1 of the latency model *virtually divides* such a
memory into unit memories — one per operand — which is why a
:class:`MemoryLevel` records the set of operands it serves and a per-operand
port allocation, while the same level object can appear in several operands'
chains inside a :class:`MemoryHierarchy`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.hardware.memory import MemoryInstance
from repro.hardware.port import EndpointKind, Port
from repro.workload.operand import Operand


@dataclasses.dataclass(frozen=True)
class MemoryLevel:
    """One level of the memory system, possibly shared by operands.

    Parameters
    ----------
    instance:
        The physical memory.
    serves:
        Operands stored in this memory.
    allocation:
        Physical port assignment per (operand, endpoint-kind) pair. Entries
        may be omitted for endpoints that can never carry traffic (e.g. a
        weight flush to a higher level); :meth:`port_for` raises a clear
        error if the latency model ends up needing a missing one.
    capacity_share:
        Optional hard split of the capacity between operands (bits). When
        omitted, operands share the whole (mapper-visible) capacity and only
        the *sum* of footprints is checked.
    """

    instance: MemoryInstance
    serves: frozenset
    allocation: Mapping[Tuple[Operand, EndpointKind], str]
    capacity_share: Optional[Mapping[Operand, int]] = None

    def __post_init__(self) -> None:
        serves = frozenset(self.serves)
        object.__setattr__(self, "serves", serves)
        if not serves:
            raise ValueError(f"level {self.name}: must serve at least one operand")
        allocation = dict(self.allocation)
        object.__setattr__(self, "allocation", allocation)
        for (operand, kind), port_name in allocation.items():
            if operand not in serves:
                raise ValueError(
                    f"level {self.name}: allocation for {operand} but it is not served"
                )
            port = self.instance.port(port_name)
            if not port.supports(kind):
                raise ValueError(
                    f"level {self.name}: port {port_name!r} cannot carry {kind.value} "
                    f"({port.direction.value} port, {kind.value} is "
                    f"{'write' if kind.is_write else 'read'})"
                )
        if self.capacity_share is not None:
            share = dict(self.capacity_share)
            object.__setattr__(self, "capacity_share", share)
            total = sum(share.values())
            if total > self.instance.mapper_visible_bits:
                raise ValueError(
                    f"level {self.name}: capacity shares ({total} b) exceed "
                    f"mapper-visible capacity ({self.instance.mapper_visible_bits} b)"
                )

    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """The underlying memory's name."""
        return self.instance.name

    @property
    def is_shared(self) -> bool:
        """Whether more than one operand lives in this physical memory."""
        return len(self.serves) > 1

    def port_for(self, operand: Operand, kind: EndpointKind) -> Port:
        """The physical port carrying ``operand``'s ``kind`` endpoint."""
        try:
            port_name = self.allocation[(operand, kind)]
        except KeyError:
            raise KeyError(
                f"memory level {self.name!r} has no port allocated for "
                f"({operand}, {kind.value}); add it to the level's allocation"
            ) from None
        return self.instance.port(port_name)

    def has_endpoint(self, operand: Operand, kind: EndpointKind) -> bool:
        """Whether an allocation entry exists for (operand, kind)."""
        return (operand, kind) in self.allocation

    def bandwidth_for(self, operand: Operand, kind: EndpointKind) -> float:
        """Aggregate bits/cycle available to (operand, kind) on this level."""
        port = self.port_for(operand, kind)
        return port.bandwidth * self.instance.instances

    def capacity_for(self, operand: Operand) -> int:
        """Mapper-visible bits available to ``operand`` at this level."""
        if operand not in self.serves:
            raise KeyError(f"level {self.name} does not serve {operand}")
        if self.capacity_share is not None and operand in self.capacity_share:
            cap = self.capacity_share[operand]
            if self.instance.double_buffered:
                return cap // 2 if cap == self.instance.total_size_bits else cap
            return cap
        return self.instance.mapper_visible_bits


def auto_allocate(
    instance: MemoryInstance,
    serves: Iterable[Operand],
    capacity_share: Optional[Mapping[Operand, int]] = None,
) -> MemoryLevel:
    """Build a :class:`MemoryLevel` with every endpoint on the first fitting port.

    Reads (TL/TH) land on the first read-capable port, writes (FH/FL) on the
    first write-capable port — the common dual-port or single-RW layout.
    """
    serves = frozenset(serves)
    allocation: Dict[Tuple[Operand, EndpointKind], str] = {}
    for operand in serves:
        for kind in EndpointKind:
            for port in instance.ports:
                if port.supports(kind):
                    allocation[(operand, kind)] = port.name
                    break
    return MemoryLevel(instance, serves, allocation, capacity_share)


@dataclasses.dataclass(frozen=True)
class MemoryHierarchy:
    """Per-operand chains of memory levels, innermost (index 0) first.

    The same :class:`MemoryLevel` object may appear in several chains —
    that is what "physically shared, virtually divided" means. The chain
    order is the data-flow order: W/I flow from the last (outermost) level
    down to level 0 next to the MACs; O flows from level 0 upwards.
    """

    chains: Mapping[Operand, Tuple[MemoryLevel, ...]]

    def __post_init__(self) -> None:
        chains = {op: tuple(levels) for op, levels in dict(self.chains).items()}
        object.__setattr__(self, "chains", chains)
        for operand in Operand:
            if operand not in chains or not chains[operand]:
                raise ValueError(f"hierarchy must give {operand} at least one level")
            for level in chains[operand]:
                if operand not in level.serves:
                    raise ValueError(
                        f"level {level.name} appears in {operand}'s chain but does "
                        f"not serve {operand}"
                    )
        names = [lvl.name for lvl in self.unique_levels()]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate memory names across distinct levels: {names}")

    # ------------------------------------------------------------------ #

    def levels(self, operand: Operand) -> Tuple[MemoryLevel, ...]:
        """``operand``'s chain, innermost first."""
        return self.chains[operand]

    def depth(self, operand: Operand) -> int:
        """Number of levels in ``operand``'s chain."""
        return len(self.chains[operand])

    def innermost(self, operand: Operand) -> MemoryLevel:
        """The level closest to the MAC array."""
        return self.chains[operand][0]

    def outermost(self, operand: Operand) -> MemoryLevel:
        """The level furthest from the MAC array (data source / sink)."""
        return self.chains[operand][-1]

    def unique_levels(self) -> List[MemoryLevel]:
        """All distinct level objects, deduplicated across chains."""
        seen: List[MemoryLevel] = []
        for operand in Operand:
            for level in self.chains[operand]:
                if not any(level is s for s in seen):
                    seen.append(level)
        return seen

    def level_index(self, operand: Operand, level: MemoryLevel) -> int:
        """Index of ``level`` within ``operand``'s chain."""
        for i, lvl in enumerate(self.chains[operand]):
            if lvl is level:
                return i
        raise ValueError(f"level {level.name} not in {operand}'s chain")

    def operands_of(self, level: MemoryLevel) -> List[Operand]:
        """Operands whose chains contain ``level``."""
        return [op for op in Operand if any(level is l for l in self.chains[op])]
