"""The MAC / PE array."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class MacArray:
    """A 2-D array of processing elements with one or more MACs each.

    The validation chip (Section IV) is a 16x32 PE array with 2 MACs per
    PE (1024 MACs); the case-study chip is 8x16 PE x 2 MACs (256 MACs,
    referred to as "16x16 MAC" in the paper).

    Parameters
    ----------
    rows, cols:
        PE array dimensions.
    macs_per_pe:
        MAC units per PE.
    mac_energy_pj:
        Energy of one MAC operation (for the energy model).
    """

    rows: int
    cols: int
    macs_per_pe: int = 1
    mac_energy_pj: float = 0.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1 or self.macs_per_pe < 1:
            raise ValueError("MacArray dimensions must be >= 1")

    @property
    def num_pes(self) -> int:
        """Total PE count."""
        return self.rows * self.cols

    @property
    def size(self) -> int:
        """Total MAC units — the peak MACs per clock cycle."""
        return self.num_pes * self.macs_per_pe

    def describe(self) -> str:
        """Human-readable summary, e.g. ``16x32 PE x2 (1024 MACs)``."""
        return f"{self.rows}x{self.cols} PE x{self.macs_per_pe} ({self.size} MACs)"
