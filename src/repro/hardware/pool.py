"""Memory candidate pool for architecture design-space exploration.

Case study 3 "constructs a memory pool containing tens of register/memory
candidates with different capacities to replace the W-/I-/O-Reg, W-/I-LB in
the design space search", with a 1 MB GB whose bandwidth varies from 128 to
1024 bit/cycle, across three MAC array sizes. This module builds the cross
product of such candidates as :class:`~repro.hardware.presets.Preset`
design points.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.hardware.presets import KB, Preset, build_accelerator


@dataclasses.dataclass(frozen=True)
class MemoryCandidate:
    """One candidate sizing of the five searchable memories.

    Register sizes are bits per instance (per MAC for W/I, per accumulator
    lane for O); local-buffer sizes are total bits.
    """

    w_reg_bits: int
    i_reg_bits: int
    o_reg_bits: int
    w_lb_bits: int
    i_lb_bits: int

    def label(self) -> str:
        """Short identifier, e.g. ``wr8_ir8_or24_wlb16K_ilb8K``."""
        return (
            f"wr{self.w_reg_bits}_ir{self.i_reg_bits}_or{self.o_reg_bits}"
            f"_wlb{self.w_lb_bits // KB}K_ilb{self.i_lb_bits // KB}K"
        )


@dataclasses.dataclass(frozen=True)
class MemoryPool:
    """A cross-product pool of memory candidates.

    The defaults give 4 x 4 x 3 x 5 x 5 = 1200 candidates — the same order
    of magnitude as the paper's 4176-design space once multiplied by the
    three MAC array sizes (use :func:`small` for quick runs).
    """

    w_reg_options: Sequence[int] = (8, 16, 32, 64)
    i_reg_options: Sequence[int] = (8, 16, 32, 64)
    o_reg_options: Sequence[int] = (24, 48, 96)
    w_lb_options: Sequence[int] = tuple(s * KB for s in (4, 8, 16, 32, 64))
    i_lb_options: Sequence[int] = tuple(s * KB for s in (2, 4, 8, 16, 32))

    def __len__(self) -> int:
        return (
            len(self.w_reg_options)
            * len(self.i_reg_options)
            * len(self.o_reg_options)
            * len(self.w_lb_options)
            * len(self.i_lb_options)
        )

    def candidates(self) -> Iterator[MemoryCandidate]:
        """Iterate the full cross product."""
        for w_reg, i_reg, o_reg, w_lb, i_lb in itertools.product(
            self.w_reg_options,
            self.i_reg_options,
            self.o_reg_options,
            self.w_lb_options,
            self.i_lb_options,
        ):
            yield MemoryCandidate(w_reg, i_reg, o_reg, w_lb, i_lb)

    def build(
        self,
        macs_k: int,
        macs_b: int,
        macs_c: int,
        gb_read_bw: float,
        gb_write_bw: Optional[float] = None,
    ) -> Iterator[Tuple[MemoryCandidate, Preset]]:
        """Instantiate every candidate on a given MAC array / GB bandwidth."""
        for cand in self.candidates():
            preset = build_accelerator(
                name=f"{macs_k}x{macs_b * macs_c}-{cand.label()}-gb{gb_read_bw:g}",
                macs_k=macs_k,
                macs_b=macs_b,
                macs_c=macs_c,
                w_reg_bits=cand.w_reg_bits,
                i_reg_bits=cand.i_reg_bits,
                o_reg_bits=cand.o_reg_bits,
                w_lb_bits=cand.w_lb_bits,
                i_lb_bits=cand.i_lb_bits,
                gb_read_bw=gb_read_bw,
                gb_write_bw=gb_write_bw,
            )
            yield cand, preset

    @staticmethod
    def small() -> "MemoryPool":
        """A reduced pool (2x2x2x2x2 = 32 candidates) for tests/CI."""
        return MemoryPool(
            w_reg_options=(8, 32),
            i_reg_options=(8, 32),
            o_reg_options=(24, 96),
            w_lb_options=(8 * KB, 32 * KB),
            i_lb_options=(4 * KB, 16 * KB),
        )


def searched_memory_names() -> List[str]:
    """The memory names whose area Case study 3 accounts for (GB excluded)."""
    return ["W-Reg", "I-Reg", "O-Reg", "W-LB", "I-LB"]
