"""A physical memory instance: capacity, bandwidth, ports, buffering."""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from repro.hardware.port import EndpointKind, Port, PortDirection


@dataclasses.dataclass(frozen=True)
class MemoryInstance:
    """One physical memory module (register file, local buffer, SRAM, ...).

    Parameters
    ----------
    name:
        Unique memory name within an accelerator (e.g. ``"W-LB"``).
    size_bits:
        Physical capacity in bits. For double-buffered memories this is the
        *physical* capacity A; the mapper-visible capacity is A/2 (Table I).
    ports:
        The physical ports. Per Table I terminology, a "non-DB dual-port"
        memory has separate read and write ports; a single read/write port
        is also supported and shows up as extra port contention in Step 2.
    double_buffered:
        Whether the memory is double-buffered (ping-pong). DB memories never
        have a keep-out zone: X_REQ equals the full turnaround period.
    instances:
        Number of identical physical copies operating in lock-step as one
        logical level (e.g. one 8-bit weight register per MAC: 1024
        instances). Capacity and port bandwidth given here are PER INSTANCE;
        aggregate values are exposed via :attr:`total_size_bits` and
        :meth:`aggregate_bandwidth`.
    read_energy_pj_per_bit / write_energy_pj_per_bit:
        Unit access energies for the energy model.
    link_energy_pj_per_bit:
        Interconnect (NoC / bus wire) energy per bit moved across this
        memory's *downward* link — the cost of getting data from this
        level to the level below it (and back, for outputs). Charged by
        the energy model on top of the array access energies, following
        the "data transfer in NoCs" term of the analytical energy models
        the paper builds on (Section I).
    area_mm2:
        Area of one instance. ``None`` → derived by the area model.
    min_burst_bits:
        Smallest addressable transfer (word width); transfers round up.
    """

    name: str
    size_bits: int
    ports: Tuple[Port, ...]
    double_buffered: bool = False
    instances: int = 1
    read_energy_pj_per_bit: float = 0.0
    write_energy_pj_per_bit: float = 0.0
    link_energy_pj_per_bit: float = 0.0
    area_mm2: Optional[float] = None
    min_burst_bits: int = 1

    def __post_init__(self) -> None:
        if self.size_bits <= 0:
            raise ValueError(f"memory {self.name}: size_bits must be positive")
        if self.instances < 1:
            raise ValueError(f"memory {self.name}: instances must be >= 1")
        if not self.ports:
            raise ValueError(f"memory {self.name}: needs at least one port")
        names = [p.name for p in self.ports]
        if len(set(names)) != len(names):
            raise ValueError(f"memory {self.name}: duplicate port names {names}")
        if self.min_burst_bits < 1:
            raise ValueError(f"memory {self.name}: min_burst_bits must be >= 1")

    # ------------------------------------------------------------------ #

    @property
    def total_size_bits(self) -> int:
        """Aggregate capacity across all lock-step instances."""
        return self.size_bits * self.instances

    @property
    def mapper_visible_bits(self) -> int:
        """Capacity the mapper may fill (half of physical for DB, Table I)."""
        total = self.total_size_bits
        return total // 2 if self.double_buffered else total

    def port(self, name: str) -> Port:
        """Look up a port by name."""
        for p in self.ports:
            if p.name == name:
                return p
        raise KeyError(f"memory {self.name} has no port {name!r}")

    def aggregate_bandwidth(self, port_name: str) -> float:
        """Port bandwidth summed over the lock-step instances (bits/cycle)."""
        return self.port(port_name).bandwidth * self.instances

    def default_port_for(self, endpoint: EndpointKind) -> Port:
        """First port able to carry ``endpoint`` (used by preset builders)."""
        for p in self.ports:
            if p.supports(endpoint):
                return p
        raise ValueError(f"memory {self.name}: no port supports {endpoint}")


def dual_port(read_bw: float, write_bw: float) -> Tuple[Port, ...]:
    """Convenience: one read plus one write port."""
    return (
        Port("rd", PortDirection.READ, read_bw),
        Port("wr", PortDirection.WRITE, write_bw),
    )


def single_rw_port(bw: float) -> Tuple[Port, ...]:
    """Convenience: a single shared read/write port."""
    return (Port("rw", PortDirection.READ_WRITE, bw),)
