"""Hardware architecture representation ("H" of the AHM space).

A DNN accelerator is a MAC array plus a multi-level memory system connected
by an on-chip network (paper Section II-A-2). This package models:

* :class:`~repro.hardware.memory.MemoryInstance` — one physical memory
  (capacity, read/write bandwidth, ports, double buffering, unit energies);
* :class:`~repro.hardware.port.Port` — a physical read/write port and the
  four data-transfer endpoint kinds that can be allocated onto it;
* :class:`~repro.hardware.mac_array.MacArray` — the PE/MAC array;
* :class:`~repro.hardware.hierarchy.MemoryLevel` /
  :class:`~repro.hardware.hierarchy.MemoryHierarchy` — per-operand ordered
  memory levels, with physical sharing between operands;
* :class:`~repro.hardware.accelerator.Accelerator` — the full machine plus
  the stall-overlap (coherency) configuration used by Step 3;
* :mod:`~repro.hardware.presets` — the paper's validation chip and the
  scaled-down case-study configuration;
* :mod:`~repro.hardware.area` / :mod:`~repro.hardware.pool` — the area
  model and memory-candidate pool that drive Case study 3's architecture
  search.
"""

from repro.hardware.memory import MemoryInstance
from repro.hardware.port import EndpointKind, Port, PortDirection
from repro.hardware.mac_array import MacArray
from repro.hardware.hierarchy import MemoryHierarchy, MemoryLevel
from repro.hardware.accelerator import Accelerator, StallOverlapConfig
from repro.hardware.area import register_area_mm2, sram_area_mm2
from repro.hardware.pool import MemoryCandidate, MemoryPool
from repro.hardware.serde import (
    SerdeError,
    accelerator_from_dict,
    accelerator_to_dict,
    load_preset,
    preset_from_dict,
    preset_from_json,
    preset_to_dict,
    preset_to_json,
    save_preset,
)
from repro.hardware import presets

__all__ = [
    "Accelerator",
    "EndpointKind",
    "MacArray",
    "MemoryCandidate",
    "MemoryHierarchy",
    "MemoryInstance",
    "MemoryLevel",
    "MemoryPool",
    "Port",
    "PortDirection",
    "SerdeError",
    "StallOverlapConfig",
    "accelerator_from_dict",
    "accelerator_to_dict",
    "load_preset",
    "preset_from_dict",
    "preset_from_json",
    "preset_to_dict",
    "preset_to_json",
    "presets",
    "register_area_mm2",
    "save_preset",
    "sram_area_mm2",
]
