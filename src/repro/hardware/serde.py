"""JSON (de)serialization of accelerator descriptions.

Lets users define machines in plain JSON config files and round-trip the
presets. The schema mirrors the object model::

    {
      "name": "my-chip",
      "mac_array": {"rows": 16, "cols": 8, "macs_per_pe": 2,
                     "mac_energy_pj": 0.3},
      "memories": [
        {"name": "GB", "size_bits": 8388608,
         "ports": [{"name": "rd", "direction": "read", "bandwidth": 128},
                    {"name": "wr", "direction": "write", "bandwidth": 128}],
         "double_buffered": false, "instances": 1,
         "serves": ["W", "I", "O"],
         "allocation": {"W.tl": "rd", "I.tl": "rd",
                         "O.tl": "rd", "O.fl": "wr"}}
      ],
      "chains": {"W": ["W-Reg", "W-LB", "GB"], ...},
      "stall_overlap": [["GB"], ["W-LB", "I-LB"]],
      "offchip_bandwidth": null,
      "spatial_unrolling": {"K": 16, "B": 8, "C": 2}
    }

``allocation`` may be omitted ("auto") to use first-fitting-port rules.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.hardware.accelerator import Accelerator, StallOverlapConfig
from repro.hardware.hierarchy import MemoryHierarchy, MemoryLevel, auto_allocate
from repro.hardware.mac_array import MacArray
from repro.hardware.memory import MemoryInstance
from repro.hardware.port import EndpointKind, Port, PortDirection
from repro.hardware.presets import Preset
from repro.workload.dims import LoopDim
from repro.workload.operand import Operand


class SerdeError(ValueError):
    """Malformed accelerator description."""


# --------------------------------------------------------------------- #
# Serialization
# --------------------------------------------------------------------- #

def preset_to_dict(preset: Preset) -> Dict[str, Any]:
    """Serialize a preset (accelerator + spatial unrolling)."""
    data = accelerator_to_dict(preset.accelerator)
    data["spatial_unrolling"] = {
        dim.value: factor for dim, factor in preset.spatial_unrolling.items()
    }
    return data


def accelerator_to_dict(accelerator: Accelerator) -> Dict[str, Any]:
    """Serialize an accelerator to a JSON-compatible dict."""
    array = accelerator.mac_array
    memories: List[Dict[str, Any]] = []
    for level in accelerator.hierarchy.unique_levels():
        inst = level.instance
        memories.append(
            {
                "name": inst.name,
                "size_bits": inst.size_bits,
                "ports": [
                    {
                        "name": p.name,
                        "direction": p.direction.value,
                        "bandwidth": p.bandwidth,
                    }
                    for p in inst.ports
                ],
                "double_buffered": inst.double_buffered,
                "instances": inst.instances,
                "read_energy_pj_per_bit": inst.read_energy_pj_per_bit,
                "write_energy_pj_per_bit": inst.write_energy_pj_per_bit,
                "link_energy_pj_per_bit": inst.link_energy_pj_per_bit,
                "min_burst_bits": inst.min_burst_bits,
                "serves": sorted(op.value for op in level.serves),
                "allocation": {
                    f"{op.value}.{kind.value}": port
                    for (op, kind), port in sorted(
                        level.allocation.items(), key=lambda kv: str(kv[0])
                    )
                },
            }
        )
    chains = {
        op.value: [lvl.name for lvl in accelerator.hierarchy.levels(op)]
        for op in Operand
    }
    return {
        "name": accelerator.name,
        "mac_array": {
            "rows": array.rows,
            "cols": array.cols,
            "macs_per_pe": array.macs_per_pe,
            "mac_energy_pj": array.mac_energy_pj,
        },
        "memories": memories,
        "chains": chains,
        "stall_overlap": [
            sorted(group) for group in accelerator.stall_overlap.concurrent_groups
        ],
        "offchip_bandwidth": accelerator.offchip_bandwidth,
    }


def preset_to_json(preset: Preset, indent: int = 2) -> str:
    """JSON string of a preset."""
    return json.dumps(preset_to_dict(preset), indent=indent)


# --------------------------------------------------------------------- #
# Deserialization
# --------------------------------------------------------------------- #

def _memory_from_dict(data: Dict[str, Any]) -> Tuple[MemoryInstance, MemoryLevel]:
    try:
        ports = tuple(
            Port(p["name"], PortDirection(p["direction"]), float(p["bandwidth"]))
            for p in data["ports"]
        )
        instance = MemoryInstance(
            name=data["name"],
            size_bits=int(data["size_bits"]),
            ports=ports,
            double_buffered=bool(data.get("double_buffered", False)),
            instances=int(data.get("instances", 1)),
            read_energy_pj_per_bit=float(data.get("read_energy_pj_per_bit", 0.0)),
            write_energy_pj_per_bit=float(data.get("write_energy_pj_per_bit", 0.0)),
            link_energy_pj_per_bit=float(data.get("link_energy_pj_per_bit", 0.0)),
            min_burst_bits=int(data.get("min_burst_bits", 1)),
        )
        serves = frozenset(Operand(s) for s in data["serves"])
    except (KeyError, ValueError) as exc:
        raise SerdeError(f"bad memory entry {data.get('name', '?')!r}: {exc}") from exc

    allocation_spec = data.get("allocation", "auto")
    if allocation_spec == "auto" or allocation_spec is None:
        level = auto_allocate(instance, serves)
    else:
        allocation = {}
        for key, port_name in allocation_spec.items():
            op_str, __, kind_str = key.partition(".")
            try:
                allocation[(Operand(op_str), EndpointKind(kind_str))] = port_name
            except ValueError as exc:
                raise SerdeError(f"bad allocation key {key!r}") from exc
        level = MemoryLevel(instance, serves, allocation)
    return instance, level


def accelerator_from_dict(data: Dict[str, Any]) -> Accelerator:
    """Deserialize an accelerator from a dict (see module docstring)."""
    try:
        array_spec = data["mac_array"]
        mac_array = MacArray(
            rows=int(array_spec["rows"]),
            cols=int(array_spec["cols"]),
            macs_per_pe=int(array_spec.get("macs_per_pe", 1)),
            mac_energy_pj=float(array_spec.get("mac_energy_pj", 0.0)),
        )
        levels: Dict[str, MemoryLevel] = {}
        for mem_data in data["memories"]:
            __, level = _memory_from_dict(mem_data)
            if level.name in levels:
                raise SerdeError(f"duplicate memory name {level.name!r}")
            levels[level.name] = level
        chains = {}
        for op_str, names in data["chains"].items():
            chain = []
            for name in names:
                if name not in levels:
                    raise SerdeError(f"chain references unknown memory {name!r}")
                chain.append(levels[name])
            chains[Operand(op_str)] = tuple(chain)
        hierarchy = MemoryHierarchy(chains)
        overlap = StallOverlapConfig(
            tuple(frozenset(group) for group in data.get("stall_overlap", []))
        )
        offchip = data.get("offchip_bandwidth")
        return Accelerator(
            name=str(data["name"]),
            mac_array=mac_array,
            hierarchy=hierarchy,
            stall_overlap=overlap,
            offchip_bandwidth=float(offchip) if offchip is not None else None,
        )
    except KeyError as exc:
        raise SerdeError(f"missing required field: {exc}") from exc


def preset_from_dict(data: Dict[str, Any]) -> Preset:
    """Deserialize a preset (accelerator + spatial unrolling)."""
    accelerator = accelerator_from_dict(data)
    spatial_spec = data.get("spatial_unrolling", {})
    spatial = {LoopDim(dim): int(f) for dim, f in spatial_spec.items()}
    return Preset(accelerator, spatial)


def preset_from_json(text: str) -> Preset:
    """Deserialize a preset from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerdeError(f"invalid JSON: {exc}") from exc
    return preset_from_dict(data)


def preset_fingerprint(preset: Preset) -> str:
    """Stable content hash of a preset (accelerator + spatial unrolling).

    Serde round trips preserve it: ``preset_fingerprint(p) ==
    preset_fingerprint(preset_from_json(preset_to_json(p)))``.
    """
    from repro.fingerprint import stable_fingerprint

    return stable_fingerprint(
        preset.accelerator,
        {dim.value: f for dim, f in preset.spatial_unrolling.items()},
    )


def load_preset(path: str) -> Preset:
    """Load a preset from a JSON file."""
    with open(path) as handle:
        return preset_from_json(handle.read())


def save_preset(preset: Preset, path: str) -> None:
    """Write a preset to a JSON file."""
    with open(path, "w") as handle:
        handle.write(preset_to_json(preset))
