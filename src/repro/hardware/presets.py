"""Preset accelerators: the validation chip and the case-study machine.

Two concrete machines appear in the paper:

* **Validation chip** (Section IV): systolic-array accelerator in TSMC 7 nm,
  16x32 PE array with 2 MACs per PE (1024 MACs), one 24 b output register
  per PE, one 8 b weight and one 8 b input register per MAC, 32 KB weight
  local buffer with a 256 b bus, 64 KB input local buffer with a 512 b bus,
  and a 1 MB global buffer tiled from 16 64-KB SRAM macros.

* **Case-study machine** (Section V): a scale-down with 8x16 PE x 2 MACs
  ("16x16 MAC"), 16 KB W-LB, 8 KB I-LB, 1 MB GB with 128 bit/cycle
  read/write bandwidth, spatial unrolling ``K 16 | B 8 | C 2``.

Port widths not spelled out in the paper (register write buses, GB bus of
the validation chip) are set to the natural systolic values and documented
inline; EXPERIMENTS.md discusses their (small) influence.

Buffering choices follow Fig. 4: the per-MAC/PE registers are
non-double-buffered; the local buffers are double-buffered ping-pong
(standard for systolic designs and consistent with the case studies where
the GB port is the only stall source); the GB is a non-DB dual-port SRAM.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.hardware.accelerator import Accelerator, StallOverlapConfig
from repro.hardware.hierarchy import MemoryHierarchy, MemoryLevel, auto_allocate
from repro.hardware.mac_array import MacArray
from repro.hardware.memory import MemoryInstance, dual_port
from repro.workload.dims import LoopDim
from repro.workload.operand import Operand

BYTE = 8
KB = 1024 * BYTE


@dataclasses.dataclass(frozen=True)
class Preset:
    """An accelerator together with its native spatial unrolling."""

    accelerator: Accelerator
    spatial_unrolling: Dict[LoopDim, int]


def build_accelerator(
    name: str,
    macs_k: int,
    macs_b: int,
    macs_c: int,
    w_reg_bits: int = 8,
    i_reg_bits: int = 8,
    o_reg_bits: int = 24,
    w_lb_bits: int = 16 * KB,
    i_lb_bits: int = 8 * KB,
    gb_bits: int = 1024 * KB,
    gb_read_bw: float = 128.0,
    gb_write_bw: Optional[float] = None,
    w_lb_bus: Optional[float] = None,
    i_lb_bus: Optional[float] = None,
    lb_double_buffered: bool = True,
    reg_energy_pj_per_bit: float = 0.003,
    lb_energy_pj_per_bit: float = 0.015,
    gb_energy_pj_per_bit: float = 0.060,
    mac_energy_pj: float = 0.3,
) -> Preset:
    """Construct the paper's accelerator template at arbitrary scale.

    The machine is a weight/input-register systolic array: W and I each have
    a three-level chain Reg -> LB -> GB; outputs accumulate in per-PE
    registers and exchange (partial) sums directly with the GB (two-level
    chain), exactly like Fig. 2(b)'s right-hand column.

    ``macs_k / macs_b / macs_c`` give the spatial unrolling (K x B x C
    MACs); the PE count is ``K*B*C/2`` with 2 MACs per PE. Local-buffer
    buses default to one refill element per MAC lane per cycle (256 b for
    the 16x16 case-study array, matching the validation chip's W bus).
    """
    array_size = macs_k * macs_b * macs_c
    if array_size % 2:
        raise ValueError("array template uses 2 MACs per PE; K*B*C must be even")
    num_pes = array_size // 2
    mac_array = MacArray(rows=macs_k, cols=num_pes // macs_k, macs_per_pe=2,
                         mac_energy_pj=mac_energy_pj)

    gb_write_bw = gb_read_bw if gb_write_bw is None else gb_write_bw
    # Local-buffer buses default to one full spatial operand tile per cycle
    # (the array can swap its registers in a single cycle), so the GB link
    # is the only bandwidth-limited hop — matching the Section-V machine
    # where all temporal stalls are attributed to the GB ports.
    w_lb_bus = float(macs_k * macs_c * w_reg_bits) if w_lb_bus is None else w_lb_bus
    i_lb_bus = float(macs_b * macs_c * i_reg_bits) if i_lb_bus is None else i_lb_bus

    w_reg = MemoryInstance(
        "W-Reg", w_reg_bits, dual_port(read_bw=float(w_reg_bits), write_bw=float(w_reg_bits)),
        double_buffered=False, instances=array_size,
        read_energy_pj_per_bit=reg_energy_pj_per_bit,
        write_energy_pj_per_bit=reg_energy_pj_per_bit,
    )
    i_reg = MemoryInstance(
        "I-Reg", i_reg_bits, dual_port(read_bw=float(i_reg_bits), write_bw=float(i_reg_bits)),
        double_buffered=False, instances=array_size,
        read_energy_pj_per_bit=reg_energy_pj_per_bit,
        write_energy_pj_per_bit=reg_energy_pj_per_bit,
    )
    # One accumulator per (K, B) lane; the C-spatial MACs reduce into it.
    o_lanes = macs_k * macs_b
    o_reg = MemoryInstance(
        "O-Reg", o_reg_bits, dual_port(read_bw=float(o_reg_bits), write_bw=float(o_reg_bits)),
        double_buffered=False, instances=o_lanes,
        read_energy_pj_per_bit=reg_energy_pj_per_bit,
        write_energy_pj_per_bit=reg_energy_pj_per_bit,
    )
    w_lb = MemoryInstance(
        "W-LB", w_lb_bits, dual_port(read_bw=w_lb_bus, write_bw=w_lb_bus),
        double_buffered=lb_double_buffered,
        read_energy_pj_per_bit=lb_energy_pj_per_bit,
        write_energy_pj_per_bit=lb_energy_pj_per_bit,
    )
    i_lb = MemoryInstance(
        "I-LB", i_lb_bits, dual_port(read_bw=i_lb_bus, write_bw=i_lb_bus),
        double_buffered=lb_double_buffered,
        read_energy_pj_per_bit=lb_energy_pj_per_bit,
        write_energy_pj_per_bit=lb_energy_pj_per_bit,
    )
    gb = MemoryInstance(
        "GB", gb_bits, dual_port(read_bw=gb_read_bw, write_bw=gb_write_bw),
        double_buffered=False,
        read_energy_pj_per_bit=gb_energy_pj_per_bit,
        write_energy_pj_per_bit=gb_energy_pj_per_bit,
    )

    w_reg_lvl = auto_allocate(w_reg, {Operand.W})
    i_reg_lvl = auto_allocate(i_reg, {Operand.I})
    o_reg_lvl = auto_allocate(o_reg, {Operand.O})
    w_lb_lvl = auto_allocate(w_lb, {Operand.W})
    i_lb_lvl = auto_allocate(i_lb, {Operand.I})
    gb_lvl = auto_allocate(gb, {Operand.W, Operand.I, Operand.O})

    hierarchy = MemoryHierarchy(
        {
            Operand.W: (w_reg_lvl, w_lb_lvl, gb_lvl),
            Operand.I: (i_reg_lvl, i_lb_lvl, gb_lvl),
            Operand.O: (o_reg_lvl, gb_lvl),
        }
    )
    accelerator = Accelerator(
        name=name,
        mac_array=mac_array,
        hierarchy=hierarchy,
        stall_overlap=StallOverlapConfig.all_concurrent(),
    )
    spatial = {LoopDim.K: macs_k, LoopDim.B: macs_b, LoopDim.C: macs_c}
    return Preset(accelerator, spatial)


def case_study_accelerator(gb_read_bw: float = 128.0,
                           gb_write_bw: Optional[float] = None) -> Preset:
    """The Section-V scale-down machine (Cases 1 and 2).

    8x16 PE x 2 MACs = 256 MACs spatially unrolled as ``K 16 | B 8 | C 2``,
    16 KB W-LB, 8 KB I-LB, 1 MB GB at 128 bit/cycle read and write.
    """
    return build_accelerator(
        "case-study-16x16",
        macs_k=16, macs_b=8, macs_c=2,
        w_lb_bits=16 * KB, i_lb_bits=8 * KB,
        gb_read_bw=gb_read_bw, gb_write_bw=gb_write_bw,
    )


def inhouse_accelerator() -> Preset:
    """The Section-IV validation chip (16x32 PE x 2 MACs = 1024 MACs).

    Spatial unrolling ``K 16 | B 32 | C 2``: this is the unique unrolling
    consistent with every published parameter — a 16x32 PE geometry, one
    24 b output register per PE (K16 x B32 = 512 accumulator lanes), a
    256 b W-LB bus (K16 x C2 = 32 weights/cycle) and a 512 b I-LB bus
    (B32 x C2 = 64 inputs/cycle). 32 KB W-LB, 64 KB I-LB, 1 MB GB from 16
    64-KB macros; the GB bus width is taken as 512 b/cycle read and write
    (one 32 b word per macro).
    """
    return build_accelerator(
        "inhouse-7nm",
        macs_k=16, macs_b=32, macs_c=2,
        w_lb_bits=32 * KB, i_lb_bits=64 * KB,
        gb_read_bw=512.0, gb_write_bw=512.0,
    )


def shared_lb_accelerator(
    name: str = "shared-lb-16x16",
    macs_k: int = 16,
    macs_b: int = 8,
    macs_c: int = 2,
    lb_bits: int = 64 * KB,
    lb_rw_bw: float = 256.0,
    gb_rw_bw: float = 128.0,
    lb_shares: Optional[Dict[Operand, int]] = None,
) -> Preset:
    """A deliberately *different* architecture shape (generality check).

    Instead of per-operand local buffers with dedicated read/write ports,
    this machine has ONE local buffer shared by W, I and O behind a single
    read/write port, and a single-RW-port global buffer — the "memories
    shared by multiple operands" case whose interference most prior models
    assume away (Section I). Everything contends: W/I refills, O flushes
    and partial-sum read-backs all share two physical ports.

    ``lb_shares`` optionally pins a per-operand capacity split of the LB.
    """
    from repro.hardware.memory import single_rw_port

    array_size = macs_k * macs_b * macs_c
    if array_size % 2:
        raise ValueError("array template uses 2 MACs per PE; K*B*C must be even")
    mac_array = MacArray(
        rows=macs_k, cols=array_size // 2 // macs_k, macs_per_pe=2,
        mac_energy_pj=0.3,
    )
    w_reg = MemoryInstance(
        "W-Reg", 8, dual_port(8.0, 8.0), instances=array_size,
        read_energy_pj_per_bit=0.003, write_energy_pj_per_bit=0.003,
    )
    i_reg = MemoryInstance(
        "I-Reg", 8, dual_port(8.0, 8.0), instances=array_size,
        read_energy_pj_per_bit=0.003, write_energy_pj_per_bit=0.003,
    )
    o_reg = MemoryInstance(
        "O-Reg", 24, dual_port(24.0, 24.0), instances=macs_k * macs_b,
        read_energy_pj_per_bit=0.003, write_energy_pj_per_bit=0.003,
    )
    lb = MemoryInstance(
        "LB", lb_bits, single_rw_port(lb_rw_bw),
        read_energy_pj_per_bit=0.015, write_energy_pj_per_bit=0.015,
    )
    gb = MemoryInstance(
        "GB", 1024 * KB, single_rw_port(gb_rw_bw),
        read_energy_pj_per_bit=0.060, write_energy_pj_per_bit=0.060,
    )
    lb_level = auto_allocate(lb, set(Operand), capacity_share=lb_shares)
    gb_level = auto_allocate(gb, set(Operand))
    hierarchy = MemoryHierarchy(
        {
            Operand.W: (auto_allocate(w_reg, {Operand.W}), lb_level, gb_level),
            Operand.I: (auto_allocate(i_reg, {Operand.I}), lb_level, gb_level),
            Operand.O: (auto_allocate(o_reg, {Operand.O}), lb_level, gb_level),
        }
    )
    accelerator = Accelerator(
        name=name,
        mac_array=mac_array,
        hierarchy=hierarchy,
        stall_overlap=StallOverlapConfig.all_concurrent(),
    )
    spatial = {LoopDim.K: macs_k, LoopDim.B: macs_b, LoopDim.C: macs_c}
    return Preset(accelerator, spatial)


def array_scales() -> Dict[str, Tuple[int, int, int]]:
    """The Case-study-3 MAC-array sizes and their spatial unrollings."""
    return {
        "16x16": (16, 8, 2),
        "32x32": (32, 16, 2),
        "64x64": (64, 32, 2),
    }
