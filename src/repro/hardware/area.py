"""Analytical area model for registers, SRAMs and MAC arrays.

Case study 3 plots a latency-area design space, so every design point needs
an area estimate. We use a simple CACTI-flavoured analytical fit for a 7 nm
class technology (the validation chip's node [18]):

* a register bit costs a flip-flop plus mux overhead;
* an SRAM macro costs ``bits x bitcell`` plus a periphery term that grows
  with the square root of the capacity (sense amps, decoders) and a fixed
  per-macro overhead — so small SRAMs are dominated by periphery, matching
  the familiar register-file-vs-SRAM crossover;
* wider ports add a linear bandwidth term (more IO, wider sense stacks).

Absolute numbers are *not* calibrated against the (unpublished) chip; only
relative ordering matters for reproducing the Fig. 8 trade-off shapes, and
the constants below reproduce sane ratios (1 KB RF ~ several kB SRAM etc.).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.accelerator import Accelerator
    from repro.hardware.memory import MemoryInstance

#: 7 nm-class high-density 6T bitcell, mm^2 per bit (0.027 um^2 [18] plus
#: array overhead).
_SRAM_BITCELL_MM2 = 0.040e-6
#: Periphery scaling term, mm^2 per sqrt(bit).
_SRAM_PERIPHERY_MM2 = 0.60e-6
#: Fixed overhead per SRAM macro, mm^2.
_SRAM_MACRO_MM2 = 0.0006
#: Port bandwidth wiring/IO cost, mm^2 per (bit/cycle) of port width.
_PORT_MM2_PER_BIT = 0.08e-6
#: Flip-flop based register bit, mm^2 per bit.
_REG_BIT_MM2 = 0.45e-6
#: One INT8 MAC incl. its pipeline registers, mm^2.
_MAC_MM2 = 6.0e-5

#: Below this capacity a memory is costed as a register file, above as SRAM.
REGISTER_THRESHOLD_BITS = 4096


def register_area_mm2(bits: int, port_bandwidth_bits: float = 0.0) -> float:
    """Area of a flip-flop register file of ``bits`` bits."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    return bits * _REG_BIT_MM2 + port_bandwidth_bits * _PORT_MM2_PER_BIT


def sram_area_mm2(bits: int, port_bandwidth_bits: float = 0.0) -> float:
    """Area of an SRAM macro of ``bits`` bits (CACTI-flavoured fit)."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    return (
        bits * _SRAM_BITCELL_MM2
        + math.sqrt(bits) * _SRAM_PERIPHERY_MM2
        + _SRAM_MACRO_MM2
        + port_bandwidth_bits * _PORT_MM2_PER_BIT
    )


def memory_area_mm2(instance: "MemoryInstance") -> float:
    """Area of one memory instance set (all lock-step copies included).

    Uses the instance's explicit ``area_mm2`` when provided; otherwise picks
    the register or SRAM cost model by capacity. Double-buffered memories
    pay for both halves (their physical ``size_bits`` already includes
    them).
    """
    if instance.area_mm2 is not None:
        return instance.area_mm2 * instance.instances
    port_bw = sum(p.bandwidth for p in instance.ports)
    if instance.size_bits <= REGISTER_THRESHOLD_BITS:
        one = register_area_mm2(instance.size_bits, port_bw)
    else:
        one = sram_area_mm2(instance.size_bits, port_bw)
    return one * instance.instances


def accelerator_area_mm2(
    accelerator: "Accelerator", include: Optional[Iterable[str]] = None
) -> float:
    """Total area: MAC array plus (selected) memories.

    ``include=None`` accounts for every memory. Case study 3 passes the
    register/local-buffer names only, since "the area of GB is not included
    in the comparison".
    """
    selected = None if include is None else set(include)
    total = accelerator.mac_array.size * _MAC_MM2
    for level in accelerator.hierarchy.unique_levels():
        if selected is not None and level.name not in selected:
            continue
        total += memory_area_mm2(level.instance)
    return total
