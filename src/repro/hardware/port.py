"""Physical memory ports and data-transfer endpoint kinds.

Step 1 of the model decouples the read and write operations on every
interface between two unit-memory levels into separate data-transfer links
(DTLs). Each DTL terminates on a *physical port* of each memory it touches;
Step 2 then combines the DTLs that land on the same physical port.

Endpoint kinds follow the four possible directions data can cross a memory
boundary (the ZigZag fh/tl/fl/th convention):

========  ==========================================================
``FH``    write into this memory From a Higher level (W/I refill,
          output partial-sum read-back landing here)
``TL``    read out of this memory To a Lower level (feeding compute,
          or sourcing a partial-sum read-back)
``FL``    write into this memory From a Lower level (output flush
          arriving here)
``TH``    read out of this memory To a Higher level (output flush
          leaving here)
========  ==========================================================
"""

from __future__ import annotations

import dataclasses
import enum


class PortDirection(str, enum.Enum):
    """What a physical port can do."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"

    def can_read(self) -> bool:
        return self in (PortDirection.READ, PortDirection.READ_WRITE)

    def can_write(self) -> bool:
        return self in (PortDirection.WRITE, PortDirection.READ_WRITE)


class EndpointKind(str, enum.Enum):
    """Direction of a DTL endpoint relative to the memory it terminates on."""

    FH = "fh"  # write, from higher level
    TL = "tl"  # read, to lower level
    FL = "fl"  # write, from lower level
    TH = "th"  # read, to higher level

    @property
    def is_write(self) -> bool:
        """Whether this endpoint performs a *write* on its memory."""
        return self in (EndpointKind.FH, EndpointKind.FL)

    @property
    def is_read(self) -> bool:
        """Whether this endpoint performs a *read* on its memory."""
        return not self.is_write


@dataclasses.dataclass(frozen=True)
class Port:
    """A physical memory port.

    Parameters
    ----------
    name:
        Port identifier, unique within its memory instance (e.g. ``"rd"``).
    direction:
        Read, write, or shared read/write.
    bandwidth:
        Sustained port bandwidth in **bits per cycle** (the paper's RealBW
        for DTLs using this port).
    """

    name: str
    direction: PortDirection
    bandwidth: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"port {self.name}: bandwidth must be positive")

    def supports(self, endpoint: EndpointKind) -> bool:
        """Whether this port can carry a DTL endpoint of ``endpoint`` kind."""
        if endpoint.is_write:
            return self.direction.can_write()
        return self.direction.can_read()
