"""Whole-network evaluation: apply the intra-layer model layer by layer.

The paper's model is intra-layer by design ("builds a solid foundation for
future work of modeling and optimizing latency in cross-layer multi-core
DNN mapping scenarios" — Section VI). This module provides the natural
layer-by-layer composition a user needs today: lower each layer (Im2Col
when requested), search a mapping, evaluate latency and energy, and sum —
assuming layers run back to back with their (off)loading phases exposed,
which is an upper bound on a pipelined deployment.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

from repro.core.report import LatencyReport
from repro.dse.mapper import MapperConfig, TemporalMapper
from repro.energy.energy_model import EnergyReport
from repro.engine import EvaluationEngine
from repro.hardware.presets import Preset
from repro.mapping.mapping import Mapping, MappingError
from repro.observability.campaign import current_campaign
from repro.observability.ledger import current_ledger, record_interruption
from repro.observability.metrics import current_metrics
from repro.observability.progress import current_emitter
from repro.observability.tracer import current_tracer
from repro.workload.im2col import im2col
from repro.workload.layer import LayerSpec


@dataclasses.dataclass(frozen=True)
class LayerResult:
    """One layer's mapping, latency and (optional) energy."""

    layer: LayerSpec
    mapping: Mapping
    report: LatencyReport
    energy: Optional[EnergyReport]

    @property
    def cycles(self) -> float:
        """Layer latency in cycles."""
        return self.report.total_cycles


@dataclasses.dataclass(frozen=True)
class NetworkResult:
    """Aggregate of every layer of a network on one machine."""

    accelerator_name: str
    layers: Sequence[LayerResult]
    skipped: Sequence[str]

    @property
    def total_cycles(self) -> float:
        """Sum of layer latencies (back-to-back execution)."""
        return sum(r.cycles for r in self.layers)

    @property
    def total_macs(self) -> int:
        """Total MAC operations across the network."""
        return sum(r.layer.total_macs for r in self.layers)

    @property
    def utilization(self) -> float:
        """Network-level MAC utilization at the machine's peak rate."""
        if not self.layers:
            return 0.0
        peak = self.total_cycles * self._array_size()
        return self.total_macs / peak if peak else 0.0

    def _array_size(self) -> int:
        # All layer reports share one machine; recover its array size from
        # the per-layer ideal cycles.
        first = self.layers[0]
        return round(first.layer.total_macs / first.report.cc_ideal)

    @property
    def total_energy_pj(self) -> Optional[float]:
        """Total dynamic energy, when energy evaluation was requested."""
        if any(r.energy is None for r in self.layers):
            return None
        return sum(r.energy.total_pj for r in self.layers)

    def dominant_layers(self, top: int = 3) -> List[LayerResult]:
        """The layers that dominate the network latency."""
        return sorted(self.layers, key=lambda r: -r.cycles)[:top]

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"Network on {self.accelerator_name}: "
            f"{len(self.layers)} layers, {self.total_macs} MACs",
            f"  total latency : {self.total_cycles:12.0f} cc",
            f"  utilization   : {self.utilization:12.1%}",
        ]
        energy = self.total_energy_pj
        if energy is not None:
            lines.append(f"  total energy  : {energy / 1e6:12.3f} uJ")
        lines.append("  dominant layers:")
        for r in self.dominant_layers():
            lines.append(
                f"    {r.layer.name or '?':12s} {r.cycles:12.0f} cc "
                f"(U {r.report.utilization:6.1%})"
            )
        if self.skipped:
            lines.append(f"  skipped (unmappable): {', '.join(self.skipped)}")
        return "\n".join(lines)


class NetworkEvaluator:
    """Run every layer of a network through mapper + latency (+ energy).

    Evaluations route through one :class:`EvaluationEngine`, so networks
    with repeated layer shapes (residual stacks, repeated blocks) search
    and evaluate each distinct shape once — pass a shared ``engine`` to
    pool the cache across machines or enable the process executor.
    """

    def __init__(
        self,
        preset: Preset,
        mapper_config: Optional[MapperConfig] = None,
        apply_im2col: bool = True,
        with_energy: bool = False,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        self.preset = preset
        self.mapper = TemporalMapper(
            preset.accelerator,
            preset.spatial_unrolling,
            mapper_config or MapperConfig(max_enumerated=150, samples=100),
            engine=engine,
        )
        self.engine = self.mapper.engine
        self.with_energy = with_energy
        self.apply_im2col = apply_im2col

    def evaluate(self, layers: Sequence[LayerSpec]) -> NetworkResult:
        """Evaluate ``layers`` back to back.

        With an ambient progress emitter the network is a
        ``unit="layers"`` run — one chunk event per layer (nested mapper
        runs handle per-evaluation granularity) — and a Ctrl-C between
        layers leaves a ``kind="interrupted"`` ledger row naming how
        many layers completed.
        """
        tracer = current_tracer()
        metrics = current_metrics()
        emitter = current_emitter()
        run = None
        if emitter.enabled:
            run = emitter.start_run(
                "network.evaluate",
                total_units=len(layers),
                unit="layers",
                accelerator=self.preset.accelerator.name,
            )
        campaign = current_campaign()
        funnel = campaign.phase("network") if campaign.enabled else None
        with tracer.span(
            "network.evaluate",
            accelerator=self.preset.accelerator.name,
            layers=len(layers),
        ) as span:
            results: List[LayerResult] = []
            skipped: List[str] = []
            try:
                for index, layer in enumerate(layers):
                    lowered = im2col(layer) if self.apply_im2col else layer
                    if funnel is not None:
                        funnel.admit()
                    layer_t0 = time.perf_counter()
                    with tracer.span(
                        "network.layer", layer=layer.name or str(layer.layer_type)
                    ) as layer_span:
                        metrics.counter(
                            "repro_network_layers_total",
                            "Network layers submitted for evaluation.",
                        ).inc()
                        try:
                            best = self.mapper.best_mapping(lowered)
                        except MappingError:
                            skipped.append(layer.name or str(layer.layer_type))
                            if funnel is not None:
                                funnel.discard("unmappable-layer")
                            layer_span.set("mappable", False)
                            if run is not None:
                                run.advance(
                                    1, errors=1,
                                    wall_s=time.perf_counter() - layer_t0,
                                    index=index,
                                    note=layer.name or str(layer.layer_type),
                                )
                            continue
                        energy = (
                            self.engine.evaluate_energy(best.mapping)
                            if self.with_energy
                            else None
                        )
                        if tracer.enabled:
                            layer_span.set_many(
                                mappable=True,
                                cycles=best.report.total_cycles,
                                utilization=best.report.utilization,
                            )
                        if funnel is not None:
                            funnel.retain()
                        results.append(
                            LayerResult(
                                layer=lowered, mapping=best.mapping,
                                report=best.report, energy=energy,
                            )
                        )
                        if run is not None:
                            run.advance(
                                1,
                                wall_s=time.perf_counter() - layer_t0,
                                index=index,
                                note=layer.name or str(layer.layer_type),
                            )
            except KeyboardInterrupt:
                ledger = current_ledger()
                if ledger.enabled:
                    ledger.append(record_interruption(
                        flow="network.evaluate",
                        done_units=len(results) + len(skipped),
                        total_units=len(layers),
                        unit="layers",
                        reason="KeyboardInterrupt",
                    ))
                    # Checkpoint the campaign alongside the interrupted
                    # row (partial: funnel counts + incumbent so far).
                    campaign.flush_to(ledger, partial=True)
                if run is not None:
                    run.interrupt("KeyboardInterrupt")
                raise
            if run is not None:
                run.finish()
            result = NetworkResult(
                accelerator_name=self.preset.accelerator.name,
                layers=tuple(results),
                skipped=tuple(skipped),
            )
            if tracer.enabled:
                span.set("total_cycles", result.total_cycles)
                span.set("skipped", len(result.skipped))
        return result

    def layer_table(self, result: NetworkResult) -> List[Dict[str, float]]:
        """Flat per-layer rows for CSV export."""
        rows = []
        for r in result.layers:
            row: Dict[str, float] = {"layer": r.layer.name}  # type: ignore[dict-item]
            row["macs"] = float(r.layer.total_macs)
            row.update(r.report.as_dict())
            if r.energy is not None:
                row["energy_pj"] = r.energy.total_pj
            rows.append(row)
        return rows
