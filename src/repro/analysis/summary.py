"""One-call design reports: everything the model knows, as markdown.

``generate_report`` runs the full toolchain for one (machine, layer) pair
— mapping search, the 3-step latency model, energy, dataflow
classification, roofline placement, bottleneck diagnosis, an optional
simulator cross-check and a bandwidth mini-sweep — and renders a single
markdown document. This is the artifact a designer actually wants out of
an analytical model: not a number, but the story of where the cycles go
and which knob to turn.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.analysis.bottleneck import diagnose
from repro.analysis.roofline import compare_with_roofline
from repro.core.sensitivity import SensitivityAnalyzer
from repro.dse.mapper import MapperConfig, TemporalMapper
from repro.hardware.presets import Preset
from repro.mapping.stationarity import classify_dataflow
from repro.workload.layer import LayerSpec
from repro.workload.operand import Operand


@dataclasses.dataclass(frozen=True)
class ReportConfig:
    """What to include and how hard to search."""

    mapper_config: MapperConfig = dataclasses.field(
        default_factory=lambda: MapperConfig(max_enumerated=150, samples=120)
    )
    simulate: bool = False
    bandwidth_sweep_memory: Optional[str] = "GB"
    bandwidth_points: Sequence[float] = (128.0, 256.0, 512.0, 1024.0)


def generate_report(
    preset: Preset,
    layer: LayerSpec,
    config: Optional[ReportConfig] = None,
) -> str:
    """Render the full markdown design report for ``layer`` on ``preset``."""
    config = config or ReportConfig()
    accelerator = preset.accelerator
    mapper = TemporalMapper(
        accelerator, preset.spatial_unrolling, config.mapper_config
    )
    best = mapper.best_mapping(layer)
    # The search's report may be slim (batch path); the bottleneck and
    # roofline sections need the per-DTL anatomy, which evaluate()
    # restores from the cached numbers.
    report = mapper.engine.evaluate(best.mapping, validate=False)
    energy = mapper.engine.evaluate_energy(best.mapping)
    dataflow = classify_dataflow(best.mapping)
    roofline = compare_with_roofline(accelerator, best.mapping, report)

    lines: List[str] = []
    add = lines.append
    add(f"# {layer.name or layer.layer_type.value} on {accelerator.name}")
    add("")
    add(f"- workload: `{layer.describe()}`")
    add(f"- machine: {accelerator.mac_array.describe()}, "
        f"{len(accelerator.memory_names())} memories")
    add(f"- best mapping dataflow: **{dataflow.label}**")
    add("")

    add("## Latency")
    add("")
    add("| component | cycles |")
    add("|---|---|")
    bd = report.breakdown
    for label, value in (
        ("pre-loading", bd.preload),
        ("ideal compute (CC_ideal)", bd.ideal),
        ("spatial stall", bd.spatial_stall),
        ("temporal stall (SS_overall)", bd.temporal_stall),
        ("offloading", bd.offload),
        ("**total**", bd.total),
    ):
        add(f"| {label} | {value:,.0f} |")
    add("")
    add(f"MAC-array utilization **{report.utilization:.1%}** "
        f"(spatial {report.spatial_utilization:.1%}, "
        f"temporal {report.temporal_utilization:.1%}); "
        f"Fig. 1(b) scenario {report.scenario}.")
    add("")

    add("## Mapping")
    add("")
    for operand in Operand:
        add(f"- `{operand}`: {best.mapping.temporal.describe(operand)}")
    add(f"- spatial: `{best.mapping.spatial}`")
    add("")

    add("## Roofline placement")
    add("")
    add(f"- {roofline.point.describe()}")
    add(f"- model prediction is {roofline.roofline_optimism:.2f}x the "
        f"roofline floor; the gap ({roofline.stall_beyond_roofline:,.0f} cc) "
        f"is window/interference stall only the uniform model captures.")
    add("")

    findings = diagnose(report)
    add("## Bottlenecks")
    add("")
    if findings:
        for finding in findings:
            add(f"- {finding.describe()}")
    else:
        add("- no temporal stall: the memory system keeps up everywhere.")
    add("")

    add("## Energy")
    add("")
    add(f"- total: **{energy.total_pj / 1e6:.3f} uJ** "
        f"(MAC {energy.mac_pj / 1e6:.3f} uJ)")
    for memory, pj in sorted(energy.memory_pj.items(), key=lambda kv: -kv[1]):
        add(f"- {memory}: {pj / 1e6:.3f} uJ")
    add("")

    if config.simulate:
        from repro.simulator.engine import CycleSimulator
        from repro.simulator.result import accuracy

        sim = CycleSimulator(accelerator, best.mapping).run()
        add("## Simulator cross-check")
        add("")
        add(f"- simulated: {sim.total_cycles:,.0f} cc "
            f"(model accuracy {accuracy(report.total_cycles, sim.total_cycles):.1%})")
        add("")

    if config.bandwidth_sweep_memory:
        try:
            analyzer = SensitivityAnalyzer(
                accelerator, preset.spatial_unrolling,
                mapper_config=config.mapper_config,
                engine=mapper.engine,
            )
            curve = analyzer.bandwidth_sweep(
                layer, config.bandwidth_sweep_memory, config.bandwidth_points
            )
        except KeyError:
            curve = None
        if curve is not None and curve.points:
            add(f"## {config.bandwidth_sweep_memory} bandwidth sensitivity")
            add("")
            add("| b/cycle | total cc | utilization |")
            add("|---|---|---|")
            for p in curve.points:
                add(f"| {p.value:.0f} | {p.total_cycles:,.0f} | {p.utilization:.1%} |")
            knee = curve.knee()
            if knee is not None:
                add("")
                add(f"Knee at **{knee.value:.0f} b/cycle** — bandwidth beyond "
                    f"this buys < 2 % latency.")
            add("")

    return "\n".join(lines)
