"""Roofline analysis: where a (layer, mapping, machine) point sits.

Section II-A-2: "Its performance roofline is determined by hardware
parameters, such as MAC array size, interconnectivity, and memory
hierarchy." This module computes the classic roofline coordinates for a
mapping — operational intensity against the *global-buffer* traffic the
mapping actually generates (reuse included, unlike a naive layer-level
roofline) — and compares the roofline bound with what the uniform latency
model predicts and why they differ (window/keep-out effects the roofline
cannot see).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.core.report import LatencyReport
from repro.energy.access_counts import count_accesses
from repro.hardware.accelerator import Accelerator
from repro.mapping.mapping import Mapping
from repro.workload.operand import Operand


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """Roofline coordinates of one mapping on one machine."""

    macs: int
    boundary_bits: float
    peak_macs_per_cycle: float
    boundary_bw_bits: float

    @property
    def operational_intensity(self) -> float:
        """MACs per bit crossing the analyzed memory boundary."""
        if self.boundary_bits <= 0:
            return float("inf")
        return self.macs / self.boundary_bits

    @property
    def bandwidth_bound_macs_per_cycle(self) -> float:
        """Throughput ceiling imposed by the boundary bandwidth."""
        return self.operational_intensity * self.boundary_bw_bits

    @property
    def attainable_macs_per_cycle(self) -> float:
        """min(compute roof, bandwidth roof)."""
        return min(self.peak_macs_per_cycle, self.bandwidth_bound_macs_per_cycle)

    @property
    def bound(self) -> str:
        """``"compute"`` or ``"memory"`` — which roof is binding."""
        if self.bandwidth_bound_macs_per_cycle >= self.peak_macs_per_cycle:
            return "compute"
        return "memory"

    @property
    def min_cycles(self) -> float:
        """Roofline lower bound on the computation-phase cycle count."""
        return self.macs / self.attainable_macs_per_cycle

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"OI={self.operational_intensity:.2f} MAC/bit, "
            f"attainable {self.attainable_macs_per_cycle:.1f} MAC/cyc "
            f"({self.bound}-bound), floor {self.min_cycles:.0f} cc"
        )


def roofline_point(
    accelerator: Accelerator,
    mapping: Mapping,
    boundary: str = "GB",
) -> RooflinePoint:
    """Roofline coordinates using the mapping's actual boundary traffic.

    ``boundary`` names the memory whose total read+write traffic defines
    the operational intensity (the global buffer by default — the paper's
    bottleneck). Port bandwidth is the sum of the memory's distinct port
    bandwidths (a read+write dual port can move both streams per cycle).
    """
    counts = count_accesses(accelerator, mapping)
    bits = counts.memory_reads(boundary) + counts.memory_writes(boundary)
    level = accelerator.memory_by_name(boundary)
    bw = sum(p.bandwidth for p in level.instance.ports) * level.instance.instances
    return RooflinePoint(
        macs=mapping.layer.total_macs,
        boundary_bits=bits,
        peak_macs_per_cycle=float(accelerator.mac_array.size),
        boundary_bw_bits=bw,
    )


@dataclasses.dataclass(frozen=True)
class RooflineComparison:
    """Roofline floor vs the uniform model's prediction."""

    point: RooflinePoint
    model_cycles: float
    spatial_cycles: int

    @property
    def roofline_cycles(self) -> float:
        """The larger of the roofline floor and the spatial-mapping floor."""
        return max(self.point.min_cycles, float(self.spatial_cycles))

    @property
    def stall_beyond_roofline(self) -> float:
        """Cycles the model predicts above the roofline floor.

        The roofline assumes perfectly schedulable traffic; the uniform
        model adds keep-out windows, port interference and periodic
        deadlines — this gap is exactly what Section III models.
        """
        return max(0.0, self.model_cycles - self.roofline_cycles)

    @property
    def roofline_optimism(self) -> float:
        """model / roofline — how much the roofline under-predicts."""
        return self.model_cycles / self.roofline_cycles


def compare_with_roofline(
    accelerator: Accelerator,
    mapping: Mapping,
    report: LatencyReport,
    boundary: str = "GB",
) -> RooflineComparison:
    """Bundle the roofline floor with the model's report for one mapping."""
    return RooflineComparison(
        point=roofline_point(accelerator, mapping, boundary),
        model_cycles=report.computation_cycles,
        spatial_cycles=report.cc_spatial,
    )


def roofline_sweep(
    accelerator: Accelerator,
    mappings: Dict[str, Mapping],
    boundary: str = "GB",
) -> Dict[str, RooflinePoint]:
    """Roofline coordinates for a set of labelled mappings."""
    return {
        label: roofline_point(accelerator, mapping, boundary)
        for label, mapping in mappings.items()
    }
