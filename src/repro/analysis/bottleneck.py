"""Bottleneck diagnosis: where stalls come from and what would fix them.

Section V-A closes with the design guidance the model enables: minimize
``SS_overall`` by "1) matching ReqBW (mapping-dependent) with RealBW
(HW-dependent), or 2) if RealBW is too low to match, reducing the frequent
access of the low-BW link". :func:`diagnose` turns a
:class:`~repro.core.report.LatencyReport` into that advice.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.core.report import LatencyReport


@dataclasses.dataclass(frozen=True)
class BottleneckFinding:
    """One ranked stall source with quantified remedies."""

    rank: int
    memory: str
    port: str
    stall_cycles: float
    stall_share: float
    req_bw: float
    real_bw: float
    advice: str

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"#{self.rank} {self.memory}.{self.port}: {self.stall_cycles:.0f} cc "
            f"({self.stall_share:.0%} of temporal stall) — ReqBW {self.req_bw:.0f} "
            f"vs RealBW {self.real_bw:.0f} b/cyc. {self.advice}"
        )


def diagnose(report: LatencyReport, top: int = 5) -> List[BottleneckFinding]:
    """Rank the stalling ports of ``report`` and attach remedies."""
    if report.ss_overall <= 0:
        return []
    stalling = [
        combo for combo in report.port_combinations.values() if combo.ss_comb > 0
    ]
    stalling.sort(key=lambda c: -c.ss_comb)
    findings: List[BottleneckFinding] = []
    for rank, combo in enumerate(stalling[:top], start=1):
        real_bw = max(d.real_bw for d in combo.dtls)
        ratio = combo.req_bw_comb / real_bw if real_bw else float("inf")
        if ratio > 4:
            advice = (
                f"ReqBW exceeds RealBW {ratio:.1f}x; raising bandwidth alone is "
                "unlikely to close the gap — reduce traffic on this link "
                "(more reuse below it, e.g. fewer partial-sum round trips)."
            )
        elif ratio > 1:
            advice = (
                f"Raising this port's bandwidth {ratio:.1f}x (or double-buffering "
                "the served memory) removes the stall."
            )
        else:
            advice = (
                "Aggregate window contention: the port bandwidth matches each "
                "stream alone but not their union — stagger the mappings' "
                "periods or split the port."
            )
        findings.append(
            BottleneckFinding(
                rank=rank,
                memory=combo.memory,
                port=combo.port,
                stall_cycles=combo.ss_comb,
                stall_share=min(1.0, combo.ss_comb / report.ss_overall),
                req_bw=combo.req_bw_comb,
                real_bw=real_bw,
                advice=advice,
            )
        )
    return findings
