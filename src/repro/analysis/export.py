"""CSV / JSON export of report tables."""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Optional, Sequence


def to_csv(rows: Sequence[Dict[str, Any]], path: Optional[str] = None) -> str:
    """Serialize ``rows`` (list of flat dicts) to CSV; optionally write it.

    Column order is the union of keys in first-seen order so that tables
    from :mod:`repro.analysis.breakdown` stay readable.
    """
    if not rows:
        return ""
    columns = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    text = buffer.getvalue()
    if path is not None:
        with open(path, "w", newline="") as handle:
            handle.write(text)
    return text


def to_json(data: Any, path: Optional[str] = None, indent: int = 2) -> str:
    """Serialize any JSON-compatible structure; optionally write it."""
    text = json.dumps(data, indent=indent, default=str)
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
