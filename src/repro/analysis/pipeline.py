"""Inter-layer overlap estimation (a first-order cross-layer extension).

The paper's model is intra-layer; its conclusion names cross-layer
scenarios as future work. This module provides the simplest sound
cross-layer refinement on top of the per-layer reports: when layers run
back to back on one core, layer ``i+1``'s **data pre-loading** can overlap
layer ``i``'s computation (its weights/inputs stream into the on-chip
memories while the array is still busy), and layer ``i``'s **offloading**
can overlap layer ``i+1``'s pre-loading on disjoint ports.

The estimate is deliberately conservative about bandwidth: hidden preload
is capped by the *stall slack* of the producing layer — a layer that
already saturates its memory ports cannot absorb a neighbor's preload
traffic for free — using the port-utilization information the reports
carry.

This module is a pure post-processing pass over per-layer reports: it
constructs no models itself; the reports come from an engine-backed
:class:`~repro.analysis.network.NetworkEvaluator` run.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Tuple

from repro.analysis.network import LayerResult, NetworkResult
from repro.observability.tracer import current_tracer


@dataclasses.dataclass(frozen=True)
class PipelinedEstimate:
    """Sequential vs overlapped execution of a layer sequence."""

    sequential_cycles: float
    pipelined_cycles: float
    hidden_cycles: float
    per_layer_hidden: Tuple[float, ...]

    @property
    def saving(self) -> float:
        """Fraction of the sequential latency removed by overlap."""
        if self.sequential_cycles <= 0:
            return 0.0
        return self.hidden_cycles / self.sequential_cycles

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"sequential {self.sequential_cycles:.0f} cc -> pipelined "
            f"{self.pipelined_cycles:.0f} cc ({self.saving:.1%} hidden)"
        )


def _absorbable_cycles(result: LayerResult) -> float:
    """How much neighbor traffic layer ``result`` can absorb.

    A layer whose array never stalls still leaves its memory ports partly
    idle; we approximate the absorbable window by the computation phase
    scaled by the array's *utilization headroom is irrelevant here* — what
    matters is port headroom, approximated by the non-stalled fraction of
    the computation phase (a stall means some port is already the
    bottleneck and has no slack to give).
    """
    report = result.report
    comp = report.computation_cycles
    if comp <= 0:
        return 0.0
    stalled_fraction = report.ss_overall / comp
    return comp * max(0.0, 1.0 - stalled_fraction)


def estimate_pipeline(results: Sequence[LayerResult]) -> PipelinedEstimate:
    """Estimate the overlapped latency of ``results`` run back to back.

    Traced as one ``pipeline.estimate`` span with a ``pipeline.layer``
    event per overlapped boundary (absorbable window, hidden preload /
    offload), so cross-layer attribution lands in the same trace as the
    per-layer stall anatomy.
    """
    if not results:
        return PipelinedEstimate(0.0, 0.0, 0.0, ())

    tracer = current_tracer()
    with tracer.span("pipeline.estimate") as span:
        sequential = sum(r.report.total_cycles for r in results)
        hidden_per_layer = [0.0] * len(results)
        for i in range(1, len(results)):
            producer = results[i - 1]
            consumer = results[i]
            window = _absorbable_cycles(producer)
            hidden_preload = min(consumer.report.preload, window)
            # Offload of the producer can ride the same window as the
            # consumer's preload only on disjoint directions; be conservative
            # and hide at most half of it.
            hidden_offload = min(producer.report.offload * 0.5, max(
                0.0, window - hidden_preload
            ))
            hidden_per_layer[i] = hidden_preload + hidden_offload
            if tracer.enabled:
                tracer.event(
                    "pipeline.layer",
                    index=i,
                    layer=consumer.report.layer_name,
                    window=window,
                    hidden_preload=hidden_preload,
                    hidden_offload=hidden_offload,
                )
        hidden = sum(hidden_per_layer)
        if tracer.enabled:
            span.set_many(
                layers=len(results),
                sequential_cycles=sequential,
                pipelined_cycles=sequential - hidden,
                hidden_cycles=hidden,
            )
    return PipelinedEstimate(
        sequential_cycles=sequential,
        pipelined_cycles=sequential - hidden,
        hidden_cycles=hidden,
        per_layer_hidden=tuple(hidden_per_layer),
    )


def estimate_network_pipeline(result: NetworkResult) -> PipelinedEstimate:
    """Convenience wrapper over a :class:`NetworkResult`."""
    return estimate_pipeline(list(result.layers))
