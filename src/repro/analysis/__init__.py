"""Reporting and analysis helpers on top of the latency/energy models.

* :mod:`~repro.analysis.breakdown` — tabulate latency breakdowns across
  layers / mappings (the Fig. 7(b) stacked-bar data);
* :mod:`~repro.analysis.bottleneck` — rank stall sources and suggest the
  Section-V remedies (raise RealBW or reduce traffic on the hot link);
* :mod:`~repro.analysis.timeline` — render Fig. 3-style ASCII timelines of
  computation vs. memory-update windows for a DTL;
* :mod:`~repro.analysis.export` — CSV/JSON export of any report table.
"""

from repro.analysis.breakdown import breakdown_table, compare_reports
from repro.analysis.bottleneck import BottleneckFinding, diagnose
from repro.analysis.network import LayerResult, NetworkEvaluator, NetworkResult
from repro.analysis.pipeline import (
    PipelinedEstimate,
    estimate_network_pipeline,
    estimate_pipeline,
)
from repro.analysis.roofline import (
    RooflineComparison,
    RooflinePoint,
    compare_with_roofline,
    roofline_point,
)
from repro.analysis.summary import ReportConfig, generate_report
from repro.analysis.timeline import render_timeline
from repro.analysis.export import to_csv, to_json

__all__ = [
    "BottleneckFinding",
    "LayerResult",
    "NetworkEvaluator",
    "NetworkResult",
    "PipelinedEstimate",
    "ReportConfig",
    "RooflineComparison",
    "RooflinePoint",
    "compare_with_roofline",
    "estimate_network_pipeline",
    "estimate_pipeline",
    "generate_report",
    "roofline_point",
    "breakdown_table",
    "compare_reports",
    "diagnose",
    "render_timeline",
    "to_csv",
    "to_json",
]
