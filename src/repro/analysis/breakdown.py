"""Latency-breakdown tables (the data behind Fig. 7(b))."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.report import LatencyReport

_COLUMNS = ("preload", "ideal", "spatial_stall", "temporal_stall", "offload", "total")


def breakdown_table(reports: Sequence[LatencyReport]) -> List[Dict[str, float]]:
    """One row per report with the five Fig. 7(b) components plus total."""
    rows: List[Dict[str, float]] = []
    for report in reports:
        row: Dict[str, float] = {"layer": report.layer_name}  # type: ignore[dict-item]
        row.update(report.breakdown.as_dict())
        row["utilization"] = report.utilization
        rows.append(row)
    return rows


def format_table(rows: Sequence[Dict[str, float]]) -> str:
    """Fixed-width text rendering of a breakdown table."""
    if not rows:
        return "(empty)"
    header = ["layer"] + [c for c in _COLUMNS] + ["utilization"]
    widths = {h: max(len(h), 12) for h in header}
    for row in rows:
        widths["layer"] = max(widths["layer"], len(str(row.get("layer", ""))))
    lines = ["  ".join(h.ljust(widths[h]) for h in header)]
    for row in rows:
        cells = [str(row.get("layer", "")).ljust(widths["layer"])]
        for col in _COLUMNS:
            cells.append(f"{row.get(col, 0.0):>{widths[col]}.0f}")
        cells.append(f"{row.get('utilization', 0.0):>{widths['utilization']}.1%}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def compare_reports(a: LatencyReport, b: LatencyReport) -> Dict[str, float]:
    """Relative differences of ``b`` vs ``a`` (the Case-1 comparison).

    Returns ratios: ``latency_ratio`` < 1 means ``b`` is faster;
    ``utilization_gain`` > 0 means ``b`` utilizes the array better.
    """
    return {
        "latency_ratio": b.total_cycles / a.total_cycles,
        "latency_saving": 1.0 - b.total_cycles / a.total_cycles,
        "utilization_gain": (b.utilization - a.utilization) / a.utilization,
        "temporal_stall_ratio": (
            b.ss_overall / a.ss_overall if a.ss_overall > 0 else float("inf")
        ),
        "ideal_identical": float(a.cc_ideal == b.cc_ideal),
    }
