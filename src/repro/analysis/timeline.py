"""Fig. 3-style ASCII timelines of computation vs. memory updates.

Renders a DTL's periodic behaviour the way Fig. 3 draws it: a computation
row of back-to-back periods and a memory row showing each update burst
(``X_REAL`` long) inside or overflowing its allowed window (``X_REQ``
starting at ``S``), with keep-out zones marked.
"""

from __future__ import annotations

import math

from repro.core.dtl import DTL


def render_timeline(dtl: DTL, periods: int = 3, width: int = 72) -> str:
    """ASCII timeline of ``periods`` periods of ``dtl``.

    Legend: ``C`` computation, ``#`` memory update, ``.`` allowed-window
    slack, ``x`` keep-out zone, ``!`` update overflowing past the window
    (stall). One character is ``periods * period / width`` cycles.
    """
    transfer = dtl.transfer
    period = transfer.period
    shown = min(periods, transfer.repeats) or 1
    span = shown * period
    scale = span / width

    def col(t: float) -> int:
        return min(width - 1, int(t / scale))

    compute_row = ["C"] * width
    mem_row = [" "] * width
    # First pass: keep-out zones and allowed windows of every period.
    for k in range(shown):
        base = k * period
        w_start = base + transfer.window_start
        w_end = w_start + dtl.x_req
        for i in range(col(base), col(w_start)):
            mem_row[i] = "x" if not math.isclose(dtl.x_req, period) else "."
        for i in range(col(w_start), max(col(w_start) + 1, col(min(w_end, span)))):
            mem_row[i] = "."
    # Second pass: actual updates, overflow past the window marked '!'.
    for k in range(shown):
        base = k * period
        w_start = base + transfer.window_start
        w_end = w_start + dtl.x_req
        u_end = w_start + dtl.x_real
        for i in range(col(w_start), max(col(w_start) + 1, col(min(u_end, span)))):
            mem_row[i] = "#" if (i * scale) <= w_end else "!"

    marks = [" "] * width
    for k in range(shown + 1):
        marks[col(min(k * period, span - scale))] = "|"

    header = (
        f"{transfer.operand}-{transfer.kind.value} on {dtl.memory}.{dtl.port}: "
        f"P={period:g} X_REQ={dtl.x_req:g} X_REAL={dtl.x_real:g} "
        f"SS_u={dtl.ss_u:+.1f}"
    )
    return "\n".join(
        [
            header,
            "comp: " + "".join(compute_row),
            "mem:  " + "".join(mem_row),
            "      " + "".join(marks),
            "      (C compute, # update, ! overflow/stall, x keep-out, . window)",
        ]
    )
