"""Design-space exploration: mapper, architecture search, Pareto analysis.

The paper integrates its latency model with ZigZag to "generate various
design points" (Section V). This package provides the equivalent tooling:

* :class:`~repro.dse.mapper.TemporalMapper` — LOMA-style temporal-mapping
  enumeration (prime-factor loop orders + capacity-driven level
  allocation), exhaustive when small and sampled otherwise;
* :mod:`~repro.dse.arch_search` — Case-study-3 architecture sweeps over the
  memory pool, array sizes and GB bandwidths;
* :mod:`~repro.dse.pareto` — Pareto-front extraction for the latency-area
  trade-off plots.
"""

from repro.dse.factorize import (
    count_permutations,
    multiset_permutations,
    ordered_factorizations,
    prime_factors,
)
from repro.dse.mapper import MapperConfig, MappingSearchResult, TemporalMapper
from repro.dse.arch_search import ArchPoint, ArchSearch, ArchSearchConfig
from repro.dse.local_search import (
    LocalSearchConfig,
    LocalSearchMapper,
    LocalSearchOutcome,
)
from repro.dse.pareto import pareto_front
from repro.dse.spatial_search import (
    SpatialSearch,
    SpatialSearchConfig,
    SpatialSearchResult,
    enumerate_unrollings,
)

__all__ = [
    "ArchPoint",
    "ArchSearch",
    "ArchSearchConfig",
    "LocalSearchConfig",
    "LocalSearchMapper",
    "LocalSearchOutcome",
    "MapperConfig",
    "MappingSearchResult",
    "SpatialSearch",
    "SpatialSearchConfig",
    "SpatialSearchResult",
    "TemporalMapper",
    "count_permutations",
    "enumerate_unrollings",
    "multiset_permutations",
    "ordered_factorizations",
    "pareto_front",
    "prime_factors",
]
