"""Spatial-mapping search: which loops to unroll across the MAC array.

The paper fixes one spatial unrolling per machine (e.g. ``K16|B8|C2``) and
scales it by hand in Case study 3. A full AHM explorer must also search
this axis (Section II-A-3: "Ideal spatial mapping fully utilizes the MAC
array"), so this module enumerates candidate unrollings for an array size
and runs the temporal mapper under each.

Candidates are factorizations of (at most) the array size over the layer's
dimensions, pruned to those that keep spatial utilization above a floor.
The output-lane constraint of the register-file template is respected: the
product of output-relevant unrolls (K, B, OX, OY) must not exceed the
available accumulator lanes.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.dse.factorize import prime_factors
from repro.dse.mapper import MapperConfig, MappingSearchResult, TemporalMapper
from repro.engine import EvaluationEngine
from repro.hardware.accelerator import Accelerator
from repro.mapping.mapping import MappingError
from repro.mapping.spatial import SpatialMapping
from repro.observability.campaign import current_campaign
from repro.workload.dims import LoopDim
from repro.workload.layer import LayerSpec
from repro.workload.operand import Operand


@dataclasses.dataclass(frozen=True)
class SpatialSearchConfig:
    """Budget and pruning knobs for the spatial search."""

    dims: Tuple[LoopDim, ...] = (LoopDim.K, LoopDim.B, LoopDim.C)
    min_spatial_utilization: float = 0.5
    max_candidates: int = 64
    require_full_array: bool = False
    mapper_config: MapperConfig = dataclasses.field(
        default_factory=lambda: MapperConfig(max_enumerated=100, samples=80)
    )


@dataclasses.dataclass(frozen=True)
class SpatialSearchResult:
    """Best mapping found under one spatial unrolling."""

    spatial: SpatialMapping
    result: MappingSearchResult

    @property
    def total_cycles(self) -> float:
        """Latency of the best temporal mapping under this unrolling."""
        return self.result.report.total_cycles


def enumerate_unrollings(
    layer: LayerSpec,
    array_size: int,
    config: Optional[SpatialSearchConfig] = None,
) -> Iterator[SpatialMapping]:
    """Candidate spatial unrollings for ``layer`` on ``array_size`` MACs.

    Splits the array size's prime factors over the configured dimensions in
    every distinct way, clamps factors to the layer bounds, and prunes
    duplicates and low-utilization candidates.
    """
    config = config or SpatialSearchConfig()
    primes = prime_factors(array_size)
    dims = config.dims
    seen: set = set()
    emitted = 0
    # Assign each prime factor to one of the dims (or drop it -> smaller array use).
    choices = list(range(len(dims))) + [-1]
    for assignment in itertools.product(choices, repeat=len(primes)):
        factors: Dict[LoopDim, int] = {d: 1 for d in dims}
        for prime, slot in zip(primes, assignment):
            if slot >= 0:
                factors[dims[slot]] *= prime
        if config.require_full_array and -1 in assignment:
            continue
        # Clamp to layer bounds: unrolling beyond the bound idles MACs for
        # nothing — fold the excess away instead.
        clamped = {
            d: min(f, layer.size(d)) for d, f in factors.items() if f > 1
        }
        mapping = SpatialMapping(clamped)
        key = tuple(sorted((d.value, f) for d, f in mapping.unrolling.items()))
        if key in seen:
            continue
        seen.add(key)
        if mapping.total_unrolling > array_size:
            continue
        if mapping.spatial_utilization(layer, array_size) < config.min_spatial_utilization:
            continue
        yield mapping
        emitted += 1
        if emitted >= config.max_candidates:
            return


def output_lanes_needed(spatial: SpatialMapping) -> int:
    """Accumulator lanes a spatial unrolling demands (O-relevant product)."""
    lanes = 1
    for dim, factor in spatial.unrolling.items():
        if dim in (LoopDim.K, LoopDim.B, LoopDim.OX, LoopDim.OY):
            lanes *= factor
    return lanes


class SpatialSearch:
    """Joint spatial + temporal mapping search on one accelerator.

    Every candidate unrolling's temporal search runs through one shared
    :class:`EvaluationEngine`, so the latency of a (mapping) revisited
    under two unrollings is evaluated once and ``search.engine.stats``
    covers the whole joint search.
    """

    def __init__(
        self,
        accelerator: Accelerator,
        config: Optional[SpatialSearchConfig] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        self.accelerator = accelerator
        self.config = config or SpatialSearchConfig()
        self.engine = engine or EvaluationEngine(
            accelerator, self.config.mapper_config.model_options
        )

    def candidates(self, layer: LayerSpec) -> List[SpatialMapping]:
        """Feasible unrollings (array size + accumulator lanes respected)."""
        array = self.accelerator.mac_array.size
        o_reg = self.accelerator.hierarchy.innermost(Operand.O).instance
        lanes = o_reg.instances
        campaign = current_campaign()
        funnel = campaign.phase("spatial_search") if campaign.enabled else None
        out = []
        for spatial in enumerate_unrollings(layer, array, self.config):
            if funnel is not None:
                funnel.admit()
            if output_lanes_needed(spatial) <= max(lanes, 1):
                out.append(spatial)
            elif funnel is not None:
                funnel.discard("lane-overflow")
        return out

    def search(self, layer: LayerSpec) -> List[SpatialSearchResult]:
        """Best temporal mapping per candidate unrolling, best first."""
        campaign = current_campaign()
        funnel = campaign.phase("spatial_search") if campaign.enabled else None
        results: List[SpatialSearchResult] = []
        for spatial in self.candidates(layer):
            mapper = TemporalMapper(
                self.accelerator,
                spatial,
                self.config.mapper_config,
                engine=self.engine,
            )
            try:
                best = mapper.best_mapping(layer)
            except MappingError:
                if funnel is not None:
                    funnel.discard("unmappable-spatial")
                continue
            if funnel is not None:
                funnel.retain()
            results.append(SpatialSearchResult(spatial, best))
        results.sort(key=lambda r: r.total_cycles)
        return results

    def best(self, layer: LayerSpec) -> SpatialSearchResult:
        """The jointly-optimal (spatial, temporal) mapping."""
        results = self.search(layer)
        if not results:
            raise MappingError(
                f"no feasible spatial mapping of {layer.describe()} on "
                f"{self.accelerator.name}"
            )
        return results[0]


def utilization_ceiling(layer: LayerSpec, array_size: int) -> float:
    """Best achievable spatial utilization over all candidate unrollings."""
    best = 0.0
    for spatial in enumerate_unrollings(
        layer, array_size, SpatialSearchConfig(min_spatial_utilization=0.0)
    ):
        best = max(best, spatial.spatial_utilization(layer, array_size))
        if math.isclose(best, 1.0):
            break
    return best
