"""Pareto-front extraction for multi-objective design spaces."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def pareto_front(
    points: Sequence[T],
    key: Callable[[T], Tuple[float, ...]],
) -> List[T]:
    """Minimizing Pareto front of ``points`` under the ``key`` objectives.

    A point is kept when no other point is <= in every objective and < in
    at least one. Complexity O(n log n) for two objectives (sort + sweep),
    O(n^2) fallback for more.
    """
    if not points:
        return []
    values = [(key(p), p) for p in points]
    width = len(values[0][0])
    if any(len(v) != width for v, __ in values):
        raise ValueError("all points must have the same number of objectives")

    if width == 2:
        ordered = sorted(values, key=lambda vp: (vp[0][0], vp[0][1]))
        front: List[T] = []
        best_second = float("inf")
        for (__, second), point in ordered:
            if second < best_second:
                front.append(point)
                best_second = second
        return front

    front = []
    for v, p in values:
        dominated = False
        for w, __ in values:
            if w is v:
                continue
            if all(wi <= vi for wi, vi in zip(w, v)) and any(
                wi < vi for wi, vi in zip(w, v)
            ):
                dominated = True
                break
        if not dominated:
            front.append(p)
    return front
