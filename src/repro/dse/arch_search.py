"""Architecture design-space exploration (Case study 3).

Sweeps MAC-array sizes x memory-pool candidates x GB bandwidths, runs the
mapper ("for each design point, mapping optimization for lowest latency is
performed"), and records the latency-area coordinates of every design. The
same sweep can run under the BW-unaware baseline to regenerate Fig. 8(a).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.baseline import BwUnawareModel
from repro.dse.mapper import MapperConfig, TemporalMapper
from repro.dse.pareto import pareto_front
from repro.engine import EvaluationEngine
from repro.hardware.pool import MemoryCandidate, MemoryPool, searched_memory_names
from repro.hardware.presets import Preset
from repro.mapping.mapping import MappingError
from repro.observability.campaign import current_campaign
from repro.observability.ledger import current_ledger, record_interruption
from repro.observability.metrics import current_metrics
from repro.observability.progress import current_emitter
from repro.observability.tracer import current_tracer
from repro.workload.layer import LayerSpec


@dataclasses.dataclass(frozen=True)
class ArchSearchConfig:
    """What to sweep and how hard to search mappings per design."""

    array_scales: Dict[str, Tuple[int, int, int]]
    pool: MemoryPool
    gb_bandwidths: Sequence[float] = (128.0,)
    bw_aware: bool = True
    with_energy: bool = False
    mapper_config: MapperConfig = dataclasses.field(
        default_factory=lambda: MapperConfig(
            max_enumerated=400, samples=200, keep_top=1
        )
    )


@dataclasses.dataclass(frozen=True)
class ArchPoint:
    """One evaluated hardware design."""

    array_label: str
    candidate: MemoryCandidate
    gb_bandwidth: float
    area_mm2: float
    latency: float
    utilization: float
    accelerator_name: str
    energy_pj: Optional[float] = None

    def coords(self) -> Tuple[float, float]:
        """(area, latency) for Pareto extraction."""
        return (self.area_mm2, self.latency)

    def coords3(self) -> Tuple[float, float, float]:
        """(area, latency, energy) for the 3-objective front."""
        if self.energy_pj is None:
            raise ValueError("energy not evaluated; set with_energy=True")
        return (self.area_mm2, self.latency, self.energy_pj)

    @property
    def edp(self) -> Optional[float]:
        """Energy-delay product (pJ x cycles), when energy was evaluated."""
        if self.energy_pj is None:
            return None
        return self.energy_pj * self.latency


class ArchSearch:
    """Run the Case-study-3 sweep for one layer.

    All design points evaluate through one :class:`EvaluationEngine`
    lineage (per-machine engines derived from a shared cache, stats and
    executor), so revisited (machine, mapping) pairs are free and
    ``search.engine.stats`` summarizes the whole sweep. Pass ``engine``
    to pool evaluations with an outer flow, or e.g.
    ``EvaluationEngine(..., executor="process")`` to fan mapper batches
    out to worker processes.
    """

    def __init__(
        self, config: ArchSearchConfig, engine: Optional[EvaluationEngine] = None
    ) -> None:
        self.config = config
        self.engine = engine

    def _engine_for(self, accelerator) -> EvaluationEngine:
        if self.engine is None:
            self.engine = EvaluationEngine(
                accelerator, self.config.mapper_config.model_options
            )
        elif self.engine.accelerator is not accelerator:
            self.engine = self.engine.derive(accelerator=accelerator)
        return self.engine

    def design_points(self) -> Iterator[Tuple[str, float, MemoryCandidate, Preset]]:
        """Every (array label, GB BW, candidate, preset) in the sweep."""
        for label, (k, b, c) in self.config.array_scales.items():
            for gb_bw in self.config.gb_bandwidths:
                for cand, preset in self.config.pool.build(k, b, c, gb_read_bw=gb_bw):
                    yield label, gb_bw, cand, preset

    def space_size(self) -> int:
        """Number of design points the sweep will visit."""
        return (
            len(self.config.array_scales)
            * len(self.config.gb_bandwidths)
            * len(self.config.pool)
        )

    def evaluate(self, layer: LayerSpec) -> List[ArchPoint]:
        """Evaluate the whole sweep on ``layer``; unmappable designs skipped.

        With an ambient progress emitter the sweep is one
        ``unit="points"`` run: each design point becomes a chunk event
        (with the point's wall time, measured here in the parent), every
        new lowest-latency design a :class:`BestSoFar`, and a Ctrl-C
        between points a :class:`RunInterrupted` plus a
        ``kind="interrupted"`` ledger row recording how many points were
        covered.
        """
        tracer = current_tracer()
        emitter = current_emitter()
        run = None
        if emitter.enabled:
            run = emitter.start_run(
                "arch_search.sweep",
                total_units=self.space_size(),
                unit="points",
                layer=layer.name or str(layer.layer_type),
            )
        campaign = current_campaign()
        funnel = campaign.phase("arch_search") if campaign.enabled else None
        with tracer.span(
            "arch_search.sweep", layer=layer.name or str(layer.layer_type)
        ) as span:
            points: List[ArchPoint] = []
            skipped = 0
            try:
                for index, (label, gb_bw, cand, preset) in enumerate(
                    self.design_points()
                ):
                    t0 = time.perf_counter()
                    if funnel is not None:
                        funnel.admit()
                    point = self.evaluate_one(layer, label, gb_bw, cand, preset)
                    if point is not None:
                        points.append(point)
                        if funnel is not None:
                            funnel.retain()
                            # Snapshot the front at power-of-two point
                            # counts: O(log n) snapshots over a sweep.
                            if len(points) & (len(points) - 1) == 0:
                                campaign.pareto_snapshot(
                                    "arch_search",
                                    [p.coords() for p in self.front(points)],
                                    label=f"@{len(points)}",
                                )
                    else:
                        skipped += 1
                        if funnel is not None:
                            funnel.discard("unmappable-design")
                    if run is not None:
                        run.advance(
                            1,
                            errors=0 if point is not None else 1,
                            wall_s=time.perf_counter() - t0,
                            index=index,
                            note=preset.accelerator.name,
                        )
                        if point is not None:
                            run.best(
                                point.latency,
                                total_cycles=point.latency,
                                utilization=point.utilization,
                                label=point.accelerator_name,
                            )
            except KeyboardInterrupt:
                done = len(points) + skipped
                ledger = current_ledger()
                if ledger.enabled:
                    ledger.append(record_interruption(
                        flow="arch_search.sweep",
                        done_units=done,
                        total_units=self.space_size(),
                        unit="points",
                        reason="KeyboardInterrupt",
                    ))
                    # Checkpoint the campaign alongside the interrupted
                    # row: funnel counts so far + incumbent-so-far, with
                    # the partial flag set (conservation not guaranteed).
                    campaign.flush_to(ledger, partial=True)
                if run is not None:
                    run.interrupt("KeyboardInterrupt")
                raise
            if funnel is not None and points:
                campaign.pareto_snapshot(
                    "arch_search",
                    [p.coords() for p in self.front(points)],
                    label="final",
                )
            if run is not None:
                run.finish()
            if tracer.enabled:
                span.set("design_points", len(points) + skipped)
                span.set("mappable", len(points))
                span.set("unmappable", skipped)
        return points

    def evaluate_one(
        self,
        layer: LayerSpec,
        label: str,
        gb_bw: float,
        cand: MemoryCandidate,
        preset: Preset,
    ) -> Optional[ArchPoint]:
        """Best-mapping latency and area of one design point."""
        accelerator = preset.accelerator
        tracer = current_tracer()
        current_metrics().counter(
            "repro_arch_points_total", "Architecture design points evaluated."
        ).inc()
        with tracer.span(
            "arch_search.point",
            array=label,
            gb_bandwidth=gb_bw,
            accelerator=accelerator.name,
        ) as span:
            point = self._evaluate_point(layer, label, gb_bw, cand, preset)
            if tracer.enabled:
                span.set("mappable", point is not None)
                if point is not None:
                    span.set("latency", point.latency)
                    span.set("area_mm2", point.area_mm2)
        return point

    def _evaluate_point(
        self,
        layer: LayerSpec,
        label: str,
        gb_bw: float,
        cand: MemoryCandidate,
        preset: Preset,
    ) -> Optional[ArchPoint]:
        accelerator = preset.accelerator
        mapper = TemporalMapper(
            accelerator,
            preset.spatial_unrolling,
            self.config.mapper_config,
            engine=self._engine_for(accelerator),
        )
        energy_pj: Optional[float] = None
        try:
            if self.config.bw_aware:
                best = mapper.best_mapping(layer)
                latency = best.report.total_cycles
                utilization = best.report.utilization
                if self.config.with_energy:
                    energy_pj = mapper.engine.evaluate_energy(
                        best.mapping
                    ).total_pj
            else:
                # The Fig. 8(a) baseline: computation-phase latency only,
                # no temporal stalls and no memory-size-dependent loading —
                # which is why same-array designs collapse onto one latency.
                baseline = BwUnawareModel(accelerator, include_loading=False)
                campaign = current_campaign()
                latency = float("inf")
                utilization = 0.0
                scored = 0
                for mapping in mapper.mappings(layer):
                    report = baseline.evaluate(mapping)
                    scored += 1
                    if campaign.enabled:
                        campaign.observe(report.total_cycles)
                    if report.total_cycles < latency:
                        latency = report.total_cycles
                        utilization = report.utilization
                if campaign.enabled and scored:
                    # mappings() admitted these candidates into the
                    # mapper funnel; the baseline scored them outside the
                    # engine, so classify them here: one winner, the rest
                    # beaten by it.
                    mapper_funnel = campaign.phase("mapper")
                    mapper_funnel.retain()
                    mapper_funnel.discard("beaten-incumbent", scored - 1)
                if latency == float("inf"):
                    return None
        except MappingError:
            return None
        area = accelerator.area_mm2(include=searched_memory_names())
        return ArchPoint(
            array_label=label,
            candidate=cand,
            gb_bandwidth=gb_bw,
            area_mm2=area,
            latency=latency,
            utilization=utilization,
            accelerator_name=accelerator.name,
            energy_pj=energy_pj,
        )

    @staticmethod
    def front(points: Sequence[ArchPoint]) -> List[ArchPoint]:
        """Latency-area Pareto front (minimize both)."""
        return pareto_front(list(points), key=lambda p: p.coords())

    @staticmethod
    def front3(points: Sequence[ArchPoint]) -> List[ArchPoint]:
        """Latency-area-energy Pareto front (requires with_energy=True)."""
        return pareto_front(list(points), key=lambda p: p.coords3())

    @staticmethod
    def best_per_array(points: Sequence[ArchPoint]) -> Dict[str, ArchPoint]:
        """Lowest-latency design per MAC-array size (Fig. 8's highlights)."""
        best: Dict[str, ArchPoint] = {}
        for p in points:
            if p.array_label not in best or p.latency < best[p.array_label].latency:
                best[p.array_label] = p
        return best
