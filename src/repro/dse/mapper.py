"""LOMA-style temporal-mapping search (the ZigZag-mapper stand-in).

For a layer and a fixed spatial unrolling the mapper:

1. splits every remaining temporal loop bound into prime factors, giving a
   multiset of (dimension, factor) loops;
2. enumerates distinct loop orders — exhaustively when the multinomial
   count is small, otherwise a deterministic enumeration prefix plus
   uniform random samples;
3. allocates each order onto every operand's memory chain bottom-up and
   greedily (push each loop to the lowest level whose mapper-visible
   capacity still holds the grown tile — maximizing low-level reuse, which
   is how ZigZag's allocator behaves);
4. evaluates the requested objective (latency via the uniform model,
   energy, or EDP) and returns the ranked results.

Case study 1's Mapping A and B are two points of this space; Case study 3
runs :meth:`TemporalMapper.best_mapping` for every architecture candidate
("for each design point, mapping optimization for lowest latency is
performed").
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from typing import Dict, Iterator, List, Mapping as TMapping, Optional, Tuple, Union

from repro.core.report import LatencyReport
from repro.core.step1 import ModelOptions
from repro.dse.factorize import (
    count_permutations,
    multiset_permutations,
    prime_factors,
    sample_permutations,
)
from repro.energy.energy_model import EnergyReport
from repro.engine import EvaluationEngine
from repro.hardware.accelerator import Accelerator
from repro.mapping.footprint import spatial_replication, tile_elements
from repro.mapping.loop import Loop
from repro.mapping.mapping import Mapping, MappingError
from repro.mapping.spatial import SpatialMapping
from repro.mapping.temporal import TemporalMapping
from repro.observability.campaign import current_campaign
from repro.observability.metrics import current_metrics
from repro.observability.progress import current_emitter
from repro.observability.tracer import current_tracer
from repro.workload.dims import ALL_DIMS, LoopDim
from repro.workload.layer import LayerSpec
from repro.workload.operand import Operand


@dataclasses.dataclass(frozen=True)
class MapperConfig:
    """Search-budget and objective knobs of the mapper."""

    objective: str = "latency"      # "latency" | "energy" | "edp"
    max_enumerated: int = 20_000    # exhaustive enumeration cap
    samples: int = 2_000            # sampled orders when above the cap
    seed: int = 0
    keep_top: int = 50              # results retained by search()
    batch_size: int = 256           # mappings per engine batch
    sample_chunk: int = 64          # samples per RNG stream (determinism unit)
    lpf_limit: Optional[int] = None  # cap loop prime factors per dim (LOMA)
    model_options: ModelOptions = dataclasses.field(default_factory=ModelOptions)

    def __post_init__(self) -> None:
        if self.objective not in ("latency", "energy", "edp"):
            raise ValueError(f"unknown objective {self.objective!r}")
        if self.batch_size < 1 or self.sample_chunk < 1:
            raise ValueError("batch_size and sample_chunk must be >= 1")
        if self.lpf_limit is not None and self.lpf_limit < 1:
            raise ValueError(f"lpf_limit must be >= 1, got {self.lpf_limit}")


@dataclasses.dataclass(frozen=True)
class MappingSearchResult:
    """One evaluated mapping with its reports and objective value.

    ``cache_hit`` carries the engine's score provenance (persistent-cache
    probe vs. fresh kernel) through to campaign funnel accounting.
    """

    mapping: Mapping
    report: LatencyReport
    energy: Optional[EnergyReport]
    objective: float
    cache_hit: bool = False

    def describe(self) -> str:
        """One-line summary for ranking printouts."""
        energy = f", {self.energy.total_pj / 1e6:.2f} uJ" if self.energy else ""
        return (
            f"{self.report.total_cycles:.0f} cc (U={self.report.utilization:.1%}{energy}) "
            f"| {self.mapping.temporal.describe(Operand.O)}"
        )


class TemporalMapper:
    """Temporal-mapping generator and optimizer for one accelerator."""

    def __init__(
        self,
        accelerator: Accelerator,
        spatial: Union[SpatialMapping, TMapping[LoopDim, int]],
        config: Optional[MapperConfig] = None,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        self.accelerator = accelerator
        self.spatial = (
            spatial if isinstance(spatial, SpatialMapping) else SpatialMapping(spatial)
        )
        self.config = config or MapperConfig()
        if engine is None:
            engine = EvaluationEngine(accelerator, self.config.model_options)
        elif (
            engine.accelerator is not accelerator
            or engine.options != self.config.model_options
        ):
            # Share the caller's cache/stats/executor but evaluate on this
            # mapper's machine under this mapper's model options.
            engine = engine.derive(
                accelerator=accelerator, options=self.config.model_options
            )
        self.engine = engine

    # ------------------------------------------------------------------ #
    # Loop-order space
    # ------------------------------------------------------------------ #

    def loop_multiset(self, layer: LayerSpec) -> List[Tuple[LoopDim, int]]:
        """The (dim, factor) loop atoms left for temporal mapping.

        With ``config.lpf_limit`` set, each dimension contributes at most
        that many (possibly composite) factors — the LOMA pruning knob.
        """
        atoms: List[Tuple[LoopDim, int]] = []
        for dim in ALL_DIMS:
            bound = self.spatial.temporal_bound(dim, layer)
            atoms.extend(
                (dim, f) for f in prime_factors(bound, self.config.lpf_limit)
            )
        return atoms

    def space_size(self, layer: LayerSpec) -> int:
        """Number of distinct temporal loop orders for ``layer``."""
        return count_permutations(self.loop_multiset(layer))

    def orders(self, layer: LayerSpec) -> Iterator[Tuple[Tuple[LoopDim, int], ...]]:
        """Loop orders: exhaustive when small, seeds+prefix+samples otherwise.

        Above the enumeration cap the stream starts with *seed orders* —
        block orders placing each dimension's factors contiguously in every
        dimension permutation (the classic stationarity corners: all C
        innermost is output-stationary, all B innermost weight-stationary,
        ...) — so the well-known dataflows are always candidates, followed
        by a deterministic enumeration prefix and uniform random samples.
        """
        atoms = self.loop_multiset(layer)
        size = count_permutations(atoms)
        if size <= self.config.max_enumerated:
            yield from multiset_permutations(atoms)
            return
        budget = self.config.samples
        seeds = list(self._seed_orders(layer, atoms))
        yield from seeds
        remaining = max(budget - len(seeds), 16)
        prefix = remaining // 2
        yield from itertools.islice(multiset_permutations(atoms), prefix)
        # Random samples come from fixed-size chunks, each with its own RNG
        # stream derived from (seed, chunk index) — not from one shared
        # stream — so the sampled set is a pure function of the config and
        # identical under the serial and parallel evaluation backends
        # (duplicates across chunks are deduplicated by mappings()).
        to_sample = remaining - prefix
        chunk = self.config.sample_chunk
        for index, start in enumerate(range(0, to_sample, chunk)):
            rng = random.Random(self.config.seed + index)
            yield from sample_permutations(
                atoms, min(chunk, to_sample - start), rng
            )

    def _seed_orders(
        self, layer: LayerSpec, atoms: List[Tuple[LoopDim, int]]
    ) -> Iterator[Tuple[Tuple[LoopDim, int], ...]]:
        """Block orders: contiguous per-dim factor runs, all dim permutations.

        For every permutation of the active dimensions and both in-block
        factor directions (ascending / descending) one order is produced;
        capped at 256 seeds for high-rank layers.
        """
        by_dim: Dict[LoopDim, List[int]] = {}
        for dim, factor in atoms:
            by_dim.setdefault(dim, []).append(factor)
        dims = sorted(by_dim, key=str)
        emitted = 0
        for perm in itertools.permutations(dims):
            for ascending in (True, False):
                order: List[Tuple[LoopDim, int]] = []
                for dim in perm:
                    factors = sorted(by_dim[dim], reverse=not ascending)
                    order.extend((dim, f) for f in factors)
                yield tuple(order)
                emitted += 1
                if emitted >= 256:
                    return

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #

    def allocate(
        self, layer: LayerSpec, order: Tuple[Tuple[LoopDim, int], ...]
    ) -> Optional[TemporalMapping]:
        """Greedy bottom-up level allocation of one loop order.

        Returns ``None`` when the order cannot fit (the full tile of some
        operand exceeds its outermost level).
        """
        loops = tuple(Loop(dim, size) for dim, size in order)
        cuts: Dict[Operand, Tuple[int, ...]] = {}
        for operand in Operand:
            cut = self._allocate_operand(layer, operand, loops)
            if cut is None:
                return None
            cuts[operand] = cut
        return TemporalMapping(loops, cuts)

    def _allocate_operand(
        self, layer: LayerSpec, operand: Operand, loops: Tuple[Loop, ...]
    ) -> Optional[Tuple[int, ...]]:
        chain = self.accelerator.hierarchy.levels(operand)
        depth = len(chain)
        cut: List[int] = []
        level = 0
        for index in range(1, len(loops) + 1):
            prefix = loops[:index]
            # The outermost level is the operand's data home (backed by
            # off-chip memory) and accepts any footprint.
            while level < depth - 1 and not self._fits(layer, operand, prefix, chain[level]):
                cut.append(index - 1)
                level += 1
        while len(cut) < depth - 1:
            cut.append(len(loops))
        return tuple(cut)

    def _fits(
        self, layer: LayerSpec, operand: Operand, prefix: Tuple[Loop, ...], level
    ) -> bool:
        elements = tile_elements(layer, operand, prefix, self.spatial)
        # Conservative: in-flight outputs are counted at accumulator width.
        partial = operand is Operand.O
        bits = elements * layer.precision.of(operand, partial=partial)
        if level.instance.instances > 1:
            bits *= spatial_replication(layer, operand, self.spatial)
        return bits <= level.capacity_for(operand)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def mappings(self, layer: LayerSpec) -> Iterator[Mapping]:
        """All allocatable mappings of ``layer`` (within the search budget).

        Beyond exact duplicates, model-equivalent allocations are emitted
        once: two mappings whose loop orders differ only by permuting
        same-dimension loops with no memory-level boundary between them
        produce identical reports (see :meth:`_canonical_key`), so only
        the canonical representative reaches the engine. Skips are
        counted in ``engine.stats.dedup_skipped``.
        """
        if not self.spatial.fits(self.accelerator.mac_array.size):
            return  # spatial unrolling alone exceeds the array: no mappings
        campaign = current_campaign()
        funnel = campaign.phase("mapper") if campaign.enabled else None
        seen = set()
        canonical_seen = set()
        for order in self.orders(layer):
            if funnel is not None:
                funnel.admit()
            temporal = self.allocate(layer, order)
            if temporal is None:
                if funnel is not None:
                    funnel.discard("allocation-overflow")
                continue
            key = (temporal.loops, tuple(sorted(
                (op.value, temporal.cuts[op]) for op in Operand
            )))
            if key in seen:
                if funnel is not None:
                    funnel.discard("duplicate")
                continue
            seen.add(key)
            canonical = self._canonical_key(temporal)
            if canonical in canonical_seen:
                self.engine.stats.dedup_skipped += 1
                if funnel is not None:
                    funnel.discard("canonical-equivalent")
                continue
            canonical_seen.add(canonical)
            try:
                yield Mapping(layer, self.spatial, temporal)
            except MappingError:
                if funnel is not None:
                    funnel.discard("mapping-error")
                continue

    @staticmethod
    def _canonical_key(temporal: TemporalMapping):
        """A key equal for model-equivalent allocations.

        The 3-step model only ever reads loop-size *products* between
        memory-level boundaries (cut positions) and first/last positions
        of each dimension run — never the individual factor order inside
        a maximal run of equal-dimension loops that no operand's cut
        crosses. Sorting the sizes within each such run therefore maps
        every member of an equivalence class to the same key; e.g.
        ``K2 K3 | ...`` and ``K3 K2 | ...`` (same cuts) are one design
        point, not two.
        """
        loops = temporal.loops
        boundaries = {cut for cuts in temporal.cuts.values() for cut in cuts}
        canon: List[Tuple[LoopDim, int]] = []
        i, n = 0, len(loops)
        while i < n:
            j = i + 1
            while j < n and loops[j].dim is loops[i].dim and j not in boundaries:
                j += 1
            canon.extend(
                (loops[i].dim, size)
                for size in sorted(loop.size for loop in loops[i:j])
            )
            i = j
        return (tuple(canon), tuple(sorted(
            (op.value, temporal.cuts[op]) for op in Operand
        )))

    @property
    def _wants_energy(self) -> bool:
        return self.config.objective in ("energy", "edp")

    def _objective(
        self, report: LatencyReport, energy: Optional[EnergyReport]
    ) -> float:
        if self.config.objective == "latency":
            return report.total_cycles
        assert energy is not None
        if self.config.objective == "energy":
            return energy.total_pj
        return energy.total_pj * report.total_cycles

    def evaluate(self, mapping: Mapping) -> MappingSearchResult:
        """Score one mapping under the configured objective."""
        report = self.engine.evaluate(mapping, validate=False)
        energy: Optional[EnergyReport] = None
        if self._wants_energy:
            energy = self.engine.evaluate_energy(mapping)
        return MappingSearchResult(
            mapping, report, energy, self._objective(report, energy)
        )

    def _evaluated(self, layer: LayerSpec) -> Iterator[MappingSearchResult]:
        """Stream scored mappings, batch-evaluating through the engine.

        Infeasible mappings (``None`` outcomes from the engine) are
        skipped, matching the old per-mapping try/except behavior.
        """
        campaign = current_campaign()
        funnel = campaign.phase("mapper") if campaign.enabled else None
        batch: List[Mapping] = []

        def flush() -> Iterator[MappingSearchResult]:
            outcomes = self.engine.evaluate_many(
                batch, validate=False, with_energy=self._wants_energy
            )
            batch.clear()
            for outcome in outcomes:
                if outcome is None:
                    if funnel is not None:
                        funnel.discard("engine-infeasible")
                    continue
                yield MappingSearchResult(
                    outcome.mapping,
                    outcome.report,
                    outcome.energy,
                    self._objective(outcome.report, outcome.energy),
                    cache_hit=outcome.cache_hit,
                )

        for mapping in self.mappings(layer):
            batch.append(mapping)
            if len(batch) >= self.config.batch_size:
                yield from flush()
        if batch:
            yield from flush()

    def _search_key(self, kind: str, layer: LayerSpec):
        """Engine-cache key for a whole search outcome on ``layer``.

        The search is deterministic in (machine, model options, spatial
        unrolling, layer, search config), so its result can be memoized in
        the engine cache alongside per-mapping reports — a repeated layer
        shape skips candidate *generation* as well as evaluation.
        """
        from repro.fingerprint import memoized_fingerprint, stable_fingerprint

        return (
            kind,
            self.engine.accelerator_fingerprint,
            self.engine.options_fingerprint,
            stable_fingerprint(
                memoized_fingerprint(self.spatial),
                memoized_fingerprint(layer),
                self.config,
            ),
        )

    def _note_campaign_context(self, campaign) -> None:
        """Record the replayability context on the mapper's funnel phase.

        Together with the config fingerprint these scalars make a
        campaign exactly replayable from its ledger row alone: chunk
        ``i`` of the sampled stream draws from
        ``random.Random(seed + i)`` (see :meth:`orders`), so the whole
        candidate set is a pure function of the recorded values.
        """
        from repro.fingerprint import stable_fingerprint

        cfg = self.config
        campaign.note_context(
            "mapper",
            config_fp=stable_fingerprint(cfg),
            seed=cfg.seed,
            samples=cfg.samples,
            max_enumerated=cfg.max_enumerated,
            sample_chunk=cfg.sample_chunk,
            keep_top=cfg.keep_top,
            batch_size=cfg.batch_size,
            lpf_limit=0 if cfg.lpf_limit is None else cfg.lpf_limit,
            objective=cfg.objective,
        )

    def _progress_run(self, flow: str, layer: LayerSpec):
        """Open a ``unit="evals"`` progress run sized to this search.

        The engine's ``evaluate_many`` attaches its per-chunk events to
        this run instead of opening one run per batch, so a whole search
        accrues into a single progress bar. The total is the loop-order
        count when the space will be enumerated exhaustively; unknown
        (no ETA) when the mapper samples, since dedup and allocation
        failures make the evaluated count unpredictable.
        """
        emitter = current_emitter()
        if not emitter.enabled:
            return None
        size = self.space_size(layer)
        total = size if size <= self.config.max_enumerated else None
        return emitter.start_run(
            flow,
            total_units=total,
            unit="evals",
            accelerator=self.accelerator.name,
            layer=layer.name or str(layer.layer_type),
        )

    def search(self, layer: LayerSpec) -> List[MappingSearchResult]:
        """Evaluate the mapping space; return the top results, best first."""
        tracer = current_tracer()
        metrics = current_metrics()
        with tracer.span(
            "mapper.search",
            layer=layer.name or str(layer.layer_type),
            objective=self.config.objective,
        ) as span:
            metrics.counter(
                "repro_mapper_searches_total", "Mapper search() calls."
            ).inc()
            campaign = current_campaign()
            if campaign.enabled:
                self._note_campaign_context(campaign)
            key = self._search_key("search", layer)
            if self.engine.use_cache:
                cached = self.engine.cache.get(key)
                if cached is not None:
                    self.engine.stats.cache_hits += 1
                    span.set("cache_hit", True)
                    campaign.note_memoized_search()
                    if campaign.enabled and cached:
                        campaign.observe(cached[0].objective)
                    return list(cached)
            run = self._progress_run("mapper.search", layer)
            try:
                results = list(self._evaluated(layer))
            except KeyboardInterrupt:
                if run is not None:
                    run.interrupt("KeyboardInterrupt")
                raise
            metrics.counter(
                "repro_mapper_candidates_total",
                "Feasible mapping candidates scored by the mapper.",
            ).inc(len(results))
            if campaign.enabled:
                for result in results:
                    campaign.observe(result.objective)
            scored = len(results)
            results.sort(key=lambda r: r.objective)
            results = results[: self.config.keep_top]
            if campaign.enabled:
                funnel = campaign.phase("mapper")
                for result in results:
                    funnel.retain(cache_hit=result.cache_hit)
                funnel.discard("keep-top", scored - len(results))
            if run is not None:
                if results:
                    best = results[0]
                    run.best(
                        best.objective,
                        total_cycles=best.report.total_cycles,
                        utilization=best.report.utilization,
                        label=layer.name or str(layer.layer_type),
                    )
                run.finish()
            if tracer.enabled:
                span.set("cache_hit", False)
                span.set("candidates", len(results))
                if results:
                    span.set("best_objective", results[0].objective)
            if self.engine.use_cache:
                self.engine.cache.put(key, tuple(results))
            return results

    def best_mapping_verified(
        self, layer: LayerSpec, shortlist: int = 5
    ) -> Tuple[MappingSearchResult, float]:
        """Model-guided search with a simulator-verified shortlist.

        The analytical model ranks the space; the top ``shortlist``
        candidates are re-ranked by the cycle-level simulator, which
        removes the optimizer-bias corner where the model's optimum sits
        in a regime it slightly under-predicts (see EXPERIMENTS.md E10).
        Returns the winning result and its *simulated* cycle count.
        """
        from repro.simulator.engine import CycleSimulator

        candidates = self.search(layer)[:shortlist]
        if not candidates:
            raise MappingError(
                f"no valid temporal mapping of {layer.describe()} on "
                f"{self.accelerator.name} with spatial {self.spatial}"
            )
        best: Optional[Tuple[MappingSearchResult, float]] = None
        for candidate in candidates:
            simulated = CycleSimulator(
                self.accelerator, candidate.mapping
            ).run().total_cycles
            if best is None or simulated < best[1]:
                best = (candidate, simulated)
        assert best is not None
        return best

    def best_mapping(self, layer: LayerSpec) -> MappingSearchResult:
        """The best mapping found (raises if none fits)."""
        tracer = current_tracer()
        metrics = current_metrics()
        with tracer.span(
            "mapper.best_mapping",
            layer=layer.name or str(layer.layer_type),
            objective=self.config.objective,
        ) as span:
            metrics.counter(
                "repro_mapper_searches_total", "Mapper search() calls."
            ).inc()
            campaign = current_campaign()
            if campaign.enabled:
                self._note_campaign_context(campaign)
            key = self._search_key("best_mapping", layer)
            if self.engine.use_cache:
                cached = self.engine.cache.get(key)
                if cached is not None:
                    self.engine.stats.cache_hits += 1
                    span.set("cache_hit", True)
                    campaign.note_memoized_search()
                    if campaign.enabled:
                        campaign.observe(cached.objective)
                    return cached
            run = self._progress_run("mapper.best_mapping", layer)
            best: Optional[MappingSearchResult] = None
            candidates = 0
            try:
                for result in self._evaluated(layer):
                    candidates += 1
                    if campaign.enabled:
                        campaign.observe(result.objective)
                    if best is None or result.objective < best.objective:
                        best = result
                        if run is not None:
                            run.best(
                                best.objective,
                                total_cycles=best.report.total_cycles,
                                utilization=best.report.utilization,
                                label=layer.name or str(layer.layer_type),
                            )
            except KeyboardInterrupt:
                if run is not None:
                    run.interrupt("KeyboardInterrupt")
                raise
            if run is not None:
                run.finish()
            metrics.counter(
                "repro_mapper_candidates_total",
                "Feasible mapping candidates scored by the mapper.",
            ).inc(candidates)
            if best is None:
                raise MappingError(
                    f"no valid temporal mapping of {layer.describe()} on "
                    f"{self.accelerator.name} with spatial {self.spatial}"
                )
            if campaign.enabled:
                funnel = campaign.phase("mapper")
                funnel.retain(cache_hit=best.cache_hit)
                funnel.discard("beaten-incumbent", candidates - 1)
            if tracer.enabled:
                span.set("cache_hit", False)
                span.set("candidates", candidates)
                span.set("best_objective", best.objective)
            if self.engine.use_cache:
                self.engine.cache.put(key, best)
            return best
