"""Integer factorization utilities for loop-order enumeration.

The mapper decomposes every temporal loop bound into prime factors (the
LOMA approach the ZigZag mapper uses) and enumerates distinct orderings of
the resulting loop multiset. Loops of the same dimension with the same size
are interchangeable, so the number of distinct orders is the multinomial
``n! / prod(multiplicity!)`` — computed exactly by
:func:`count_permutations` and enumerated lazily (or sampled) by
:func:`multiset_permutations`.
"""

from __future__ import annotations

import functools
import math
import random
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple


@functools.lru_cache(maxsize=4096)
def _prime_factors_cached(n: int) -> Tuple[int, ...]:
    factors: List[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return tuple(factors)


def prime_factors(n: int, lpf_limit: Optional[int] = None) -> List[int]:
    """Prime factorization of ``n >= 1`` in ascending order (1 -> []).

    ``lpf_limit`` caps the number of loop prime factors the way LOMA's
    ``lpf_limit`` does: while the factorization is longer, the two
    smallest factors are merged into their (composite) product. Fewer,
    coarser factors shrink the loop-order space super-exponentially at
    the cost of skipping the finest tilings — the mapper's coarse knob
    for very large layers. The result stays sorted ascending and always
    multiplies back to ``n``. Layer bounds recur heavily across a sweep,
    so the trial division itself is memoized.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    factors = list(_prime_factors_cached(n))
    if lpf_limit is not None:
        if lpf_limit < 1:
            raise ValueError(f"lpf_limit must be >= 1, got {lpf_limit}")
        while len(factors) > lpf_limit:
            merged = factors[0] * factors[1]
            factors = sorted(factors[2:] + [merged])
    return factors


def ordered_factorizations(n: int, max_parts: int) -> Iterator[Tuple[int, ...]]:
    """All ordered tuples of integers > 1 (length <= max_parts) with product n.

    ``n == 1`` yields the empty tuple. Used when a caller wants composite
    tiling factors rather than the full prime split.
    """
    if n < 1 or max_parts < 0:
        raise ValueError("n must be >= 1 and max_parts >= 0")

    def rec(remaining: int, parts: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
        if remaining == 1:
            yield parts
            return
        if len(parts) == max_parts:
            return
        if len(parts) == max_parts - 1:
            yield parts + (remaining,)
            return
        for d in range(2, remaining + 1):
            if remaining % d == 0:
                yield from rec(remaining // d, parts + (d,))

    yield from rec(n, ())


def count_permutations(items: Sequence[Hashable]) -> int:
    """Number of distinct orderings of the multiset ``items``."""
    counts: Dict[Hashable, int] = {}
    for item in items:
        counts[item] = counts.get(item, 0) + 1
    total = math.factorial(len(items))
    for c in counts.values():
        total //= math.factorial(c)
    return total


def multiset_permutations(items: Sequence[Hashable]) -> Iterator[Tuple[Hashable, ...]]:
    """Lazily yield the distinct orderings of the multiset ``items``.

    Standard recursive scheme: at each position choose each *distinct*
    remaining item once. Yields ``count_permutations(items)`` tuples.
    """
    counts: Dict[Hashable, int] = {}
    for item in items:
        counts[item] = counts.get(item, 0) + 1
    keys = sorted(counts, key=repr)
    n = len(items)
    current: List[Hashable] = []

    def rec() -> Iterator[Tuple[Hashable, ...]]:
        if len(current) == n:
            yield tuple(current)
            return
        for key in keys:
            if counts[key] > 0:
                counts[key] -= 1
                current.append(key)
                yield from rec()
                current.pop()
                counts[key] += 1

    yield from rec()


def sample_permutations(
    items: Sequence[Hashable],
    samples: int,
    rng: Optional[random.Random] = None,
) -> Iterator[Tuple[Hashable, ...]]:
    """Yield up to ``samples`` random orderings (duplicates deduplicated).

    Used when the order space is too large to enumerate; the mapper mixes
    these with a deterministic prefix of the lexicographic enumeration so
    that small spaces stay exhaustive.
    """
    rng = rng or random.Random(0)
    seen = set()
    pool = list(items)
    attempts = 0
    while len(seen) < samples and attempts < samples * 20:
        attempts += 1
        rng.shuffle(pool)
        key = tuple(pool)
        if key not in seen:
            seen.add(key)
            yield key
