"""Local search over loop orders: polish what sampling finds.

The sampled mapper covers the space broadly but coarsely; this module adds
a hill climber that takes the best sampled orders and repeatedly applies
adjacent transpositions and random pair swaps, keeping improvements. Loop
orders are a natural neighborhood space for this: most of the latency
structure (residencies, keep-out windows, psum round trips) changes
smoothly under adjacent swaps, so short climbs recover most of what
exhaustive enumeration would find at a tiny fraction of the cost.

Evaluations route through the wrapped mapper's
:class:`~repro.engine.EvaluationEngine`, so orders revisited across
restarts (different climbs converging on the same neighborhood) hit the
engine cache instead of re-running the model. Each climb round evaluates
its whole neighborhood as one engine batch — the vectorized batch core
plus the MUW partial-result memo make re-scoring a perturbed order cheap
(neighbors share almost all of their window unions with the incumbent) —
and then accepts the first improving neighbor in generation order, i.e.
the same move a neighbor-at-a-time first-improvement climb would take.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Iterator, List, Optional, Tuple

from repro.dse.mapper import MapperConfig, MappingSearchResult, TemporalMapper
from repro.mapping.mapping import Mapping, MappingError
from repro.observability.campaign import current_campaign
from repro.observability.progress import current_emitter
from repro.workload.dims import LoopDim
from repro.workload.layer import LayerSpec

Order = Tuple[Tuple[LoopDim, int], ...]


@dataclasses.dataclass(frozen=True)
class LocalSearchConfig:
    """Climb budget."""

    restarts: int = 4          # how many sampled seeds to polish
    max_steps: int = 200       # accepted+rejected moves per climb
    random_swaps: int = 2      # random non-adjacent swaps tried per round
    seed: int = 0


@dataclasses.dataclass(frozen=True)
class LocalSearchOutcome:
    """Result of one polishing run."""

    best: MappingSearchResult
    start_objective: float
    evaluations: int

    @property
    def improvement(self) -> float:
        """Relative objective improvement over the starting point."""
        if self.start_objective <= 0:
            return 0.0
        return 1.0 - self.best.objective / self.start_objective


class LocalSearchMapper:
    """Sampled search + hill climbing on the loop-order neighborhood."""

    def __init__(
        self,
        mapper: TemporalMapper,
        config: Optional[LocalSearchConfig] = None,
    ) -> None:
        self.mapper = mapper
        self.config = config or LocalSearchConfig()

    # ------------------------------------------------------------------ #

    def _evaluate_order(
        self, layer: LayerSpec, order: Order
    ) -> Optional[MappingSearchResult]:
        campaign = current_campaign()
        funnel = campaign.phase("local_search") if campaign.enabled else None
        if funnel is not None:
            funnel.admit()
        temporal = self.mapper.allocate(layer, order)
        if temporal is None:
            if funnel is not None:
                funnel.discard("allocation-overflow")
            return None
        try:
            mapping = Mapping(layer, self.mapper.spatial, temporal)
            return self.mapper.evaluate(mapping)
        except MappingError:
            if funnel is not None:
                funnel.discard("mapping-error")
            return None

    def _evaluate_orders(
        self, layer: LayerSpec, orders: List[Order]
    ) -> List[Optional[MappingSearchResult]]:
        """Score many orders in one engine batch; ``None`` per bad order."""
        campaign = current_campaign()
        funnel = campaign.phase("local_search") if campaign.enabled else None
        mappings: List[Optional[Mapping]] = []
        for order in orders:
            if funnel is not None:
                funnel.admit()
            temporal = self.mapper.allocate(layer, order)
            if temporal is None:
                if funnel is not None:
                    funnel.discard("allocation-overflow")
                mappings.append(None)
                continue
            try:
                mappings.append(Mapping(layer, self.mapper.spatial, temporal))
            except MappingError:
                if funnel is not None:
                    funnel.discard("mapping-error")
                mappings.append(None)
        feasible = [m for m in mappings if m is not None]
        outcomes = iter(
            self.mapper.engine.evaluate_many(
                feasible, validate=False, with_energy=self.mapper._wants_energy
            )
            if feasible
            else ()
        )
        results: List[Optional[MappingSearchResult]] = []
        for mapping in mappings:
            if mapping is None:
                results.append(None)
                continue
            outcome = next(outcomes)
            if outcome is None:
                if funnel is not None:
                    funnel.discard("engine-infeasible")
                results.append(None)
                continue
            results.append(MappingSearchResult(
                outcome.mapping,
                outcome.report,
                outcome.energy,
                self.mapper._objective(outcome.report, outcome.energy),
                cache_hit=outcome.cache_hit,
            ))
        return results

    @staticmethod
    def _neighbors(order: Order, rng: random.Random, random_swaps: int) -> Iterator[Order]:
        n = len(order)
        for i in range(n - 1):
            if order[i] != order[i + 1]:
                swapped = list(order)
                swapped[i], swapped[i + 1] = swapped[i + 1], swapped[i]
                yield tuple(swapped)
        for __ in range(random_swaps):
            i, j = rng.randrange(n), rng.randrange(n)
            if i != j and order[i] != order[j]:
                swapped = list(order)
                swapped[i], swapped[j] = swapped[j], swapped[i]
                yield tuple(swapped)

    def climb(
        self, layer: LayerSpec, start: Order
    ) -> Optional[LocalSearchOutcome]:
        """Hill-climb from one order; None if the start cannot allocate.

        Per round the whole neighborhood is evaluated as one engine batch
        and the first improving neighbor *in generation order* is
        accepted — the move a neighbor-at-a-time climb would make. The
        step budget counts generated neighbors either way; the extra
        scored neighbors land in the engine cache, so later rounds and
        restarts revisiting them are free.
        """
        campaign = current_campaign()
        rng = random.Random(self.config.seed)
        current = self._evaluate_order(layer, start)
        if current is None:
            return None
        if campaign.enabled:
            campaign.observe(current.objective)
        start_objective = current.objective
        current_order = start
        evaluations = 1
        scored = 1
        steps = 0
        improved = True
        while improved and steps < self.config.max_steps:
            improved = False
            round_orders: List[Order] = []
            for neighbor in self._neighbors(
                current_order, rng, self.config.random_swaps
            ):
                steps += 1
                if steps >= self.config.max_steps:
                    break
                round_orders.append(neighbor)
            candidates = self._evaluate_orders(layer, round_orders)
            evaluations += len(round_orders)
            if campaign.enabled:
                for candidate in candidates:
                    if candidate is not None:
                        scored += 1
                        campaign.observe(candidate.objective)
            for neighbor, candidate in zip(round_orders, candidates):
                if candidate is not None and candidate.objective < current.objective:
                    current, current_order = candidate, neighbor
                    improved = True
                    break
        if campaign.enabled:
            # The climb's final incumbent is its result; every other
            # scored candidate lost to it along the way.
            funnel = campaign.phase("local_search")
            funnel.retain(cache_hit=current.cache_hit)
            funnel.discard("worse-neighbor", scored - 1)
        return LocalSearchOutcome(
            best=current, start_objective=start_objective, evaluations=evaluations
        )

    def search(self, layer: LayerSpec) -> LocalSearchOutcome:
        """Sample seeds with the base mapper, polish the best few."""
        if not self.mapper.spatial.fits(self.mapper.accelerator.mac_array.size):
            raise MappingError(
                f"spatial mapping {self.mapper.spatial} does not fit "
                f"{self.mapper.accelerator.name}"
            )
        campaign = current_campaign()
        seeds: List[Tuple[float, Order]] = []
        for order in self.mapper.orders(layer):
            result = self._evaluate_order(layer, order)
            if result is not None:
                if campaign.enabled:
                    campaign.observe(result.objective)
                seeds.append((result.objective, order))
        if not seeds:
            raise MappingError(
                f"no allocatable order for {layer.describe()} on "
                f"{self.mapper.accelerator.name}"
            )
        seeds.sort(key=lambda s: s[0])
        restarts = seeds[: self.config.restarts]
        if campaign.enabled:
            # Seeds selected for polishing survive this stage; the rest
            # are truncated out exactly like the mapper's keep-top cut.
            funnel = campaign.phase("local_search")
            funnel.retain(len(restarts))
            funnel.discard("keep-top", len(seeds) - len(restarts))
        emitter = current_emitter()
        run = None
        if emitter.enabled:
            run = emitter.start_run(
                "local_search",
                total_units=len(restarts),
                unit="climbs",
                accelerator=self.mapper.accelerator.name,
                layer=layer.name or str(layer.layer_type),
            )
        best_outcome: Optional[LocalSearchOutcome] = None
        try:
            for index, (objective, order) in enumerate(restarts):
                t0 = time.perf_counter()
                outcome = self.climb(layer, order)
                if run is not None:
                    run.advance(
                        1,
                        errors=0 if outcome is not None else 1,
                        wall_s=time.perf_counter() - t0,
                        index=index,
                    )
                if outcome is None:
                    continue
                if best_outcome is None or outcome.best.objective < best_outcome.best.objective:
                    best_outcome = dataclasses.replace(
                        outcome, start_objective=seeds[0][0]
                    )
                    if run is not None:
                        run.best(
                            best_outcome.best.objective,
                            total_cycles=best_outcome.best.report.total_cycles,
                            utilization=best_outcome.best.report.utilization,
                            label=layer.name or str(layer.layer_type),
                        )
        except KeyboardInterrupt:
            if run is not None:
                run.interrupt("KeyboardInterrupt")
            raise
        if run is not None:
            run.finish()
        assert best_outcome is not None
        return best_outcome
