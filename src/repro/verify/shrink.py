"""Greedy minimisation of a failing verification case.

Given a case that violates some properties, the shrinker tries a fixed
sequence of simplifying mutations — halving layer bounds, dropping whole
memory levels, disabling double buffering, collapsing dual ports into one,
removing spatial unrolling, flattening the stall-overlap partition — and
keeps any mutant that (a) still violates at least one of the *same*
properties and (b) is strictly smaller under :func:`case_size`. Mutated
machines are re-mapped through the real mapper (tiny budget), so every
accepted mutant is still a well-formed case; the loop repeats until a full
pass accepts nothing.

Everything is deterministic: mutation order is fixed and the mapper is
seeded, so the same failing case always shrinks to the same minimal
counterexample.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.hardware.accelerator import Accelerator, StallOverlapConfig
from repro.hardware.hierarchy import MemoryHierarchy
from repro.hardware.memory import single_rw_port
from repro.verify.generators import Case, GeneratorConfig, case_mappings
from repro.verify.properties import Tolerance, check_case
from repro.workload.layer import LayerSpec
from repro.workload.operand import Operand

Mutant = Tuple[Accelerator, dict, LayerSpec]


def case_size(case: Case) -> Tuple[int, int, int, int]:
    """Lexicographic size of a case (smaller = simpler to hand-check).

    Ordered by what dominates human effort: distinct memory levels, then
    temporal loops, then total layer work, then machine clutter (ports,
    instances, double buffering, overlap groups, spatial factors).
    """
    unique = case.accelerator.hierarchy.unique_levels()
    clutter = (
        sum(len(lvl.instance.ports) for lvl in unique)
        + sum(lvl.instance.instances for lvl in unique)
        + sum(1 for lvl in unique if lvl.instance.double_buffered)
        + len(case.accelerator.stall_overlap.concurrent_groups)
        + sum(case.spatial_dict.values())
    )
    return (
        len(unique),
        len(case.mapping.temporal.loops),
        sum(case.layer.dims.values()),
        clutter,
    )


# --------------------------------------------------------------------------- #
# Mutations


def _drop_level(accelerator: Accelerator, name: str) -> Optional[Accelerator]:
    """Remove memory ``name`` from every chain (None if a chain would empty)."""
    chains = {}
    for op in Operand:
        kept = tuple(
            lvl for lvl in accelerator.hierarchy.levels(op) if lvl.name != name
        )
        if not kept:
            return None
        chains[op] = kept
    # Drop the memory from the overlap partition too.
    groups = tuple(
        g for g in (
            frozenset(n for n in group if n != name)
            for group in accelerator.stall_overlap.concurrent_groups
        ) if g
    )
    return dataclasses.replace(
        accelerator,
        hierarchy=MemoryHierarchy(chains),
        stall_overlap=StallOverlapConfig(groups),
    )


def _replace_instance(accelerator: Accelerator, name: str, **changes) -> Accelerator:
    from repro.core.sensitivity import swap_level
    from repro.hardware.hierarchy import auto_allocate

    level = accelerator.memory_by_name(name)
    new_inst = dataclasses.replace(level.instance, **changes)
    if "ports" in changes:
        # The endpoint allocation names ports; re-derive it for the new set.
        new_level = auto_allocate(new_inst, level.serves, level.capacity_share)
    else:
        new_level = dataclasses.replace(level, instance=new_inst)
    return swap_level(accelerator, level, new_level)


def _mutants(case: Case) -> Iterator[Mutant]:
    """All one-step simplifications, in fixed (deterministic) order."""
    acc = case.accelerator
    spatial = case.spatial_dict
    layer = case.layer

    # 1. Layer bounds: straight to 1, then halved.
    for dim in sorted(layer.dims, key=str):
        size = layer.dims[dim]
        if size > 1:
            yield acc, spatial, layer.with_dims(**{dim.value: 1})
            if size > 3:
                yield acc, spatial, layer.with_dims(**{dim.value: size // 2})

    # 2. Drop whole memory levels (innermost-last so outer levels go first).
    for name in sorted(acc.memory_names()):
        dropped = _drop_level(acc, name)
        if dropped is not None:
            yield dropped, spatial, layer

    # 3. Remove spatial unrolling (and shrink the array to match).
    if spatial:
        flat = dataclasses.replace(
            acc, mac_array=dataclasses.replace(acc.mac_array, rows=1, cols=1)
        )
        yield flat, {}, layer

    # 4. Per-memory simplifications.
    for name in sorted(acc.memory_names()):
        inst = acc.memory_by_name(name).instance
        if inst.double_buffered:
            yield _replace_instance(acc, name, double_buffered=False), spatial, layer
        if inst.instances > 1:
            yield _replace_instance(acc, name, instances=1), spatial, layer
        if len(inst.ports) > 1:
            bw = max(p.bandwidth for p in inst.ports)
            yield (
                _replace_instance(acc, name, ports=single_rw_port(bw)),
                spatial,
                layer,
            )

    # 5. Flatten the stall-overlap partition.
    if acc.stall_overlap.concurrent_groups:
        yield acc.replace_stall_overlap(StallOverlapConfig.all_concurrent()), spatial, layer


# --------------------------------------------------------------------------- #
# The greedy loop


def _rebuild(
    mutant: Mutant,
    base: Case,
    failing: Sequence[str],
    config: GeneratorConfig,
    tolerance: Tolerance,
    backend: str = "event",
) -> Optional[Case]:
    """Re-map a mutant and return it as a still-failing case, if any."""
    acc, spatial, layer = mutant
    try:
        mappings = case_mappings(
            acc, spatial, layer, config,
            limit=config.mappings_per_machine, seed=0,
        )
    except Exception:
        return None
    for mapping in mappings:
        candidate = Case(
            accelerator=acc,
            spatial=tuple(sorted(spatial.items())),
            layer=layer,
            mapping=mapping,
            case_id=f"{base.case_id.split('~')[0]}~shrunk",
        )
        if check_case(
            candidate, properties=failing, tolerance=tolerance,
            backend=backend,
        ):
            return candidate
    return None


def shrink_case(
    case: Case,
    failing: Sequence[str],
    config: GeneratorConfig = GeneratorConfig(),
    tolerance: Tolerance = Tolerance(),
    max_accepted: int = 64,
    backend: str = "event",
) -> Case:
    """Greedily minimise ``case`` while it keeps violating ``failing``.

    Returns the smallest still-failing case found (possibly ``case``
    itself when nothing simpler fails). Deterministic for a given input —
    ``backend`` is part of that input: shrinking a three-way failure
    re-checks mutants under the same backend that found it.
    """
    if not failing:
        return case
    current = case
    current_size = case_size(current)
    accepted = 0
    improved = True
    while improved and accepted < max_accepted:
        improved = False
        for mutant in _mutants(current):
            candidate = _rebuild(
                mutant, current, failing, config, tolerance, backend
            )
            if candidate is None:
                continue
            size = case_size(candidate)
            if size < current_size:
                current, current_size = candidate, size
                accepted += 1
                improved = True
                break  # restart the pass from the smaller case
    return current


def shrink_report(original: Case, shrunk: Case, failing: List[str]) -> str:
    """Human-readable before/after summary for reports and artifacts."""
    return (
        f"violated: {', '.join(failing)}\n"
        f"original: {original.describe()}\n"
        f"shrunk:   {shrunk.describe()}\n"
        f"machine:\n{shrunk.accelerator.describe()}\n"
        f"mapping:\n{shrunk.mapping.describe()}"
    )
