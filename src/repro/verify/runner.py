"""Drive a verification run: generate, check, shrink, replay, report.

This is what ``repro verify`` executes. One run:

1. replays every committed corpus case (deterministic regression check);
2. samples ``examples`` fresh cases from the seeded generators and runs
   the full property suite on each;
3. shrinks every failing case to a minimal counterexample and (optionally)
   writes it — plus a human-readable report — into an artifact directory
   ready to be committed to the corpus;
4. appends one ``kind="verify"`` row to the ambient run ledger.

The exit contract is binary: any violation anywhere → failure.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from typing import Dict, List, Optional, Tuple

from repro.observability.ledger import current_ledger, record_from_verification
from repro.observability.progress import current_emitter
from repro.verify.corpus import CorpusCase, case_to_dict, load_corpus
from repro.verify.generators import Case, GeneratorConfig, iter_cases
from repro.verify.properties import Tolerance, Violation, check_case
from repro.verify.shrink import shrink_case, shrink_report


@dataclasses.dataclass(frozen=True)
class ShrunkFailure:
    """One failing case together with its minimised counterexample.

    ``pairs`` collects the disagreeing comparisons from the violations
    (``"event/rtl"``, ``"model/rtl"``, ``"model/event"``) so three-way
    counterexamples are tagged with *which* pair fell apart — the triage
    signal (sim-vs-sim = simulator bug, model-vs-sim = model accuracy).
    """

    original: Case
    shrunk: Case
    failing: Tuple[str, ...]
    violations: Tuple[Violation, ...]

    @property
    def pairs(self) -> Tuple[str, ...]:
        return tuple(sorted({v.pair for v in self.violations if v.pair}))

    def describe(self) -> str:
        report = shrink_report(self.original, self.shrunk, list(self.failing))
        if self.pairs:
            report = f"disagreeing pairs: {', '.join(self.pairs)}\n" + report
        return report


@dataclasses.dataclass(frozen=True)
class VerificationSummary:
    """Aggregate outcome of one run (what the ledger row is built from)."""

    seed: int
    examples: int
    cases_checked: int
    corpus_cases: int
    violations: Tuple[Violation, ...]
    corpus_violations: Tuple[Violation, ...]
    failures: Tuple[ShrunkFailure, ...]
    wall_time_s: float
    backend: str = "event"

    @property
    def ok(self) -> bool:
        return not self.violations and not self.corpus_violations

    def as_dict(self) -> Dict:
        """JSON-ready report payload."""
        return {
            "seed": self.seed,
            "examples": self.examples,
            "backend": self.backend,
            "cases_checked": self.cases_checked,
            "corpus_cases": self.corpus_cases,
            "ok": self.ok,
            "wall_time_s": self.wall_time_s,
            "violations": [v.describe() for v in self.violations],
            "corpus_violations": [v.describe() for v in self.corpus_violations],
            "failures": [
                {
                    "case_id": f.original.case_id,
                    "failing": list(f.failing),
                    "pairs": list(f.pairs),
                    "shrunk": case_to_dict(
                        f.shrunk,
                        comment=f"shrunk from {f.original.case_id}",
                        properties=f.failing,
                        pairs=f.pairs,
                    ),
                    "report": f.describe(),
                }
                for f in self.failures
            ],
        }


def replay_corpus(
    corpus_dir: pathlib.Path,
    tolerance: Tolerance = Tolerance(),
    backend: str = "event",
) -> Tuple[List[CorpusCase], List[Violation]]:
    """Re-check every committed corpus case against the full suite."""
    cases = load_corpus(corpus_dir)
    violations: List[Violation] = []
    for entry in cases:
        violations.extend(
            check_case(entry.case, tolerance=tolerance, backend=backend)
        )
    return cases, violations


def run_verification(
    examples: int = 200,
    seed: int = 0,
    corpus_dir: Optional[pathlib.Path] = None,
    corpus_only: bool = False,
    config: GeneratorConfig = GeneratorConfig(),
    tolerance: Tolerance = Tolerance(),
    shrink: bool = True,
    backend: str = "event",
) -> VerificationSummary:
    """One full verification run; appends a row to the ambient ledger.

    Progress reports through the ambient event emitter (one
    ``unit="cases"`` run; each failing case surfaces as a chunk event
    with an error and the failing property names in its note) — the same
    stream every search flow uses, replacing the old ad-hoc ``progress``
    print callback.
    """
    emitter = current_emitter()
    start = time.monotonic()
    run = None
    if emitter.enabled:
        total = (0 if corpus_only else max(examples, 0))
        if corpus_dir is not None:
            total += len(load_corpus(corpus_dir))
        run = emitter.start_run("verify", total_units=total, unit="cases")

    corpus_cases: List[CorpusCase] = []
    corpus_violations: List[Violation] = []
    if corpus_dir is not None:
        corpus_t0 = time.perf_counter()
        corpus_cases, corpus_violations = replay_corpus(
            corpus_dir, tolerance, backend
        )
        if run is not None and corpus_cases:
            run.advance(
                len(corpus_cases),
                errors=len(corpus_violations),
                wall_s=time.perf_counter() - corpus_t0,
                note="corpus replay",
            )

    violations: List[Violation] = []
    failures: List[ShrunkFailure] = []
    checked = 0
    try:
        if not corpus_only and examples > 0:
            for case in iter_cases(seed, config):
                if checked >= examples:
                    break
                checked += 1
                case_t0 = time.perf_counter()
                found = check_case(case, tolerance=tolerance, backend=backend)
                if not found:
                    if run is not None:
                        run.advance(
                            1, wall_s=time.perf_counter() - case_t0,
                            index=checked - 1,
                        )
                    continue
                violations.extend(found)
                failing = tuple(sorted({v.prop for v in found}))
                if run is not None:
                    run.advance(
                        1, errors=1,
                        wall_s=time.perf_counter() - case_t0,
                        index=checked - 1,
                        note=f"FAIL {case.case_id}: {', '.join(failing)}",
                    )
                shrunk = (
                    shrink_case(
                        case, failing, config, tolerance, backend=backend
                    )
                    if shrink
                    else case
                )
                failures.append(
                    ShrunkFailure(
                        original=case,
                        shrunk=shrunk,
                        failing=failing,
                        violations=tuple(found),
                    )
                )
    except KeyboardInterrupt:
        if run is not None:
            run.interrupt("KeyboardInterrupt")
        raise
    if run is not None:
        run.finish()

    summary = VerificationSummary(
        seed=seed,
        examples=examples if not corpus_only else 0,
        cases_checked=checked,
        corpus_cases=len(corpus_cases),
        violations=tuple(violations),
        corpus_violations=tuple(corpus_violations),
        failures=tuple(failures),
        wall_time_s=time.monotonic() - start,
        backend=backend,
    )
    current_ledger().append(
        record_from_verification(
            seed=seed,
            examples=summary.examples,
            cases_checked=summary.cases_checked,
            violations=len(summary.violations),
            corpus_cases=summary.corpus_cases,
            corpus_violations=len(summary.corpus_violations),
            shrunk=len(summary.failures),
            wall_time_s=summary.wall_time_s,
            backend=backend,
        )
    )
    return summary


def write_artifacts(
    summary: VerificationSummary,
    report_path: Optional[pathlib.Path] = None,
    artifact_dir: Optional[pathlib.Path] = None,
) -> List[pathlib.Path]:
    """Write the JSON report and per-failure counterexample files."""
    written: List[pathlib.Path] = []
    if report_path is not None:
        report_path = pathlib.Path(report_path)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(
            json.dumps(summary.as_dict(), indent=2, sort_keys=True) + "\n"
        )
        written.append(report_path)
    if artifact_dir is not None and summary.failures:
        artifact_dir = pathlib.Path(artifact_dir)
        artifact_dir.mkdir(parents=True, exist_ok=True)
        for failure in summary.failures:
            stem = failure.original.case_id.replace("~", "-")
            case_path = artifact_dir / f"{stem}.json"
            case_path.write_text(
                json.dumps(
                    case_to_dict(
                        failure.shrunk,
                        comment=f"shrunk from {failure.original.case_id}",
                        properties=failure.failing,
                        pairs=failure.pairs,
                    ),
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
            written.append(case_path)
            txt_path = artifact_dir / f"{stem}.txt"
            txt_path.write_text(failure.describe() + "\n")
            written.append(txt_path)
    return written
