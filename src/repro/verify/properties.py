"""Differential and metamorphic oracles over one verification case.

Each property is a function ``(case, ctx) -> list[Violation]`` registered
in :data:`PROPERTIES`. The oracles restate the paper's algebra as checks:

``hard_lower_bounds``
    Clamping invariants of Section III-D/E: ``SS_overall >= 0``,
    ``CC >= CC_spatial >= CC_ideal``, non-negative preload/offload, and
    the simulator's own ``total >= CC_spatial``.
``model_tracks_simulator``
    The differential oracle — analytical ``CC`` within a tolerance band
    of the cycle simulator's measured ``CC`` (Section IV's validation).
``reqbw_algebra``
    Table I per-DTL identities: ``ReqBW_u = Mem_DATA / X_REQ``,
    ``MUW_u = X_REQ * Z``, ``SS_u = (X_REAL - X_REQ) * Z``, the
    double-buffered keep-out exemption (``X_REQ = Mem_CC``), and
    ``X_REQ <= Mem_CC``.
``stall_combination``
    Eq. (1)/(2) laws per physical port: positive per-DTL stalls are never
    cancelled by other DTLs' slack, the combined window never exceeds the
    horizon or the summed per-DTL windows, and the refined rule never
    undercuts the printed equations.
``integration_consistency``
    Step 3 bookkeeping: ``SS_overall`` equals the sum of the per-group
    contributions, each clamped at zero.
``bandwidth_monotonicity``
    Metamorphic: doubling every port bandwidth of any one memory never
    increases any ``SS_u``, ``SS_overall`` or total latency.
``serde_roundtrip``
    The accelerator survives a serde round trip with an identical
    fingerprint and an identical latency report.
``batch_scalar_parity``
    The vectorized batch evaluator reproduces the scalar model's numbers
    bit-for-bit (``==``, no tolerance) — the contract that lets the
    engine route sweeps through the SoA core without changing results.
``three_way_agreement``
    The three-way differential oracle (``backend="both"`` only): the
    event-driven simulator and the register-stage-accurate RTL backend
    must agree **exactly** on total cycles whenever the RTL run certifies
    exactness (integral program, zero contended port cycles), and within
    the calibrated sim-vs-sim band (``sim_rel_band``/``sim_abs_band``)
    everywhere else; the model must also sit inside the standard band of
    the RTL measurement. Each violation names the disagreeing ``pair``
    (``event/rtl`` is escalated as a simulator bug, ``model/rtl`` as a
    model-accuracy regression).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.model import LatencyModel
from repro.core.report import LatencyReport
from repro.core.step2 import combine_port
from repro.hardware.accelerator import Accelerator
from repro.hardware.serde import accelerator_from_dict, accelerator_to_dict
from repro.simulator.engine import CycleSimulator
from repro.simulator.result import SimulationResult, within_band
from repro.simulator.rtl import RtlSimulationResult, RtlSimulator
from repro.verify.generators import Case

_EPS = 1e-6

#: Recognized simulator backends for the verification axis.
BACKENDS = ("event", "rtl", "both")


@dataclasses.dataclass(frozen=True)
class Tolerance:
    """Numeric slack for the differential and algebraic oracles.

    ``rel_band`` / ``abs_band`` bound the model-vs-simulator ratio the
    same way the legacy random-machine test did: the generated space
    includes port-sharing corners where the analytical combination is a
    deliberate over- or under-approximation, so the differential oracle
    is a band, not an equality. The algebraic oracles use ``eps`` only.

    ``sim_rel_band`` / ``sim_abs_band`` bound the *sim-vs-sim* comparison
    of the three-way oracle outside the exact subset. The two backends
    implement deliberately different arbitration (processor sharing vs.
    fixed priority) and time quantization (continuous vs. integer ticks),
    so contended or fractional cases legitimately diverge; 1.6x + 16 was
    calibrated against 320 fixed-seed generated cases (worst observed
    ratio 1.45, median 1.001). On the certified exact subset the bound is
    equality, not this band.
    """

    rel_band: float = 2.5
    abs_band: float = 16.0
    sim_rel_band: float = 1.6
    sim_abs_band: float = 16.0
    eps: float = _EPS


@dataclasses.dataclass(frozen=True)
class Violation:
    """One failed property on one case.

    ``pair`` names the disagreeing comparison for differential oracles
    (``"event/rtl"``, ``"model/rtl"``, ``"model/event"``); empty for the
    single-evaluation algebraic properties.
    """

    prop: str
    case_id: str
    message: str
    details: Tuple[Tuple[str, float], ...] = ()
    pair: str = ""

    def describe(self) -> str:
        detail = ", ".join(f"{k}={v:g}" for k, v in self.details)
        tag = f"[{self.prop}]" + (f"[{self.pair}]" if self.pair else "")
        return f"{tag} {self.case_id}: {self.message}" + (
            f" ({detail})" if detail else ""
        )


class CaseContext:
    """Lazily-shared expensive evaluations of one case.

    The model report and each backend's simulation are computed at most
    once per case however many properties consume them; simulator
    failures surface as violations (a generated case must be executable
    by construction). ``backend`` selects which simulator the two-party
    differential oracles compare against: ``"event"`` and ``"both"`` use
    the event engine as primary truth, ``"rtl"`` the tick backend.
    """

    def __init__(
        self,
        case: Case,
        max_events: int = 2_000_000,
        backend: str = "event",
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected {BACKENDS}")
        self.case = case
        self.max_events = max_events
        self.backend = backend
        self._report: Optional[LatencyReport] = None
        self._sim: Optional[SimulationResult] = None
        self._sim_error: Optional[str] = None
        self._rtl: Optional[RtlSimulationResult] = None
        self._rtl_error: Optional[str] = None

    @property
    def report(self) -> LatencyReport:
        if self._report is None:
            model = LatencyModel(self.case.accelerator)
            self._report = model.evaluate(self.case.mapping, validate=False)
        return self._report

    def simulation(self) -> Tuple[Optional[SimulationResult], Optional[str]]:
        """The primary-truth simulation for this context's backend."""
        if self.backend == "rtl":
            return self.rtl_simulation()
        return self.event_simulation()

    def event_simulation(
        self,
    ) -> Tuple[Optional[SimulationResult], Optional[str]]:
        if self._sim is None and self._sim_error is None:
            try:
                self._sim = CycleSimulator(
                    self.case.accelerator, self.case.mapping,
                    max_events=self.max_events,
                ).run()
            except RuntimeError as exc:  # deadlock / event explosion
                self._sim_error = str(exc)
        return self._sim, self._sim_error

    def rtl_simulation(
        self,
    ) -> Tuple[Optional[RtlSimulationResult], Optional[str]]:
        if self._rtl is None and self._rtl_error is None:
            try:
                self._rtl = RtlSimulator(
                    self.case.accelerator, self.case.mapping,
                ).run()
            except RuntimeError as exc:  # deadlock / cycle explosion
                self._rtl_error = str(exc)
        return self._rtl, self._rtl_error


PropertyFn = Callable[[Case, CaseContext, Tolerance], List[Violation]]


def _violation(
    prop: str, case: Case, message: str, pair: str = "", **details: float
) -> Violation:
    return Violation(
        prop=prop,
        case_id=case.case_id,
        message=message,
        details=tuple(sorted(details.items())),
        pair=pair,
    )


# --------------------------------------------------------------------------- #
# Properties


def hard_lower_bounds(
    case: Case, ctx: CaseContext, tol: Tolerance
) -> List[Violation]:
    """Clamps and orderings that must hold exactly (Section III-D/E)."""
    out: List[Violation] = []
    r = ctx.report
    eps = tol.eps
    if r.ss_overall < -eps:
        out.append(_violation(
            "hard_lower_bounds", case,
            "SS_overall must be clamped at zero", ss_overall=r.ss_overall,
        ))
    if r.cc_spatial < r.cc_ideal - eps:
        out.append(_violation(
            "hard_lower_bounds", case,
            "CC_spatial below CC_ideal",
            cc_spatial=float(r.cc_spatial), cc_ideal=r.cc_ideal,
        ))
    if r.total_cycles < r.cc_spatial - eps:
        out.append(_violation(
            "hard_lower_bounds", case,
            "model total below CC_spatial",
            total=r.total_cycles, cc_spatial=float(r.cc_spatial),
        ))
    if r.preload < -eps or r.offload < -eps:
        out.append(_violation(
            "hard_lower_bounds", case,
            "negative preload/offload", preload=r.preload, offload=r.offload,
        ))
    sim, err = ctx.simulation()
    if sim is not None and sim.total_cycles < r.cc_spatial - 1e-6:
        out.append(_violation(
            "hard_lower_bounds", case,
            "simulator finished below CC_spatial (lowering bug)",
            sim_total=sim.total_cycles, cc_spatial=float(r.cc_spatial),
        ))
    return out


def model_tracks_simulator(
    case: Case, ctx: CaseContext, tol: Tolerance
) -> List[Violation]:
    """Differential oracle: analytical CC within the band of measured CC."""
    pair = "model/rtl" if ctx.backend == "rtl" else "model/event"
    sim, err = ctx.simulation()
    if sim is None:
        return [_violation(
            "model_tracks_simulator", case, f"simulator failed: {err}",
            pair=pair,
        )]
    model_cc = ctx.report.total_cycles
    if not within_band(model_cc, sim.total_cycles, tol.rel_band, tol.abs_band):
        return [_violation(
            "model_tracks_simulator", case,
            "model CC outside the simulator tolerance band",
            pair=pair,
            model=model_cc, sim=sim.total_cycles,
            ratio=model_cc / max(sim.total_cycles, 1.0),
        )]
    return []


def three_way_agreement(
    case: Case, ctx: CaseContext, tol: Tolerance
) -> List[Violation]:
    """Three-way oracle: model vs. event engine vs. RTL backend.

    Sim-vs-sim disagreement is a *simulator bug* by definition — the two
    backends implement the same abstract machine from independent code.
    On runs the RTL backend certifies as exact (integral program, zero
    contended port cycles) the expectation is cycle-exact equality; on
    contended or fractional runs the calibrated sim band applies. The
    model must additionally track the RTL measurement inside the
    standard band, closing the triangle.
    """
    out: List[Violation] = []
    event, event_err = ctx.event_simulation()
    rtl, rtl_err = ctx.rtl_simulation()
    if event is None:
        out.append(_violation(
            "three_way_agreement", case,
            f"event simulator failed: {event_err}", pair="event/rtl",
        ))
    if rtl is None:
        out.append(_violation(
            "three_way_agreement", case,
            f"rtl simulator failed: {rtl_err}", pair="event/rtl",
        ))
    if event is None or rtl is None:
        return out
    if rtl.exact:
        if abs(event.total_cycles - rtl.total_cycles) > tol.eps:
            out.append(_violation(
                "three_way_agreement", case,
                "backends disagree on a certified-exact run "
                "(simulator bug: integral program, uncontended ports)",
                pair="event/rtl",
                event=event.total_cycles, rtl=rtl.total_cycles,
            ))
    elif not within_band(
        event.total_cycles, rtl.total_cycles,
        tol.sim_rel_band, tol.sim_abs_band,
    ):
        out.append(_violation(
            "three_way_agreement", case,
            "backends disagree beyond the calibrated sim-vs-sim band "
            "(simulator bug)",
            pair="event/rtl",
            event=event.total_cycles, rtl=rtl.total_cycles,
            ratio=event.total_cycles / max(rtl.total_cycles, 1.0),
            contended=rtl.contended_port_cycles,
        ))
    model_cc = ctx.report.total_cycles
    if not within_band(model_cc, rtl.total_cycles, tol.rel_band, tol.abs_band):
        out.append(_violation(
            "three_way_agreement", case,
            "model CC outside the RTL backend's tolerance band",
            pair="model/rtl",
            model=model_cc, rtl=rtl.total_cycles,
            ratio=model_cc / max(rtl.total_cycles, 1.0),
        ))
    return out


def reqbw_algebra(
    case: Case, ctx: CaseContext, tol: Tolerance
) -> List[Violation]:
    """Table I identities on every DTL of the case."""
    out: List[Violation] = []
    eps = tol.eps
    acc = case.accelerator
    for dtl in ctx.report.dtls:
        t = dtl.transfer
        where = f"{dtl.memory}.{dtl.port}[{t.operand}-{t.kind.value}]"
        if t.x_req > t.period + eps:
            out.append(_violation(
                "reqbw_algebra", case,
                f"{where}: X_REQ exceeds the period",
                x_req=t.x_req, period=t.period,
            ))
        if t.x_req > 0 and abs(t.req_bw * t.x_req - t.data_bits) > eps * max(
            1.0, t.data_bits
        ):
            out.append(_violation(
                "reqbw_algebra", case,
                f"{where}: ReqBW_u * X_REQ != Mem_DATA",
                req_bw=t.req_bw, x_req=t.x_req, data_bits=t.data_bits,
            ))
        if abs(dtl.muw_u - t.x_req * t.repeats) > eps * max(1.0, dtl.muw_u):
            out.append(_violation(
                "reqbw_algebra", case,
                f"{where}: MUW_u != X_REQ * Z",
                muw_u=dtl.muw_u, x_req=t.x_req, repeats=float(t.repeats),
            ))
        expect_ss = (dtl.x_real - t.x_req) * t.repeats
        if abs(dtl.ss_u - expect_ss) > eps * max(1.0, abs(expect_ss)):
            out.append(_violation(
                "reqbw_algebra", case,
                f"{where}: SS_u != (X_REAL - X_REQ) * Z",
                ss_u=dtl.ss_u, expect=expect_ss,
            ))
        served = acc.memory_by_name(t.served_memory)
        if served.instance.double_buffered and abs(t.x_req - t.period) > eps:
            out.append(_violation(
                "reqbw_algebra", case,
                f"{where}: double-buffered memory must have X_REQ = Mem_CC",
                x_req=t.x_req, period=t.period,
            ))
    return out


def stall_combination(
    case: Case, ctx: CaseContext, tol: Tolerance
) -> List[Violation]:
    """Eq. (1)/(2) laws on every physical-port combination."""
    out: List[Violation] = []
    eps = tol.eps
    horizon = float(case.mapping.temporal.total_cycles)
    for key, comb in ctx.report.port_combinations.items():
        where = f"{comb.memory}.{comb.port}"
        positives = [d.ss_u for d in comb.dtls if d.ss_u > 0]
        # Positive stalls pass through undiminished (Eq. (2)): slack from
        # other DTLs must never cancel a DTL's own stall. (With no positive
        # DTL, Eq. (1) applies and a negative SS_comb — net slack — is fine.)
        if positives:
            positive = sum(positives)
            if comb.ss_comb < positive - eps * max(1.0, positive):
                out.append(_violation(
                    "stall_combination", case,
                    f"{where}: positive SS_u cancelled by slack (Eq. 2)",
                    ss_comb=comb.ss_comb, positive=positive,
                ))
        # MUW_comb is a union of windows clipped to the horizon. (It may
        # exceed the summed per-DTL windows: the hyperperiod fast path
        # extrapolates short streams across the horizon by design.)
        if comb.muw_comb > horizon + eps * max(1.0, horizon):
            out.append(_violation(
                "stall_combination", case,
                f"{where}: MUW_comb exceeds the horizon",
                muw_comb=comb.muw_comb, horizon=horizon,
            ))
        if comb.muw_comb < -eps:
            out.append(_violation(
                "stall_combination", case,
                f"{where}: negative MUW_comb", muw_comb=comb.muw_comb,
            ))
        # The refined rule must dominate the printed equations.
        paper = combine_port(
            comb.memory, comb.port, comb.dtls, horizon, rule="paper"
        )
        if comb.ss_comb < paper.ss_comb - eps * max(1.0, abs(paper.ss_comb)):
            out.append(_violation(
                "stall_combination", case,
                f"{where}: refined SS_comb undercuts the paper equations",
                refined=comb.ss_comb, paper=paper.ss_comb,
            ))
        # Aggregate busy-time bound: the port needs sum(X_REAL * Z) cycles
        # but only MUW_comb window cycles exist.
        busy = sum(d.muw_u + d.ss_u for d in comb.dtls)
        if comb.ss_comb < busy - comb.muw_comb - eps * max(1.0, abs(busy)):
            out.append(_violation(
                "stall_combination", case,
                f"{where}: SS_comb below the aggregate busy deficit",
                ss_comb=comb.ss_comb, busy=busy, muw_comb=comb.muw_comb,
            ))
    return out


def integration_consistency(
    case: Case, ctx: CaseContext, tol: Tolerance
) -> List[Violation]:
    """Step-3 bookkeeping: clamped group sums add up to SS_overall."""
    out: List[Violation] = []
    integ = ctx.report.integration
    if integ is None:
        return out
    eps = tol.eps
    total = 0.0
    for gid, ss in integ.group_stalls:
        if ss < -eps:
            out.append(_violation(
                "integration_consistency", case,
                f"group {gid} contribution not clamped at zero", group_ss=ss,
            ))
        total += max(0.0, ss)
    if abs(integ.ss_overall - total) > eps * max(1.0, total):
        out.append(_violation(
            "integration_consistency", case,
            "SS_overall != sum of clamped group stalls",
            ss_overall=integ.ss_overall, group_sum=total,
        ))
    served_max = max((s.ss for s in ctx.report.served_stalls), default=0.0)
    if integ.ss_overall < min(served_max, max(
        (ss for __, ss in integ.group_stalls), default=0.0
    )) - eps:
        out.append(_violation(
            "integration_consistency", case,
            "SS_overall below its own largest group",
            ss_overall=integ.ss_overall, served_max=served_max,
        ))
    return out


def _scale_ports(accelerator: Accelerator, memory_name: str, factor: float) -> Accelerator:
    """Copy with every port of ``memory_name`` scaled by ``factor``."""
    from repro.core.sensitivity import swap_level

    level = accelerator.memory_by_name(memory_name)
    inst = level.instance
    ports = tuple(
        dataclasses.replace(p, bandwidth=p.bandwidth * factor)
        for p in inst.ports
    )
    new_level = dataclasses.replace(
        level, instance=dataclasses.replace(inst, ports=ports)
    )
    return swap_level(accelerator, level, new_level)


def bandwidth_monotonicity(
    case: Case, ctx: CaseContext, tol: Tolerance
) -> List[Violation]:
    """Doubling one memory's port bandwidth never increases any stall.

    Per-DTL this is a theorem of Table I (``X_REAL`` strictly shrinks, so
    ``SS_u`` cannot grow); end to end it additionally exercises the
    refined Eq. (2) busy-time bound, without which a DTL crossing from
    stall to slack can make the *printed* combination non-monotone.
    """
    out: List[Violation] = []
    eps = tol.eps
    base = ctx.report

    def dtl_key(d):
        t = d.transfer
        return (d.memory, d.port, d.endpoint.value, str(t.operand),
                t.kind.value, t.served_memory, t.served_level)

    base_ss = {dtl_key(d): d.ss_u for d in base.dtls}
    for name in case.accelerator.memory_names():
        boosted = _scale_ports(case.accelerator, name, 2.0)
        faster = LatencyModel(boosted).evaluate(case.mapping, validate=False)
        scale = max(1.0, base.total_cycles)
        if faster.ss_overall > base.ss_overall + eps * scale:
            out.append(_violation(
                "bandwidth_monotonicity", case,
                f"doubling {name} bandwidth raised SS_overall",
                before=base.ss_overall, after=faster.ss_overall,
            ))
        if faster.total_cycles > base.total_cycles + eps * scale:
            out.append(_violation(
                "bandwidth_monotonicity", case,
                f"doubling {name} bandwidth raised total latency",
                before=base.total_cycles, after=faster.total_cycles,
            ))
        for d in faster.dtls:
            before = base_ss.get(dtl_key(d))
            if before is not None and d.ss_u > before + eps * max(1.0, abs(before)):
                out.append(_violation(
                    "bandwidth_monotonicity", case,
                    f"doubling {name} bandwidth raised SS_u of "
                    f"{d.memory}.{d.port}",
                    before=before, after=d.ss_u,
                ))
    return out


def serde_roundtrip(
    case: Case, ctx: CaseContext, tol: Tolerance
) -> List[Violation]:
    """Serde round trip preserves the fingerprint and the evaluation."""
    out: List[Violation] = []
    acc = case.accelerator
    restored = accelerator_from_dict(accelerator_to_dict(acc))
    if restored.fingerprint() != acc.fingerprint():
        out.append(_violation(
            "serde_roundtrip", case,
            "accelerator fingerprint changed across serde round trip",
        ))
        return out
    again = LatencyModel(restored).evaluate(case.mapping, validate=False)
    if abs(again.total_cycles - ctx.report.total_cycles) > tol.eps * max(
        1.0, ctx.report.total_cycles
    ):
        out.append(_violation(
            "serde_roundtrip", case,
            "latency changed across serde round trip",
            before=ctx.report.total_cycles, after=again.total_cycles,
        ))
    return out


def batch_scalar_parity(
    case: Case, ctx: CaseContext, tol: Tolerance
) -> List[Violation]:
    """The batch evaluator's numbers equal the scalar report exactly.

    Both paths run the identical kernels in the identical reduction
    order (see ``repro/core/kernels.py``), so the comparison is ``==``
    with no epsilon: any drift means one path reordered floating-point
    work. Cases the batch core cannot lower are skipped, not failed —
    ``supports``/``BatchLoweringError`` route them to the scalar model
    in production too.
    """
    from repro.core.batch import BatchEvaluator, BatchLoweringError

    evaluator = BatchEvaluator(case.accelerator)
    if not evaluator.supports(case.mapping):
        return []
    try:
        result = evaluator.evaluate([case.mapping], materialize=True)
    except BatchLoweringError:
        return []
    out: List[Violation] = []
    scalar = ctx.report
    batch = result.reports[0]
    for field in (
        "cc_ideal", "cc_spatial", "ss_overall", "preload", "offload",
        "total_cycles", "utilization", "scenario",
    ):
        s, b = getattr(scalar, field), getattr(batch, field)
        if s != b:
            out.append(_violation(
                "batch_scalar_parity", case,
                f"batch {field} differs from scalar (must be bit-for-bit)",
                scalar=float(s), batch=float(b),
            ))
    s_served = [(str(s.operand), s.level, s.ss) for s in scalar.served_stalls]
    b_served = [(str(s.operand), s.level, s.ss) for s in batch.served_stalls]
    if s_served != b_served:
        out.append(_violation(
            "batch_scalar_parity", case,
            "batch served-memory stalls differ from scalar",
        ))
    return out


PROPERTIES: Dict[str, PropertyFn] = {
    "hard_lower_bounds": hard_lower_bounds,
    "model_tracks_simulator": model_tracks_simulator,
    "three_way_agreement": three_way_agreement,
    "reqbw_algebra": reqbw_algebra,
    "stall_combination": stall_combination,
    "integration_consistency": integration_consistency,
    "bandwidth_monotonicity": bandwidth_monotonicity,
    "serde_roundtrip": serde_roundtrip,
    "batch_scalar_parity": batch_scalar_parity,
}


def default_properties(backend: str = "event") -> List[str]:
    """The property names active for a given simulator backend.

    ``three_way_agreement`` needs both simulators, so it only runs under
    ``backend="both"``; the single-backend axes run the classic suite
    with the chosen simulator as primary truth.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected {BACKENDS}")
    names = list(PROPERTIES)
    if backend != "both":
        names.remove("three_way_agreement")
    return names


def check_case(
    case: Case,
    properties: Optional[Sequence[str]] = None,
    tolerance: Tolerance = Tolerance(),
    backend: str = "event",
) -> List[Violation]:
    """Run (a subset of) the property suite on one case."""
    names = (
        list(properties) if properties is not None
        else default_properties(backend)
    )
    ctx = CaseContext(case, backend=backend)
    out: List[Violation] = []
    for name in names:
        try:
            out.extend(PROPERTIES[name](case, ctx, tolerance))
        except Exception as exc:  # evaluation itself blew up: hard violation
            out.append(Violation(
                prop=name,
                case_id=case.case_id,
                message=f"property crashed: {type(exc).__name__}: {exc}",
            ))
    return out
