"""Property-based differential verification of the latency model.

The subsystem has four parts, mirroring a classic property-based testing
pipeline but specialised to the paper's 3-step stall model:

* :mod:`repro.verify.generators` — constrained, seeded generators for
  random accelerators, layers and valid mappings (always evaluable);
* :mod:`repro.verify.properties` — differential and metamorphic oracles
  (model vs. cycle simulator, three-way model/event-sim/RTL-sim agreement
  under ``backend="both"``, Table I ReqBW algebra, Eq. (1)/(2) stall
  combination laws, bandwidth monotonicity, clamping invariants);
* :mod:`repro.verify.shrink` — greedy minimisation of a failing
  (accelerator, mapping, layer) triple to a hand-checkable counterexample;
* :mod:`repro.verify.corpus` — a persisted regression corpus of shrunk
  failures that CI replays deterministically.

:mod:`repro.verify.runner` ties the parts together behind
``repro verify --examples N --seed S`` (see :mod:`repro.cli`).
"""

from repro.verify.corpus import (
    CorpusCase,
    case_from_dict,
    case_to_dict,
    load_corpus,
    save_case,
)
from repro.verify.generators import (
    Case,
    GeneratorConfig,
    random_accelerator,
    random_layer,
    sample_cases,
)
from repro.verify.properties import (
    BACKENDS,
    PROPERTIES,
    Tolerance,
    Violation,
    check_case,
    default_properties,
)
from repro.verify.runner import (
    ShrunkFailure,
    VerificationSummary,
    replay_corpus,
    run_verification,
)
from repro.verify.shrink import case_size, shrink_case

__all__ = [
    "BACKENDS",
    "Case",
    "CorpusCase",
    "GeneratorConfig",
    "PROPERTIES",
    "ShrunkFailure",
    "Tolerance",
    "VerificationSummary",
    "Violation",
    "case_from_dict",
    "case_size",
    "case_to_dict",
    "check_case",
    "default_properties",
    "load_corpus",
    "random_accelerator",
    "random_layer",
    "replay_corpus",
    "run_verification",
    "sample_cases",
    "save_case",
    "shrink_case",
]
