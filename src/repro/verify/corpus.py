"""The persisted regression corpus of shrunk verification failures.

Every counterexample the harness shrinks is serialized to one JSON file —
accelerator via :mod:`repro.hardware.serde`, layer and mapping via the
schemas here, plus the content fingerprints at save time — and committed
under ``tests/verify/corpus/``. CI replays the whole directory on every
run: a corpus case that starts violating again is a regression, caught
deterministically and without any random search.

A corpus file carries a mandatory ``comment`` explaining *why* the case is
interesting (what it once broke, or what tolerance edge it sits on), so
the directory doubles as a catalogue of the model's known hard corners.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.serde import (
    SerdeError,
    accelerator_from_dict,
    accelerator_to_dict,
)
from repro.mapping.serde import mapping_from_dict, mapping_to_dict
from repro.verify.generators import Case
from repro.workload.serde import layer_from_dict, layer_to_dict

SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class CorpusCase:
    """One committed regression case plus its provenance metadata.

    ``pairs`` records which differential comparison disagreed when the
    case was saved (``"event/rtl"``, ``"model/rtl"``, ``"model/event"``);
    empty for algebraic failures and for files predating the three-way
    oracle (the field is schema-tolerant: absent reads as ``()``).
    """

    case: Case
    comment: str
    properties: Tuple[str, ...]
    pairs: Tuple[str, ...] = ()
    path: Optional[pathlib.Path] = None


# --------------------------------------------------------------------------- #
# Layer / mapping schemas live in repro.workload.serde / repro.mapping.serde
# since PR 7 (the serve wire protocol shares them); the corpus delegates.

_layer_to_dict = layer_to_dict
_layer_from_dict = layer_from_dict
_mapping_to_dict = mapping_to_dict
_mapping_from_dict = mapping_from_dict


# --------------------------------------------------------------------------- #
# Case files


def case_to_dict(
    case: Case,
    comment: str = "",
    properties: Sequence[str] = (),
    pairs: Sequence[str] = (),
) -> Dict:
    """Serialize one case (plus provenance) to a JSON-ready dict."""
    return {
        "schema": SCHEMA_VERSION,
        "case_id": case.case_id,
        "comment": comment,
        "properties": list(properties),
        "pairs": list(pairs),
        "accelerator": accelerator_to_dict(case.accelerator),
        "layer": _layer_to_dict(case.layer),
        "mapping": _mapping_to_dict(case.mapping),
        "fingerprints": {
            "accelerator": case.accelerator.fingerprint(),
            "mapping": case.mapping.fingerprint(),
        },
    }


def case_from_dict(data: Dict, path: Optional[pathlib.Path] = None) -> CorpusCase:
    """Restore a corpus case, verifying the recorded fingerprints.

    A fingerprint mismatch means the serde schemas (or the fingerprint
    inputs) drifted since the case was saved — the corpus file must be
    regenerated, not silently reinterpreted.
    """
    if data.get("schema") != SCHEMA_VERSION:
        raise SerdeError(
            f"corpus case {path or '?'}: unsupported schema {data.get('schema')!r}"
        )
    accelerator = accelerator_from_dict(data["accelerator"])
    layer = _layer_from_dict(data["layer"])
    mapping = _mapping_from_dict(data["mapping"], layer)
    case = Case(
        accelerator=accelerator,
        spatial=tuple(sorted(mapping.spatial.unrolling.items())),
        layer=layer,
        mapping=mapping,
        case_id=str(data["case_id"]),
    )
    recorded = data.get("fingerprints", {})
    actual = {
        "accelerator": accelerator.fingerprint(),
        "mapping": mapping.fingerprint(),
    }
    for key, want in recorded.items():
        if actual.get(key) != want:
            raise SerdeError(
                f"corpus case {path or case.case_id}: {key} fingerprint drifted "
                f"(recorded {want[:12]}…, recomputed {actual.get(key, '')[:12]}…); "
                "regenerate the corpus file"
            )
    return CorpusCase(
        case=case,
        comment=str(data.get("comment", "")),
        properties=tuple(data.get("properties", ())),
        pairs=tuple(data.get("pairs", ())),
        path=path,
    )


def save_case(
    case: Case,
    directory: pathlib.Path,
    comment: str,
    properties: Sequence[str] = (),
    pairs: Sequence[str] = (),
) -> pathlib.Path:
    """Write one case into the corpus directory (filename from content)."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    digest = case.mapping.fingerprint()[:10]
    path = directory / f"{case.case_id.replace('~', '-')}-{digest}.json"
    payload = case_to_dict(
        case, comment=comment, properties=properties, pairs=pairs
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(directory: pathlib.Path) -> List[CorpusCase]:
    """All corpus cases in ``directory`` (sorted by filename; [] if absent)."""
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        return []
    out: List[CorpusCase] = []
    for path in sorted(directory.glob("*.json")):
        out.append(case_from_dict(json.loads(path.read_text()), path=path))
    return out
