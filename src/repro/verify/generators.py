"""Constrained, seeded generators for verification cases.

A *case* is one (accelerator, spatial unrolling, layer, mapping) triple
plus the seed material that produced it. The generators are constrained so
that every sampled case is evaluable by both the analytical model and the
cycle simulator:

* hierarchies are built from the same primitives as the presets (per-MAC
  registers, optional local-buffer middle level — private per operand or
  shared between W and I — and a global buffer shared by all operands);
* layer bounds are kept small enough that the simulator finishes in
  milliseconds, while still exercising double-buffered vs. not, ``r`` vs.
  ``ir`` top loops, single shared read/write ports (shared-port DTL
  combination) and multi-level chains of uneven depth;
* mappings come from the real :class:`~repro.dse.mapper.TemporalMapper`
  with a tiny search budget, so they satisfy the mapper's validity rules
  by construction.

Everything is driven by :class:`random.Random` seeded from
``(seed, index)`` so any single case can be regenerated — and shrunk —
independently of the rest of the run.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dse.mapper import MapperConfig, TemporalMapper
from repro.hardware.accelerator import Accelerator, StallOverlapConfig
from repro.hardware.hierarchy import MemoryHierarchy, MemoryLevel, auto_allocate
from repro.hardware.mac_array import MacArray
from repro.hardware.memory import MemoryInstance, dual_port, single_rw_port
from repro.mapping.mapping import Mapping
from repro.workload.dims import LoopDim
from repro.workload.generator import dense_layer
from repro.workload.layer import LayerSpec
from repro.workload.operand import Operand


@dataclasses.dataclass(frozen=True)
class GeneratorConfig:
    """Knobs bounding the sampled design space.

    The defaults keep a single case's simulation in the low-millisecond
    range (total temporal cycles capped at ``max_total_cycles``) so a
    200-example CI run stays well under a minute.
    """

    max_dim: int = 24
    max_total_cycles: int = 2048
    mappings_per_machine: int = 2
    mapper_enumerated: int = 16
    mapper_samples: int = 8
    allow_spatial: bool = True
    allow_middle_level: bool = True
    allow_shared_lb: bool = True
    allow_single_port: bool = True
    allow_sequential_overlap: bool = True


@dataclasses.dataclass(frozen=True)
class Case:
    """One generated verification case.

    ``case_id`` ties a case back to its seed material; shrunk descendants
    keep the ancestor's id with a ``~shrunk`` suffix (see
    :mod:`repro.verify.shrink`).
    """

    accelerator: Accelerator
    spatial: Tuple[Tuple[LoopDim, int], ...]
    layer: LayerSpec
    mapping: Mapping
    case_id: str

    @property
    def spatial_dict(self) -> Dict[LoopDim, int]:
        return dict(self.spatial)

    def describe(self) -> str:
        """One-line summary for reports and shrink logs."""
        levels = len(self.accelerator.hierarchy.unique_levels())
        nloops = len(self.mapping.temporal.loops)
        dims = "x".join(
            f"{d}{s}" for d, s in sorted(self.layer.dims.items()) if s > 1
        )
        return (
            f"{self.case_id}: {self.accelerator.name} "
            f"({levels} levels), layer {dims or '1'}, {nloops} loops"
        )


# --------------------------------------------------------------------------- #
# Accelerators


def _reg_level(
    rng: random.Random,
    name: str,
    operand: Operand,
    bits: int,
    bw: float,
    double_buffered: bool,
    instances: int,
    config: GeneratorConfig,
) -> MemoryLevel:
    single = config.allow_single_port and rng.random() < 0.3
    ports = single_rw_port(bw) if single else dual_port(bw, bw)
    inst = MemoryInstance(
        name,
        bits,
        ports,
        double_buffered=double_buffered,
        instances=instances,
        read_energy_pj_per_bit=0.01,
        write_energy_pj_per_bit=0.01,
    )
    return auto_allocate(inst, {operand})


def random_accelerator(
    rng: random.Random,
    config: GeneratorConfig = GeneratorConfig(),
) -> Tuple[Accelerator, Dict[LoopDim, int]]:
    """One random machine plus its spatial unrolling.

    Sampled axes: array width (with matching register replication),
    register word sizes and bandwidths, double buffering per level, a
    middle local-buffer level (absent / private W+I buffers / one buffer
    shared by W and I), single-RW vs. dual ports, global-buffer
    bandwidths, and the stall-overlap partition.
    """
    array = rng.choice((1, 1, 2, 4)) if config.allow_spatial else 1
    spatial: Dict[LoopDim, int] = {LoopDim.K: array} if array > 1 else {}

    reg_bits = rng.choice((8, 16, 32, 64))
    reg_db = rng.random() < 0.4
    if reg_db:
        reg_bits = max(reg_bits, 16)
    # Innermost ports must feed the MAC array at one element per cycle
    # (8-bit W/I): the reference simulator does not execute compute-read
    # streams, so slower-than-element innermost ports would put the model
    # (which charges compute-edge contention, scenario 3) and the
    # simulator in different physics. Every machine in the paper feeds
    # its array at full rate from per-MAC registers.
    reg_bw = float(rng.choice((8, 16)))
    o_bits = rng.choice((24, 48, 96))
    # Output registers drain accumulators; keep their port at least as wide
    # as one element so generated machines stay in the regime the toy
    # fixtures occupy (pathologically slow O-regs stall every period).
    o_bw = float(max(reg_bw, o_bits))

    w_reg = _reg_level(rng, "W-Reg", Operand.W, reg_bits, reg_bw, reg_db, array, config)
    i_reg = _reg_level(rng, "I-Reg", Operand.I, reg_bits, reg_bw, reg_db, array, config)
    o_reg = _reg_level(rng, "O-Reg", Operand.O, o_bits, o_bw, False, array, config)

    chains: Dict[Operand, List[MemoryLevel]] = {
        Operand.W: [w_reg],
        Operand.I: [i_reg],
        Operand.O: [o_reg],
    }

    shape = "flat"
    if config.allow_middle_level and rng.random() < 0.5:
        lb_bits = rng.choice((2, 4, 8)) * 1024 * 8
        lb_db = rng.random() < 0.4
        lb_bw = float(rng.choice((16, 32, 64)))
        lb_single = config.allow_single_port and rng.random() < 0.3
        lb_ports = single_rw_port(lb_bw) if lb_single else dual_port(lb_bw, lb_bw)
        if config.allow_shared_lb and rng.random() < 0.5:
            shape = "shared-lb"
            lb = MemoryInstance(
                "WI-LB", lb_bits, lb_ports, double_buffered=lb_db,
                read_energy_pj_per_bit=0.02, write_energy_pj_per_bit=0.02,
            )
            lb_level = auto_allocate(lb, {Operand.W, Operand.I})
            chains[Operand.W].append(lb_level)
            chains[Operand.I].append(lb_level)
        else:
            shape = "split-lb"
            for op, mname in ((Operand.W, "W-LB"), (Operand.I, "I-LB")):
                lb = MemoryInstance(
                    mname, lb_bits, lb_ports, double_buffered=lb_db,
                    read_energy_pj_per_bit=0.02, write_energy_pj_per_bit=0.02,
                )
                chains[op].append(auto_allocate(lb, {op}))

    gb_r = float(rng.choice((4, 16, 64, 128)))
    gb_w = float(rng.choice((4, 16, 64, 128)))
    gb_single = config.allow_single_port and rng.random() < 0.25
    gb_ports = single_rw_port(max(gb_r, gb_w)) if gb_single else dual_port(gb_r, gb_w)
    gb = MemoryInstance(
        "GB", 64 * 1024 * 8, gb_ports,
        read_energy_pj_per_bit=0.05, write_energy_pj_per_bit=0.05,
    )
    gb_level = auto_allocate(gb, set(Operand))
    for op in Operand:
        chains[op].append(gb_level)

    hierarchy = MemoryHierarchy({op: tuple(lvls) for op, lvls in chains.items()})
    names = sorted({lvl.name for lvls in chains.values() for lvl in lvls})
    overlap = _random_overlap(rng, names, config)
    return (
        Accelerator(
            name=f"gen-{shape}",
            mac_array=MacArray(rows=1, cols=array, macs_per_pe=1, mac_energy_pj=0.1),
            hierarchy=hierarchy,
            stall_overlap=overlap,
        ),
        spatial,
    )


def _random_overlap(
    rng: random.Random, names: List[str], config: GeneratorConfig
) -> StallOverlapConfig:
    if not config.allow_sequential_overlap:
        return StallOverlapConfig.all_concurrent()
    roll = rng.random()
    if roll < 0.6:
        return StallOverlapConfig.all_concurrent()
    if roll < 0.8:
        return StallOverlapConfig.all_sequential(names)
    # Random partition into two groups (either may be empty → concurrent).
    left = frozenset(n for n in names if rng.random() < 0.5)
    right = frozenset(names) - left
    groups = tuple(g for g in (left, right) if g)
    if len(groups) < 2:
        return StallOverlapConfig.all_concurrent()
    return StallOverlapConfig(concurrent_groups=groups)


# --------------------------------------------------------------------------- #
# Layers


_DIM_CHOICES = (1, 2, 3, 4, 6, 8, 12, 16, 24)


def random_layer(
    rng: random.Random,
    config: GeneratorConfig = GeneratorConfig(),
    name: Optional[str] = None,
) -> LayerSpec:
    """A small dense layer whose ideal cycle count stays bounded."""
    bounds = [min(rng.choice(_DIM_CHOICES), config.max_dim) for _ in range(3)]
    # Keep the temporal space small enough for millisecond simulations.
    while bounds[0] * bounds[1] * bounds[2] > config.max_total_cycles:
        bounds[bounds.index(max(bounds))] //= 2
    b, k, c = (max(1, v) for v in bounds)
    if b * k * c == 1:
        k = 2
    return dense_layer(b, k, c, name=name)


# --------------------------------------------------------------------------- #
# Cases


def _mapper_for(
    accelerator: Accelerator,
    spatial: Dict[LoopDim, int],
    config: GeneratorConfig,
    seed: int,
) -> TemporalMapper:
    return TemporalMapper(
        accelerator,
        spatial,
        MapperConfig(
            max_enumerated=config.mapper_enumerated,
            samples=config.mapper_samples,
            seed=seed,
        ),
    )


def case_mappings(
    accelerator: Accelerator,
    spatial: Dict[LoopDim, int],
    layer: LayerSpec,
    config: GeneratorConfig = GeneratorConfig(),
    limit: Optional[int] = None,
    seed: int = 0,
) -> List[Mapping]:
    """The first ``limit`` valid mappings of ``layer`` on the machine.

    Used both when sampling fresh cases and when the shrinker rebuilds a
    mutated machine; the mapper guarantees allocation validity.
    """
    if limit is None:
        limit = config.mappings_per_machine
    mapper = _mapper_for(accelerator, spatial, config, seed)
    out: List[Mapping] = []
    for mapping in mapper.mappings(layer):
        out.append(mapping)
        if len(out) >= limit:
            break
    return out


def generate_case(
    seed: int, index: int, config: GeneratorConfig = GeneratorConfig()
) -> List[Case]:
    """All cases for one ``(seed, index)`` slot (deterministic).

    One random machine and layer, mapped ``mappings_per_machine`` ways.
    Resamples the layer a few times if the mapper finds nothing (tiny
    registers can make even small layers unmappable at zero spatial
    unrolling — rare but possible).
    """
    rng = random.Random(f"repro-verify/{seed}/{index}")
    accelerator, spatial = random_accelerator(rng, config)
    for attempt in range(8):
        layer = random_layer(rng, config, name=f"L{seed}.{index}.{attempt}")
        mappings = case_mappings(
            accelerator, spatial, layer, config, seed=seed
        )
        if mappings:
            return [
                Case(
                    accelerator=accelerator,
                    spatial=tuple(sorted(spatial.items())),
                    layer=layer,
                    mapping=m,
                    case_id=f"s{seed}i{index}m{j}",
                )
                for j, m in enumerate(mappings)
            ]
    return []


def iter_cases(
    seed: int, config: GeneratorConfig = GeneratorConfig()
) -> Iterator[Case]:
    """Endless deterministic case stream for ``seed``."""
    index = 0
    while True:
        yield from generate_case(seed, index, config)
        index += 1


def sample_cases(
    seed: int, count: int, config: GeneratorConfig = GeneratorConfig()
) -> List[Case]:
    """The first ``count`` cases of the seeded stream."""
    out: List[Case] = []
    for case in iter_cases(seed, config):
        out.append(case)
        if len(out) >= count:
            break
    return out
