"""Command-line interface: evaluate, simulate, search and run case studies.

Examples::

    repro-latency evaluate --layer 64,128,1200 --gb-bw 128
    repro-latency evaluate --layer 64,128,1200 --trace --trace-out t.json
    repro-latency simulate --layer 64,128,1200
    repro-latency search --layer 64,128,1200 --samples 500 --top 5
    repro-latency validate --limit 4 --metrics
    repro-latency evaluate --layer 64,128,1200 --ledger runs.sqlite
    repro-latency report --layer 64,128,1200 --html report.html
    repro-latency diff baseline.jsonl runs.sqlite --rel-tol 1e-6
    repro-latency verify --examples 200 --seed 0
    repro-latency serve --port 7421 --ledger serve.sqlite --events serve.jsonl
    repro-latency evaluate --layer 64,128,1200 --engine serve://127.0.0.1:7421

Every subcommand shares one option set (chip selection, mapper budget,
engine workers, observability) declared once on a parent parser;
:func:`build_engine_from_args` turns the parsed options into the
:class:`~repro.engine.Evaluator` all flows evaluate through — an
in-process :class:`~repro.engine.EvaluationEngine`, or (with
``--engine URL``) a :class:`~repro.serve.RemoteEngine` speaking to a
``repro-latency serve`` daemon.
``--ledger PATH`` makes any run append its evaluations to a persistent
:class:`~repro.observability.RunLedger`; ``diff`` compares two ledger
snapshots (or two git SHAs inside one ledger) and exits non-zero when a
latency-model output drifts beyond tolerance — the CI regression gate.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import List, Optional

from repro.dse.mapper import MapperConfig, TemporalMapper
from repro.engine import EvaluationEngine
from repro.hardware.presets import (
    Preset,
    case_study_accelerator,
    inhouse_accelerator,
)
from repro.observability import (
    CampaignRecorder,
    JsonlSink,
    MetricsRegistry,
    MetricsSubscriber,
    NULL_CAMPAIGN,
    NULL_EMITTER,
    NULL_LEDGER,
    NULL_METRICS,
    NULL_TRACER,
    ProgressEmitter,
    RunLedger,
    Tracer,
    current_ledger,
    current_metrics,
    use_campaign,
    use_emitter,
    use_ledger,
    use_metrics,
    use_tracer,
    write_chrome_trace,
)
from repro.observability.progress import console_subscriber
from repro.simulator.engine import CycleSimulator
from repro.simulator.result import accuracy
from repro.workload.generator import dense_layer
from repro.workload.im2col import im2col
from repro.workload.networks import validation_layers


def _parse_layer(text: str):
    parts = [int(p) for p in text.split(",")]
    if len(parts) != 3:
        raise argparse.ArgumentTypeError("layer must be B,K,C (e.g. 64,128,1200)")
    return dense_layer(*parts)


def _preset(args: argparse.Namespace):
    if args.arch:
        from repro.hardware.serde import load_preset

        return load_preset(args.arch)
    if args.chip == "inhouse":
        return inhouse_accelerator()
    return case_study_accelerator(gb_read_bw=args.gb_bw)


def build_engine_from_args(preset, args: argparse.Namespace):
    """The engine every CLI flow evaluates through (one place, not nine).

    Honors ``--workers`` (process fan-out) and ``--engine URL`` (a
    :class:`~repro.serve.RemoteEngine` connected to a running
    ``repro-latency serve`` daemon; the URL wins over ``--workers``).
    Subcommand handlers must route all evaluations through the returned
    engine so ``--stats``/``--metrics`` see the whole run.
    """
    url = getattr(args, "engine", None)
    if url:
        from repro.serve.client import RemoteEngine

        return RemoteEngine(url)
    return EvaluationEngine.from_preset(preset, workers=args.workers)


def _mapper(preset, args: argparse.Namespace) -> TemporalMapper:
    config = MapperConfig(max_enumerated=args.enumerate, samples=args.samples)
    engine = build_engine_from_args(preset, args)
    if getattr(args, "engine", None):
        # Remote engine: search the served machine, not the local --chip.
        preset = Preset(
            accelerator=engine.accelerator,
            spatial_unrolling=dict(engine.spatial_unrolling),
        )
    return TemporalMapper(
        preset.accelerator,
        preset.spatial_unrolling,
        config,
        engine=engine,
    )

def _finish(engine: EvaluationEngine, args: argparse.Namespace) -> int:
    if args.stats:
        print(engine.stats.summary())
    current_metrics().ingest("repro_engine", engine.stats.snapshot())
    engine.close()
    return 0


def _traced_report(mapper: TemporalMapper, best):
    """Re-emit the winning mapping's span tree after a search.

    A search traces every candidate; the *last* ``model.evaluate`` span
    would otherwise belong to an arbitrary loser. One extra kernel run
    (cache-bypassing, validation off) appends the winner's spans last, so
    trace consumers — ``reconcile_ss_overall`` above all — read the same
    numbers the report prints.
    """
    from repro.core.model import LatencyModel

    model = LatencyModel(mapper.accelerator, mapper.engine.options)
    model.evaluate(best.mapping, validate=False)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    preset = _preset(args)
    mapper = _mapper(preset, args)
    best = mapper.best_mapping(args.layer)
    if _ambient_tracer_enabled():
        _traced_report(mapper, best)
    print(best.mapping.describe())
    print(best.report.summary())
    energy = mapper.engine.evaluate_energy(best.mapping)
    print(energy.summary())
    return _finish(mapper.engine, args)


def _cmd_simulate(args: argparse.Namespace) -> int:
    preset = _preset(args)
    mapper = _mapper(preset, args)
    best = mapper.best_mapping(args.layer)
    print(best.report.summary())
    sim = CycleSimulator(preset.accelerator, best.mapping).run()
    print(sim.summary())
    print(f"model-vs-simulator accuracy: {accuracy(best.report.total_cycles, sim.total_cycles):.1%}")
    return _finish(mapper.engine, args)


def _cmd_search(args: argparse.Namespace) -> int:
    preset = _preset(args)
    mapper = _mapper(preset, args)
    results = mapper.search(args.layer)
    print(f"mapping space: {mapper.space_size(args.layer)} orders; showing top {args.top}")
    for result in results[: args.top]:
        print("  " + result.describe())
    return _finish(mapper.engine, args)


def _cmd_validate(args: argparse.Namespace) -> int:
    preset = _preset(args)
    mapper = _mapper(preset, args)
    layers = validation_layers()[: args.limit]
    accs: List[float] = []
    for layer in layers:
        lowered = im2col(layer)
        best = mapper.best_mapping(lowered)
        sim = CycleSimulator(preset.accelerator, best.mapping).run()
        acc = accuracy(best.report.total_cycles, sim.total_cycles)
        accs.append(acc)
        print(
            f"{layer.name or '?':8s} model {best.report.total_cycles:10.0f}  "
            f"sim {sim.total_cycles:10.0f}  accuracy {acc:6.1%}"
        )
    print(f"average accuracy: {sum(accs) / len(accs):.1%}")
    return _finish(mapper.engine, args)


def _cmd_network(args: argparse.Namespace) -> int:
    from repro.analysis.export import to_csv
    from repro.analysis.network import NetworkEvaluator
    from repro.dse.mapper import MapperConfig as _MC
    from repro.workload.networks import (
        hand_tracking_layers,
        resnet18_layers,
        transformer_gemm_layers,
    )

    preset = _preset(args)
    zoo = {
        "handtracking": lambda: hand_tracking_layers(limit=args.limit),
        "resnet18": lambda: resnet18_layers()[: args.limit],
        "transformer": lambda: transformer_gemm_layers()[: args.limit],
    }
    layers = zoo[args.network]()
    evaluator = NetworkEvaluator(
        preset,
        mapper_config=_MC(max_enumerated=args.enumerate, samples=args.samples),
        with_energy=True,
        engine=build_engine_from_args(preset, args),
    )
    result = evaluator.evaluate(layers)
    print(result.summary())
    if args.csv:
        to_csv(evaluator.layer_table(result), args.csv)
        print(f"per-layer table written to {args.csv}")
    return _finish(evaluator.engine, args)


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.core.sensitivity import SensitivityAnalyzer

    preset = _preset(args)
    analyzer = SensitivityAnalyzer(
        preset.accelerator,
        preset.spatial_unrolling,
        engine=build_engine_from_args(preset, args),
    )
    bandwidths = [float(b) for b in args.bandwidths.split(",")]
    curve = analyzer.bandwidth_sweep(args.layer, args.memory, bandwidths)
    print(f"{args.memory} bandwidth sweep for {args.layer.describe()}:")
    for p in curve.points:
        print(f"  {p.value:8.0f} b/cyc -> {p.total_cycles:10.0f} cc "
              f"(stall {p.ss_overall:9.0f}, U {p.utilization:6.1%})")
    knee = curve.knee()
    if knee is not None:
        print(f"knee: {knee.value:.0f} b/cyc (within 2% of best latency)")
    bound = curve.compute_bound_from()
    if bound is not None:
        print(f"compute-bound from: {bound:.0f} b/cyc")
    return _finish(analyzer.engine, args)


def _cmd_advise(args: argparse.Namespace) -> int:
    from repro.core.advisor import UpgradeAdvisor
    from repro.dse.mapper import MapperConfig as _MC

    preset = _preset(args)
    advisor = UpgradeAdvisor(
        preset.accelerator, preset.spatial_unrolling,
        _MC(max_enumerated=args.enumerate, samples=args.samples),
    )
    options = advisor.advise(args.layer)
    if not options:
        print("no single-knob upgrade saves >= 1% latency — the design is "
              "balanced for this layer.")
        return 0
    print(f"ranked single-knob upgrades for {args.layer.describe()}:")
    for option in options[: args.top]:
        print("  " + option.describe())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.summary import ReportConfig, generate_report
    from repro.dse.mapper import MapperConfig as _MC

    preset = _preset(args)
    if args.html:
        return _cmd_report_html(preset, args)
    config = ReportConfig(
        mapper_config=_MC(max_enumerated=args.enumerate, samples=args.samples),
        simulate=args.with_simulator,
    )
    text = generate_report(preset, args.layer, config)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_report_html(preset, args: argparse.Namespace) -> int:
    """`report --html`: traced evaluation -> self-contained HTML file.

    Reuses the ambient tracer when ``--trace`` installed one (so
    ``--trace-out`` still gets the same spans); otherwise runs under a
    local tracer. The winner is re-traced last (see
    :func:`_traced_report`) so the report's stall waterfall reconciles
    with the printed numbers, and the ambient ledger — populated by this
    very run when ``--ledger`` is given — supplies the trajectory.
    """
    from repro.observability import current_tracer, write_report

    ambient = current_tracer()
    tracer = ambient if ambient.enabled else Tracer()
    scope = nullcontext() if ambient.enabled else use_tracer(tracer)
    mapper = _mapper(preset, args)
    with scope:
        best = mapper.best_mapping(args.layer)
        _traced_report(mapper, best)
        if args.with_simulator:
            CycleSimulator(preset.accelerator, best.mapping).run()
    print(best.report.summary())
    ledger = current_ledger()
    write_report(
        args.html,
        tracer.records,
        ledger.records(),
        title=f"{args.layer.describe()} on {preset.accelerator.name}",
    )
    print(f"HTML report written to {args.html}")
    return _finish(mapper.engine, args)


def _cmd_diff(args: argparse.Namespace) -> int:
    """Compare two ledger snapshots; non-zero exit on model drift."""
    from repro.observability.ledger import diff_records, load_snapshot

    if args.candidate is None and not (args.baseline_sha or args.candidate_sha):
        print("diff: need a CANDIDATE snapshot or --baseline-sha/--candidate-sha "
              "filters to compare within one ledger", file=sys.stderr)
        return 2
    baseline = load_snapshot(args.baseline, sha=args.baseline_sha)
    candidate_path = args.candidate or args.baseline
    candidate = load_snapshot(candidate_path, sha=args.candidate_sha)
    print(f"baseline : {len(baseline)} record(s) from {args.baseline}"
          + (f" @ {args.baseline_sha}" if args.baseline_sha else ""))
    print(f"candidate: {len(candidate)} record(s) from {candidate_path}"
          + (f" @ {args.candidate_sha}" if args.candidate_sha else ""))
    diff = diff_records(
        baseline,
        candidate,
        rel_tol=args.rel_tol,
        abs_tol=args.abs_tol,
        strict_keys=args.strict_keys,
    )
    print(diff.describe(changed_only=not args.show_all))
    if diff.clean:
        return 0
    if args.warn_only:
        print("diff: drift detected, but --warn-only requested -> exit 0")
        return 0
    return 1


def _cmd_verify(args: argparse.Namespace) -> int:
    """Property-based differential verification (model vs simulator)."""
    import pathlib

    from repro.verify import run_verification
    from repro.verify.runner import write_artifacts

    summary = run_verification(
        examples=args.examples,
        seed=args.seed,
        corpus_dir=pathlib.Path(args.corpus) if args.corpus else None,
        corpus_only=args.corpus_only,
        shrink=not args.no_shrink,
        backend=args.backend,
    )
    total = len(summary.violations) + len(summary.corpus_violations)
    print(
        f"verify: seed={summary.seed} backend={summary.backend} "
        f"{summary.cases_checked} generated + {summary.corpus_cases} corpus "
        f"case(s), {total} violation(s) in {summary.wall_time_s:.1f}s"
    )
    written = write_artifacts(
        summary,
        report_path=pathlib.Path(args.report) if args.report else None,
        artifact_dir=pathlib.Path(args.artifacts) if args.artifacts else None,
    )
    for path in written:
        print(f"  wrote {path}")
    if summary.ok:
        return 0
    for failure in summary.failures:
        print()
        print(failure.describe())
    return 1


def _cmd_arch_search(args: argparse.Namespace) -> int:
    """Case-study-3 sweep from the command line (the long-running flow
    the live event stream exists for — pair with ``--events`` + ``top``)."""
    from repro.dse.arch_search import ArchSearch, ArchSearchConfig
    from repro.dse.mapper import MapperConfig as _MC
    from repro.hardware.pool import MemoryPool
    from repro.hardware.presets import array_scales

    scales = array_scales()
    if args.arrays:
        wanted = [a.strip() for a in args.arrays.split(",")]
        unknown = [a for a in wanted if a not in scales]
        if unknown:
            print(
                f"arch-search: unknown array label(s) {', '.join(unknown)} "
                f"(choose from {', '.join(scales)})",
                file=sys.stderr,
            )
            return 2
        scales = {label: scales[label] for label in wanted}
    pool = MemoryPool() if args.full_pool else MemoryPool.small()
    config = ArchSearchConfig(
        array_scales=scales,
        pool=pool,
        gb_bandwidths=tuple(float(b) for b in args.gb_bandwidths.split(",")),
        mapper_config=_MC(
            max_enumerated=args.enumerate, samples=args.samples, keep_top=1
        ),
    )
    search = ArchSearch(config)
    if args.workers:
        # Seed the engine lineage from the first design point so the
        # whole sweep shares one process pool (derive() keeps it).
        first = next(search.design_points(), None)
        if first is not None:
            search.engine = EvaluationEngine.from_preset(
                first[3], config.mapper_config.model_options,
                workers=args.workers,
            )
    print(f"arch-search: {search.space_size()} design point(s) "
          f"({len(scales)} array(s) x {len(pool)} memory config(s) x "
          f"{len(config.gb_bandwidths)} bandwidth(s))")
    points = search.evaluate(args.layer)
    print(f"mappable: {len(points)} point(s)")
    for label, best in sorted(ArchSearch.best_per_array(points).items()):
        print(f"  {label:8s} best {best.latency:12.0f} cc "
              f"@ {best.area_mm2:7.3f} mm^2  ({best.accelerator_name})")
    front = ArchSearch.front(points)
    front.sort(key=lambda p: p.area_mm2)
    print(f"pareto front: {len(front)} point(s)")
    for p in front[: args.top]:
        print(f"  {p.array_label:6s} {p.candidate.label():32s} "
              f"{p.area_mm2:7.3f} mm^2 -> {p.latency:9.0f} cc")
    if search.engine is None:
        return 0
    return _finish(search.engine, args)


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Inspect, compare and gate campaign rows in ledger snapshots."""
    from repro.observability.campaign import (
        campaign_records,
        compare_campaigns,
        gate_campaigns,
        phase_records,
        select_campaign,
    )
    from repro.observability.ledger import load_snapshot

    if args.campaign_command == "list":
        rows = campaign_records(load_snapshot(args.snapshot))
        if not rows:
            print(f"no campaign rows in {args.snapshot}")
            return 1
        for row in rows:
            extra = row.extra
            state = "partial" if extra.get("partial") else "complete"
            best = extra.get("best_objective")
            best_text = f"{best:g}" if isinstance(best, (int, float)) else "-"
            print(f"  {row.label:24s} {state:8s} best {best_text:>12s}  "
                  f"enumerated {extra.get('enumerated', 0):g}  "
                  f"scored {extra.get('scored', 0):g}  @ {row.git_sha}")
        return 0

    if args.campaign_command == "show":
        records = load_snapshot(args.snapshot)
        summary = select_campaign(records, args.name)
        if summary is None:
            print("campaign show: no campaign row"
                  + (f" named {args.name!r}" if args.name else "")
                  + f" in {args.snapshot}", file=sys.stderr)
            return 2
        phases = phase_records(records, summary.label)
        extra = summary.extra
        state = "partial" if extra.get("partial") else "complete"
        best = extra.get("best_objective")
        best_text = f"{best:g}" if isinstance(best, (int, float)) else "n/a"
        print(f"campaign {summary.label!r} ({state}) @ {summary.git_sha}")
        print(f"  best objective : {best_text}")
        print(f"  observed       : {extra.get('observed', 0):g} "
              f"({extra.get('improvements', 0):g} improvement(s), "
              f"rate {extra.get('improvement_rate', 0.0):.2%})")
        print(f"  funnel         : enumerated {extra.get('enumerated', 0):g} "
              f"= deduped {extra.get('deduped', 0):g} "
              f"+ cache {extra.get('cache_hits', 0):g} "
              f"+ evaluated {extra.get('evaluated', 0):g} "
              f"+ invalid {extra.get('invalid', 0):g} "
              f"+ dominated {extra.get('dominated', 0):g} "
              f"[{'conserved' if extra.get('conserved') else 'NOT conserved'}]")
        for phase in phases:
            tags = ", ".join(
                f"{key[4:]}={phase.extra[key]:g}"
                for key in sorted(phase.extra) if key.startswith("tag.")
            )
            print(f"  phase {phase.label:16s} "
                  f"enumerated {phase.extra.get('enumerated', 0):g} "
                  f"scored {phase.extra.get('scored', 0):g}"
                  + (f"  ({tags})" if tags else ""))
        if args.html:
            from repro.observability.report import write_campaign_report

            write_campaign_report(args.html, summary, phases)
            print(f"campaign report written to {args.html}")
        return 0

    if args.campaign_command == "compare":
        baseline = select_campaign(load_snapshot(args.baseline), args.name)
        candidate = select_campaign(load_snapshot(args.candidate), args.name)
        if baseline is None or candidate is None:
            side = "baseline" if baseline is None else "candidate"
            print(f"campaign compare: no campaign row in the {side} snapshot",
                  file=sys.stderr)
            return 2
        for line in compare_campaigns(baseline, candidate):
            print(line)
        return 0

    # gate
    result = gate_campaigns(
        load_snapshot(args.baseline),
        load_snapshot(args.candidate),
        name=args.name,
        rel_tol=args.rel_tol,
        coverage_floor=args.coverage_floor,
    )
    for line in result.lines:
        print(line)
    if result.code and args.warn_only:
        print("campaign gate: regression detected, but --warn-only "
              "requested -> exit 0")
        return 0
    return result.code


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the sharded evaluation daemon (see ``docs/SERVICE.md``).

    Runs until SIGINT/SIGTERM or a client ``shutdown`` frame, then
    drains: queued requests get clean errors, in-flight evaluations
    finish, and an interrupt leaves a ``kind="interrupted"`` ledger row
    (plus exit code 130, like every other interrupted flow).
    """
    import asyncio

    from repro.observability.progress import current_emitter
    from repro.serve import EvaluationServer, ServerConfig

    preset = _preset(args)
    ledger = current_ledger()
    emitter = current_emitter()
    config = ServerConfig(
        preset=preset,
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        shards=args.shards,
        queue_depth=args.queue_depth,
        ledger=ledger if ledger.enabled else None,
        warm_start=tuple(args.warm_start or ()),
        emitter=emitter if emitter.enabled else None,
        admin_port=args.admin_port,
        slow_ms=args.slow_ms,
        flight_path=args.flight_out,
    )
    server = EvaluationServer(config)

    def _on_ready(url: str) -> None:
        admin = f", admin {server.admin.url}" if server.admin else ""
        print(
            f"serving {preset.accelerator.name} on {url} "
            f"({config.shards} shard(s), "
            f"{server.store.warm_rows} warm row(s){admin})",
            flush=True,
        )

    interrupted = asyncio.run(server.run(
        ready_file=args.ready_file,
        on_ready=_on_ready,
    ))
    stats = server.stats_snapshot()
    print(
        f"serve: {int(stats['requests'])} request(s), "
        f"{int(stats['evaluations'])} evaluated, "
        f"{int(stats['coalesced'])} coalesced, "
        f"{int(stats['warm_hits'])} warm / {int(stats['store_hits'])} "
        f"store hit(s)"
    )
    return 130 if interrupted else 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Render the live dashboard from an events.jsonl recording."""
    from repro.observability.top import run_top

    footer = None
    engine = None
    if args.engine:
        from repro.serve.client import connect

        engine = connect(args.engine, use_cache=False)

        def footer() -> str:
            try:
                return engine.remote_stats().summary()
            except Exception as exc:  # daemon may drain mid-follow
                return f"remote: unavailable ({exc})"

    try:
        return run_top(
            args.events_file,
            follow=args.follow,
            plain=not args.live,
            poll_s=args.interval,
            max_polls=args.max_polls,
            footer=footer,
        )
    finally:
        if engine is not None:
            engine.close()


def _cmd_export_arch(args: argparse.Namespace) -> int:
    from repro.hardware.serde import save_preset

    preset = _preset(args)
    save_preset(preset, args.out)
    print(f"{preset.accelerator.name} written to {args.out}")
    return 0


def _common_options() -> argparse.ArgumentParser:
    """The options every subcommand shares, declared exactly once."""
    common = argparse.ArgumentParser(add_help=False)
    machine = common.add_argument_group("machine")
    machine.add_argument("--chip", choices=("case-study", "inhouse"),
                         default="case-study")
    machine.add_argument("--arch", default=None,
                         help="JSON accelerator description (overrides --chip)")
    machine.add_argument("--gb-bw", type=float, default=128.0,
                         help="GB read/write bandwidth in bits/cycle "
                              "(case-study chip)")
    search = common.add_argument_group("search budget")
    search.add_argument("--enumerate", type=int, default=500,
                        help="exhaustive enumeration cap for the mapper")
    search.add_argument("--samples", type=int, default=400,
                        help="sampled loop orders above the cap")
    search.add_argument("--top", type=int, default=5)
    search.add_argument("--limit", type=int, default=6,
                        help="layer-count limit (validate / network)")
    engine = common.add_argument_group("engine")
    engine.add_argument("--workers", type=int, default=0,
                        help="evaluate mapper batches on this many worker "
                             "processes (0 = in-process serial)")
    engine.add_argument("--engine", default=None, metavar="URL",
                        help="evaluate against a running 'repro-latency "
                             "serve' daemon instead of in-process "
                             "(serve://host:port or unix:///path.sock; "
                             "overrides --workers, and the search runs "
                             "on the served machine)")
    obs = common.add_argument_group("observability")
    obs.add_argument("--stats", action="store_true",
                     help="print engine statistics (evaluations, cache "
                          "hit rate, phase timings) on exit")
    obs.add_argument("--trace", action="store_true",
                     help="record hierarchical spans for the whole run")
    obs.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write the spans as Chrome trace-event JSON "
                          "(open in chrome://tracing or Perfetto); "
                          "implies --trace")
    obs.add_argument("--metrics", action="store_true",
                     help="collect a metrics registry and print it in "
                          "Prometheus text format on exit")
    obs.add_argument("--ledger", default=None, metavar="FILE",
                     help="append every evaluation of this run to a "
                          "persistent SQLite run ledger (created/migrated "
                          "on first use; diff snapshots with "
                          "'repro-latency diff')")
    obs.add_argument("--events", default=None, metavar="FILE",
                     help="stream typed progress events (run lifecycle, "
                          "per-chunk throughput/ETA, worker heartbeats, "
                          "best-so-far, cache stats) to this JSONL file; "
                          "watch it live with 'repro-latency top FILE "
                          "--follow'")
    obs.add_argument("--campaign", default=None, metavar="NAME",
                     help="record this run as a named search campaign: "
                          "candidate-funnel accounting with pruning "
                          "provenance, convergence telemetry and Pareto "
                          "snapshots; persisted to --ledger as "
                          "kind=\"campaign\" rows (inspect with "
                          "'repro-latency campaign')")
    return common


def build_parser() -> argparse.ArgumentParser:
    """The repro-latency argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-latency",
        description="Uniform intra-layer latency model for DNN accelerators "
        "(DATE 2022 reproduction).",
    )
    common = _common_options()
    sub = parser.add_subparsers(dest="command", required=True)
    for name, func, needs_layer in (
        ("evaluate", _cmd_evaluate, True),
        ("simulate", _cmd_simulate, True),
        ("search", _cmd_search, True),
        ("validate", _cmd_validate, False),
        ("network", _cmd_network, False),
        ("sensitivity", _cmd_sensitivity, True),
        ("report", _cmd_report, True),
        ("advise", _cmd_advise, True),
        ("arch-search", _cmd_arch_search, True),
        ("export-arch", _cmd_export_arch, False),
    ):
        p = sub.add_parser(name, parents=[common])
        p.set_defaults(func=func)
        if needs_layer:
            p.add_argument("--layer", type=_parse_layer, required=True,
                           help="Dense layer as B,K,C")
        if name == "network":
            p.add_argument("--network",
                           choices=("handtracking", "resnet18", "transformer"),
                           default="handtracking")
            p.add_argument("--csv", default=None,
                           help="write the per-layer table to this CSV file")
        if name == "sensitivity":
            p.add_argument("--memory", default="GB",
                           help="memory whose port bandwidth is swept")
            p.add_argument("--bandwidths",
                           default="64,128,256,512,1024,2048",
                           help="comma-separated bits/cycle values")
        if name == "report":
            p.add_argument("--out", default=None, help="write markdown here")
            p.add_argument("--html", default=None, metavar="FILE",
                           help="render a self-contained HTML report "
                                "(stall waterfall, CC breakdown, ledger "
                                "trajectory) instead of markdown")
            p.add_argument("--with-simulator", action="store_true",
                           help="include a simulator cross-check section")
        if name == "arch-search":
            p.add_argument("--arrays", default=None,
                           help="comma-separated MAC-array labels to sweep "
                                "(default: all preset scales)")
            p.add_argument("--gb-bandwidths", default="128",
                           help="comma-separated GB bandwidths in bits/cycle")
            p.add_argument("--full-pool", action="store_true",
                           help="sweep the full memory pool instead of the "
                                "reduced smoke pool")
        if name == "export-arch":
            p.add_argument("--out", required=True, help="output JSON path")

    # Standalone like `diff` — sharing the parent parser would also share
    # its --ledger action object, and overriding the default here would
    # leak the override into every other subcommand.
    verify = sub.add_parser(
        "verify",
        help="property-based differential verification: random machines "
             "and mappings, model-vs-simulator oracle, shrunk "
             "counterexamples; non-zero exit on any violation",
    )
    verify.set_defaults(func=_cmd_verify)
    verify.add_argument("--ledger", default="verify-ledger.sqlite",
                        metavar="FILE",
                        help="run ledger receiving one kind=\"verify\" row "
                             "per run (a verification is a regression "
                             "gate, so it is recorded by default)")
    verify.add_argument("--examples", type=int, default=200,
                        help="number of generated cases to check")
    verify.add_argument("--backend", choices=("event", "rtl", "both"),
                        default="event",
                        help="simulator backend(s) for the differential "
                             "oracles: the event engine, the register-"
                             "stage-accurate RTL backend, or both (which "
                             "also arms the three-way sim-vs-sim "
                             "agreement property)")
    verify.add_argument("--seed", type=int, default=0,
                        help="generator seed (same seed -> same cases)")
    verify.add_argument("--corpus", default="tests/verify/corpus",
                        help="regression-corpus directory to replay "
                             "(missing directory -> zero corpus cases)")
    verify.add_argument("--corpus-only", action="store_true",
                        help="replay the corpus only; generate nothing")
    verify.add_argument("--no-shrink", action="store_true",
                        help="skip counterexample minimisation on failure")
    verify.add_argument("--report", default=None, metavar="FILE",
                        help="write a JSON run report here")
    verify.add_argument("--artifacts", default=None, metavar="DIR",
                        help="write shrunk counterexamples (corpus-ready "
                             "JSON + text report) into this directory")
    verify.add_argument("--events", default=None, metavar="FILE",
                        help="stream progress events of the run to this "
                             "JSONL file (same stream as the search flows)")

    serve = sub.add_parser(
        "serve",
        help="boot the sharded evaluation daemon: line-framed JSON over "
             "TCP or a Unix socket, request coalescing, a persistent "
             "result store warm-started from prior ledgers; clients "
             "connect with --engine serve://host:port",
    )
    serve.set_defaults(func=_cmd_serve)
    serve.add_argument("--chip", choices=("case-study", "inhouse"),
                       default="case-study")
    serve.add_argument("--arch", default=None,
                       help="JSON accelerator description (overrides --chip)")
    serve.add_argument("--gb-bw", type=float, default=128.0,
                       help="GB read/write bandwidth in bits/cycle "
                            "(case-study chip)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP bind address")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = ephemeral; see --ready-file)")
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="serve on a Unix socket instead of TCP")
    serve.add_argument("--shards", type=int, default=2,
                       help="engine shards (single-thread workers; "
                            "requests route by mapping fingerprint)")
    serve.add_argument("--queue-depth", type=int, default=128,
                       help="bounded per-shard queue length (backpressure)")
    serve.add_argument("--warm-start", action="append", default=None,
                       metavar="SNAPSHOT",
                       help="ledger snapshot (SQLite or JSONL) whose "
                            "evaluations seed the result store; repeatable")
    serve.add_argument("--ready-file", default=None, metavar="FILE",
                       help="write the bound endpoint URL here as JSON "
                            "once listening (scripts wait on this)")
    serve.add_argument("--ledger", default=None, metavar="FILE",
                       help="append every evaluation to this run ledger "
                            "(the store's persistence; also a future "
                            "--warm-start source)")
    serve.add_argument("--admin-port", type=int, default=None, metavar="PORT",
                       help="also serve an HTTP admin surface (/metrics, "
                            "/healthz, /readyz, /statusz) on this port "
                            "(0 = ephemeral, reported at startup)")
    serve.add_argument("--slow-ms", type=float, default=None, metavar="MS",
                       help="log requests slower than MS ms to the ledger "
                            "(kind=slow_request), the progress stream and "
                            "/statusz")
    serve.add_argument("--flight-out", default=None, metavar="FILE",
                       help="flight-recorder dump path: written on SIGQUIT, "
                            "drain, first server-side error, or "
                            "/statusz?dump=1")
    serve.add_argument("--events", default=None, metavar="FILE",
                       help="stream the daemon's health plane (one "
                            "flow=serve run: per-evaluation progress, "
                            "cache stats) to this JSONL file; watch with "
                            "'repro-latency top FILE --follow'")

    top = sub.add_parser(
        "top",
        help="terminal dashboard over a progress-event recording: per-run "
             "throughput/ETA, worker liveness, best-so-far, cache stats; "
             "--follow tails a file a live run is still writing",
    )
    top.set_defaults(func=_cmd_top)
    top.add_argument("events_file", metavar="EVENTS",
                     help="events.jsonl written by a run's --events flag")
    top.add_argument("--follow", action="store_true",
                     help="keep tailing the file until every run closes")
    top.add_argument("--interval", type=float, default=0.5, metavar="S",
                     help="poll interval in seconds when following")
    top.add_argument("--max-polls", type=int, default=None, metavar="N",
                     help="stop following after N polls (smoke runs)")
    top.add_argument("--engine", default=None, metavar="URL",
                     help="also poll a running daemon "
                          "(serve://host:port or unix:///path.sock) and "
                          "append its live counters as a footer line")
    top.add_argument("--live", action="store_true",
                     help="repaint the screen in place while following "
                          "(default: append deterministic plain text)")

    diff = sub.add_parser(
        "diff",
        help="compare two run-ledger snapshots (SQLite or JSONL); "
             "non-zero exit when a latency-model output drifts",
    )
    diff.set_defaults(func=_cmd_diff)
    diff.add_argument("baseline", help="baseline snapshot (.sqlite or .jsonl)")
    diff.add_argument("candidate", nargs="?", default=None,
                      help="candidate snapshot; omit to compare two SHAs "
                           "inside the baseline ledger")
    diff.add_argument("--baseline-sha", default=None,
                      help="only baseline records from this git SHA")
    diff.add_argument("--candidate-sha", default=None,
                      help="only candidate records from this git SHA")
    diff.add_argument("--rel-tol", type=float, default=1e-9,
                      help="relative drift tolerance per metric")
    diff.add_argument("--abs-tol", type=float, default=1e-6,
                      help="absolute drift tolerance (guards zero-baseline "
                           "metrics)")
    diff.add_argument("--strict-keys", action="store_true",
                      help="a key missing from the candidate fails the gate")
    diff.add_argument("--warn-only", action="store_true",
                      help="report drift but always exit 0 (CI soft gate)")
    diff.add_argument("--show-all", action="store_true",
                      help="print unchanged metrics too")

    campaign = sub.add_parser(
        "campaign",
        help="inspect, compare and gate kind=\"campaign\" ledger rows "
             "written by runs started with --campaign NAME: candidate "
             "funnel with pruning provenance, convergence trajectory, "
             "Pareto evolution, and a search-quality regression gate",
    )
    campaign.set_defaults(func=_cmd_campaign)
    campaign_sub = campaign.add_subparsers(
        dest="campaign_command", required=True
    )
    c_list = campaign_sub.add_parser(
        "list", help="list every campaign row in a ledger snapshot"
    )
    c_list.add_argument("snapshot", help="ledger snapshot (.sqlite or .jsonl)")
    c_show = campaign_sub.add_parser(
        "show",
        help="print one campaign's funnel, convergence and per-phase "
             "provenance; --html renders the self-contained report",
    )
    c_show.add_argument("snapshot", help="ledger snapshot (.sqlite or .jsonl)")
    c_show.add_argument("--name", default=None,
                        help="campaign name (default: the latest row)")
    c_show.add_argument("--html", default=None, metavar="FILE",
                        help="write the self-contained HTML campaign report "
                             "(funnel waterfall, convergence curve, Pareto "
                             "evolution) here")
    c_compare = campaign_sub.add_parser(
        "compare", help="print deltas between two snapshots' campaign rows"
    )
    c_compare.add_argument("baseline", help="baseline snapshot")
    c_compare.add_argument("candidate", help="candidate snapshot")
    c_compare.add_argument("--name", default=None,
                           help="campaign name (default: latest per side)")
    c_gate = campaign_sub.add_parser(
        "gate",
        help="search-quality regression gate: exit 1 when the candidate "
             "campaign's best objective regresses beyond --rel-tol or its "
             "scored coverage collapses below --coverage-floor x baseline; "
             "exit 2 when either snapshot has no campaign row",
    )
    c_gate.add_argument("baseline", help="baseline snapshot")
    c_gate.add_argument("candidate", help="candidate snapshot")
    c_gate.add_argument("--name", default=None,
                        help="campaign name (default: latest per side)")
    c_gate.add_argument("--rel-tol", type=float, default=0.01,
                        help="tolerated relative best-objective regression")
    c_gate.add_argument("--coverage-floor", type=float, default=0.5,
                        help="minimum candidate scored count as a fraction "
                             "of the baseline's")
    c_gate.add_argument("--warn-only", action="store_true",
                        help="report regressions but always exit 0 "
                             "(CI soft gate)")
    return parser


def _ambient_tracer_enabled() -> bool:
    from repro.observability import current_tracer

    return current_tracer().enabled


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse, install observability, dispatch, export.

    ``--events FILE`` installs a :class:`ProgressEmitter` streaming to a
    JSONL sink (plus notable-event console lines, and metrics-registry
    mirroring under ``--metrics``). A ``KeyboardInterrupt`` anywhere in a
    subcommand exits 130 after the flows have checkpointed: workers
    drained, partial ledger rows plus a ``kind="interrupted"`` row
    flushed, and a ``RunInterrupted`` event on the stream.
    """
    args = build_parser().parse_args(argv)
    want_trace = getattr(args, "trace", False) or getattr(args, "trace_out", None)
    tracer = Tracer() if want_trace else NULL_TRACER
    registry = MetricsRegistry() if getattr(args, "metrics", False) else NULL_METRICS
    ledger_path = getattr(args, "ledger", None)
    ledger = RunLedger(ledger_path) if ledger_path else NULL_LEDGER
    events_path = getattr(args, "events", None)
    emitter = NULL_EMITTER
    if events_path:
        emitter = ProgressEmitter()
        emitter.subscribe(JsonlSink(events_path))
        emitter.subscribe(console_subscriber(print))
        if registry.enabled:
            emitter.subscribe(MetricsSubscriber(registry))
    campaign_name = getattr(args, "campaign", None)
    campaign = CampaignRecorder(campaign_name) if campaign_name \
        else NULL_CAMPAIGN

    interrupted = False
    try:
        with use_tracer(tracer), use_metrics(registry), use_ledger(ledger), \
                use_emitter(emitter), use_campaign(campaign):
            try:
                code = args.func(args)
            except KeyboardInterrupt:
                # Caught inside the ambient scopes so the campaign can
                # finish (convergence/funnel events) and flush its partial
                # rows alongside the flow's own kind="interrupted" row.
                # Flows that already checkpointed the campaign in their
                # handler make the flush here a no-op (idempotent).
                interrupted = True
                code = 130
            finally:
                if campaign.enabled:
                    campaign.finish(partial=interrupted)
                    campaign.flush_to(ledger, partial=interrupted)
                    print(campaign.summary_line())
    finally:
        if ledger.enabled:
            print(f"ledger: {len(ledger)} record(s) in {ledger_path}")
        ledger.close()
        emitter.close()
    if interrupted:
        print("interrupted: partial results checkpointed"
              + (f"; events in {events_path}" if events_path else "")
              + (f"; ledger rows in {ledger_path}" if ledger_path else ""),
              file=sys.stderr)

    if tracer.enabled:
        if args.trace_out:
            write_chrome_trace(tracer.records, args.trace_out)
            print(f"trace: {len(tracer.records)} spans -> {args.trace_out}")
        else:
            _print_span_summary(tracer)
    if registry.enabled:
        sys.stdout.write(registry.to_prometheus())
    return code


def _print_span_summary(tracer: Tracer) -> None:
    """`--trace` without `--trace-out`: per-span-name counts and time."""
    totals: dict = {}
    for record in tracer.records:
        count, micros = totals.get(record.name, (0, 0.0))
        totals[record.name] = (count + 1, micros + record.duration_us)
    print(f"trace: {len(tracer.records)} spans")
    for name in sorted(totals):
        count, micros = totals[name]
        print(f"  {name:24s} x{count:<6d} {micros / 1e3:10.2f} ms")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
