"""The full mapping: layer + spatial + temporal, with validity checks."""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Dict, List

from repro.mapping.footprint import (
    operand_footprint_bits,
    outputs_are_partial_above,
    spatial_replication,
)
from repro.mapping.loop import dim_product
from repro.mapping.spatial import SpatialMapping
from repro.mapping.temporal import TemporalMapping
from repro.workload.dims import ALL_DIMS
from repro.workload.layer import LayerSpec
from repro.workload.operand import Operand

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.accelerator import Accelerator


class MappingError(ValueError):
    """An inconsistent or hardware-infeasible mapping."""


@dataclasses.dataclass(frozen=True)
class Mapping:
    """A complete algorithm-to-hardware mapping of one layer.

    Invariant: for every loop dimension, (product of its temporal loop
    sizes) equals ``ceil(layer bound / spatial unroll)`` — the temporal
    mapping covers exactly the iterations the spatial mapping leaves over.
    """

    layer: LayerSpec
    spatial: SpatialMapping
    temporal: TemporalMapping

    def __post_init__(self) -> None:
        for dim in ALL_DIMS:
            need = self.spatial.temporal_bound(dim, self.layer)
            have = dim_product(self.temporal.loops, dim)
            if need != have:
                raise MappingError(
                    f"temporal loops of {dim} multiply to {have}, expected "
                    f"ceil({self.layer.size(dim)}/{self.spatial.factor(dim)}) = {need}"
                )

    # ------------------------------------------------------------------ #
    # Fig. 1(b) quantities
    # ------------------------------------------------------------------ #

    def ideal_cycles(self, array_size: int) -> float:
        """``CC_ideal = total MAC ops / MAC array size`` (Fig. 1b)."""
        return self.layer.total_macs / array_size

    @property
    def spatial_cycles(self) -> int:
        """``CC_spatial``: cycles with a fully temporally-mapped array."""
        return self.temporal.total_cycles

    def spatial_stall(self, array_size: int) -> float:
        """``CC_spatial - CC_ideal`` (Fig. 1b note)."""
        return self.spatial_cycles - self.ideal_cycles(array_size)

    def spatial_utilization(self, array_size: int) -> float:
        """``U_spatial = CC_ideal / CC_spatial``."""
        return self.ideal_cycles(array_size) / self.spatial_cycles

    # ------------------------------------------------------------------ #

    def footprint_bits(self, operand: Operand, level: int) -> int:
        """``Mem_DATA`` in bits for ``operand`` at ``level``.

        Output tiles in flight below the accumulation loops are stored at
        partial-sum precision.
        """
        partial = operand is Operand.O and outputs_are_partial_above(
            self.layer, self.temporal, level
        )
        return operand_footprint_bits(
            self.layer, operand, self.temporal, self.spatial, level,
            partial_outputs=partial,
        )

    def describe(self) -> str:
        """Multi-line summary: spatial line plus one line per operand."""
        lines = [f"spatial: {self.spatial}"]
        for operand in Operand:
            lines.append(f"{operand}: {self.temporal.describe(operand)}")
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """Stable content hash of (layer, spatial, temporal).

        Equal mappings fingerprint identically regardless of how they were
        built; the evaluation engine combines this with the accelerator's
        fingerprint as its cache key. Memoized (the dataclass is frozen).
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            from repro.fingerprint import memoized_fingerprint, stable_fingerprint

            # Composed hierarchically: the layer and spatial unrolling
            # recur (as the same objects) across every mapping of one
            # search, so their fingerprints are computed once and only
            # the temporal part is canonicalized per mapping.
            cached = stable_fingerprint(
                memoized_fingerprint(self.layer),
                memoized_fingerprint(self.spatial),
                self.temporal,
            )
            object.__setattr__(self, "_fingerprint", cached)
        return cached


def check_capacity(mapping: Mapping, accelerator: "Accelerator") -> List[str]:
    """Capacity violations of ``mapping`` on ``accelerator`` (empty = fits).

    Checks, per memory level, that the summed footprints of the operands it
    serves fit in the mapper-visible capacity (half of physical for
    double-buffered memories, Table I), honoring per-operand capacity
    shares when the level defines them.
    """
    violations: List[str] = []
    hierarchy = accelerator.hierarchy
    for operand in Operand:
        depth = hierarchy.depth(operand)
        if mapping.temporal.num_levels(operand) != depth:
            violations.append(
                f"{operand}: mapping assumes {mapping.temporal.num_levels(operand)} "
                f"levels but {accelerator.name} has {depth}"
            )
    if violations:
        return violations

    demand: Dict[str, int] = {}
    for level_obj in hierarchy.unique_levels():
        total = 0
        for operand in hierarchy.operands_of(level_obj):
            idx = hierarchy.level_index(operand, level_obj)
            if idx == hierarchy.depth(operand) - 1:
                # The outermost level is the operand's data home, backed by
                # off-chip memory — exempt from the on-chip capacity check.
                continue
            bits = mapping.footprint_bits(operand, idx)
            if level_obj.instance.instances > 1:
                bits *= spatial_replication(mapping.layer, operand, mapping.spatial)
            share = level_obj.capacity_share
            if share is not None and operand in share:
                cap = level_obj.capacity_for(operand)
                if bits > cap:
                    violations.append(
                        f"{level_obj.name}/{operand}: needs {bits} b > share {cap} b"
                    )
            total += bits
        demand[level_obj.name] = total
        cap = level_obj.instance.mapper_visible_bits
        if total > cap:
            violations.append(
                f"{level_obj.name}: operands need {total} b > capacity {cap} b"
            )
    return violations


def is_valid(mapping: Mapping, accelerator: "Accelerator") -> bool:
    """True when ``mapping`` fits ``accelerator``'s array and memories."""
    if not mapping.spatial.fits(accelerator.mac_array.size):
        return False
    return not check_capacity(mapping, accelerator)


def utilization_scenario(mapping: Mapping, array_size: int, temporal_stall: float) -> int:
    """Classify into the four Fig. 1(b) scenarios (1-4)."""
    from repro.core.kernels import scenario_code

    return int(
        scenario_code(
            mapping.ideal_cycles(array_size),
            float(mapping.spatial_cycles),
            temporal_stall,
        )
    )
