"""Operand data footprints (``Mem_DATA``) at every memory level.

``Mem_DATA`` (Fig. 2a) is "the product of all the r loops' size (temporal &
spatial) of that operand at current and lower memory levels". Spatial
unrolling always sits below the innermost memory level, so every level
includes the spatial r factors. The input operand's partially-relevant
OX/OY/FX/FY loops enter through the sliding-window extent formula instead
of a plain product.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple

from repro.mapping.loop import Loop
from repro.mapping.spatial import SpatialMapping
from repro.mapping.temporal import TemporalMapping
from repro.workload.dims import LoopDim
from repro.workload.layer import LayerSpec, LayerType
from repro.workload.operand import Operand


def _dim_extent(loops: Iterable[Loop], spatial: SpatialMapping, dim: LoopDim) -> int:
    """Combined temporal x spatial iteration count of ``dim`` in ``loops``."""
    temporal = math.prod(l.size for l in loops if l.dim is dim)
    return temporal * spatial.factor(dim)


def tile_elements(
    layer: LayerSpec,
    operand: Operand,
    loops: Tuple[Loop, ...],
    spatial: SpatialMapping,
) -> int:
    """Elements of ``operand`` covered by ``loops`` (+ all spatial unrolls).

    ``loops`` is the set of temporal loops at and below the level of
    interest; the spatial unrolling is included wholesale since it is below
    every memory level.
    """
    ext = {dim: _dim_extent(loops, spatial, dim) for dim in LoopDim}
    # Clamp to the layer bounds: ceil-induced padding never stores real data.
    for dim in LoopDim:
        ext[dim] = min(ext[dim], layer.size(dim))

    if operand is Operand.W:
        channels = ext[LoopDim.C] if layer.layer_type is not LayerType.DEPTHWISE else 1
        return ext[LoopDim.K] * channels * ext[LoopDim.FX] * ext[LoopDim.FY]
    if operand is Operand.O:
        return ext[LoopDim.B] * ext[LoopDim.K] * ext[LoopDim.OX] * ext[LoopDim.OY]
    # Input: sliding window in x and y.
    ix = layer.input_extent_x(ext[LoopDim.OX], ext[LoopDim.FX])
    iy = layer.input_extent_y(ext[LoopDim.OY], ext[LoopDim.FY])
    if layer.layer_type is LayerType.DEPTHWISE:
        channels = ext[LoopDim.K]
    else:
        channels = ext[LoopDim.C]
    return ext[LoopDim.B] * channels * ix * iy


def operand_footprint_elements(
    layer: LayerSpec,
    operand: Operand,
    temporal: TemporalMapping,
    spatial: SpatialMapping,
    level: int,
) -> int:
    """``Mem_DATA`` in elements for ``operand`` at memory ``level``."""
    loops = temporal.loops_at_or_below(operand, level)
    return tile_elements(layer, operand, loops, spatial)


def operand_footprint_bits(
    layer: LayerSpec,
    operand: Operand,
    temporal: TemporalMapping,
    spatial: SpatialMapping,
    level: int,
    partial_outputs: bool = False,
) -> int:
    """``Mem_DATA`` in bits (psum precision when ``partial_outputs``)."""
    elements = operand_footprint_elements(layer, operand, temporal, spatial, level)
    return elements * layer.precision.of(operand, partial=partial_outputs)


def spatial_replication(layer: LayerSpec, operand: Operand, spatial: SpatialMapping) -> int:
    """Physical duplication factor of ``operand`` across a lane-split level.

    Per-lane register levels (one instance per MAC / accumulator) store a
    private copy of the operand slice; spatial loops *irrelevant* to the
    operand broadcast the same element to several lanes, so the physical
    storage demand is the distinct footprint times the product of the
    operand-irrelevant spatial unroll factors. Single-instance memories
    (buffers) store distinct data once — replication does not apply there.

    Outputs never replicate: spatially-unrolled reduction loops meet in an
    adder tree, not in duplicated accumulators.
    """
    if operand is Operand.O:
        return 1
    factor = 1
    for dim, unroll in spatial.unrolling.items():
        if layer.relevance(operand, dim, pr_as_r=True) == "ir":
            factor *= unroll
    return factor


def outputs_are_partial_above(
    layer: LayerSpec, temporal: TemporalMapping, level: int
) -> bool:
    """Whether output tiles leaving ``level`` still await accumulation.

    True when any output-irrelevant loop (C / FX / FY — the reduction
    loops) is scheduled above ``level`` in the output chain: the tile
    flushed upward is then a partial sum that must come back down later.
    """
    for loop in temporal.loops_above(Operand.O, level):
        if layer.relevance(Operand.O, loop.dim, pr_as_r=True) == "ir":
            return True
    return False
