"""A single (dimension, size) loop — the atom of a mapping."""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable

from repro.workload.dims import LoopDim


@dataclasses.dataclass(frozen=True)
class Loop:
    """One for-loop of a mapping: iterate ``dim`` ``size`` times.

    Loop bounds of 1 are legal but meaningless; mapping constructors drop
    them.
    """

    dim: LoopDim
    size: int

    def __post_init__(self) -> None:
        if not isinstance(self.dim, LoopDim):
            object.__setattr__(self, "dim", LoopDim(self.dim))
        if not isinstance(self.size, int) or self.size < 1:
            raise ValueError(f"loop size must be a positive int, got {self.size!r}")

    def __str__(self) -> str:
        return f"{self.dim}{self.size}"


def loops_product(loops: Iterable[Loop]) -> int:
    """Product of the loop sizes (1 for an empty iterable)."""
    return math.prod(loop.size for loop in loops)


def dim_product(loops: Iterable[Loop], dim: LoopDim) -> int:
    """Product of sizes of the loops iterating ``dim``."""
    return math.prod(loop.size for loop in loops if loop.dim is dim)
