"""Mapping representation ("M" of the AHM space).

A mapping fixes how a layer runs on an accelerator:

* :class:`~repro.mapping.spatial.SpatialMapping` — which loops unroll
  across the MAC array and by how much (e.g. ``K 16 | B 8 | C 2``);
* :class:`~repro.mapping.temporal.TemporalMapping` — the ordered temporal
  loops (innermost first) and, per operand, where the memory-level
  boundaries cut that order;
* :class:`~repro.mapping.mapping.Mapping` — layer + spatial + temporal,
  with the derived quantities of Fig. 1(b) (``CC_ideal``, ``CC_spatial``,
  spatial stall) and validity checks;
* :mod:`~repro.mapping.footprint` — operand data footprints (``Mem_DATA``)
  and residency products used by both the latency core and capacity checks.
"""

from repro.mapping.loop import Loop, loops_product
from repro.mapping.spatial import SpatialMapping
from repro.mapping.temporal import TemporalMapping
from repro.mapping.mapping import Mapping, check_capacity
from repro.mapping.footprint import operand_footprint_bits, operand_footprint_elements
from repro.mapping.stationarity import (
    DataflowClass,
    classify_dataflow,
    operand_residency,
    reuse_factors,
)

__all__ = [
    "DataflowClass",
    "Loop",
    "Mapping",
    "SpatialMapping",
    "TemporalMapping",
    "check_capacity",
    "classify_dataflow",
    "loops_product",
    "operand_footprint_bits",
    "operand_footprint_elements",
    "operand_residency",
    "reuse_factors",
]
