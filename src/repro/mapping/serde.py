"""JSON (de)serialization of mappings.

Promoted out of the verify corpus in PR 7 so the wire protocol of
:mod:`repro.serve` and the regression corpus share one schema (the
corpus delegates here). A mapping dict carries the spatial unrolling,
the temporal loop stack (innermost first, as stored) and the per-operand
cut positions::

    {"spatial": {"K": 16, "B": 8},
     "loops": [["C", 5], ["C", 3], ["B", 2]],
     "cuts": {"W": [1], "I": [], "O": [2]}}

The layer is *not* embedded — a mapping is always deserialized against
an explicitly supplied :class:`~repro.workload.layer.LayerSpec` (see
:func:`mapping_from_dict`), mirroring how :class:`Mapping` itself holds
a layer reference. Round trips preserve ``mapping.fingerprint()``.
"""

from __future__ import annotations

from typing import Dict

from repro.mapping.loop import Loop
from repro.mapping.mapping import Mapping
from repro.mapping.spatial import SpatialMapping
from repro.mapping.temporal import TemporalMapping
from repro.workload.dims import LoopDim
from repro.workload.layer import LayerSpec
from repro.workload.operand import Operand


def mapping_to_dict(mapping: Mapping) -> Dict:
    """Serialize a mapping (sans its layer) to a JSON-compatible dict."""
    return {
        "spatial": {dim.value: f for dim, f in mapping.spatial.unrolling.items()},
        "loops": [[loop.dim.value, loop.size] for loop in mapping.temporal.loops],
        "cuts": {
            op.value: list(cut) for op, cut in mapping.temporal.cuts.items()
        },
    }


def mapping_from_dict(data: Dict, layer: LayerSpec) -> Mapping:
    """Inverse of :func:`mapping_to_dict`, bound to ``layer``."""
    temporal = TemporalMapping(
        loops=tuple(Loop(LoopDim(d), int(s)) for d, s in data["loops"]),
        cuts={Operand(op): tuple(cut) for op, cut in data["cuts"].items()},
    )
    spatial = SpatialMapping({LoopDim(d): int(f) for d, f in data["spatial"].items()})
    return Mapping(layer, spatial, temporal)


__all__ = ["mapping_from_dict", "mapping_to_dict"]
