"""Temporal mapping: ordered loops plus per-operand memory-level cuts.

The temporal mapping is one global loop order (innermost first — the order
in which the MAC array walks the non-spatially-unrolled iterations), and,
for every operand, a partition of that order into its memory levels: the
loops between cut ``l-1`` and cut ``l`` are "allocated to" level ``l``,
meaning level ``l`` is the innermost memory whose tile covers them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.mapping.loop import Loop, loops_product
from repro.workload.layer import LayerSpec
from repro.workload.operand import Operand


@dataclasses.dataclass(frozen=True)
class TemporalMapping:
    """Ordered temporal loops and per-operand level boundaries.

    Parameters
    ----------
    loops:
        Temporal loops, **innermost first**. Size-1 loops are dropped.
    cuts:
        For each operand, the cut positions splitting ``loops`` into that
        operand's memory levels: ``cuts[op]`` has one entry per boundary
        between consecutive levels (``depth - 1`` entries for a chain of
        ``depth`` levels), each an index into ``loops``; loops with index
        ``< cuts[op][0]`` belong to level 0, indices in
        ``[cuts[op][l-1], cuts[op][l])`` to level ``l``, and the rest to the
        outermost level. Cut lists must be non-decreasing.
    """

    loops: Tuple[Loop, ...]
    cuts: Mapping[Operand, Tuple[int, ...]]

    def __post_init__(self) -> None:
        loops = tuple(l if isinstance(l, Loop) else Loop(*l) for l in self.loops)
        loops = tuple(l for l in loops if l.size > 1)
        object.__setattr__(self, "loops", loops)
        cuts: Dict[Operand, Tuple[int, ...]] = {}
        for operand in Operand:
            if operand not in self.cuts:
                raise ValueError(f"temporal mapping missing cuts for {operand}")
            cut = tuple(int(c) for c in self.cuts[operand])
            if any(c < 0 or c > len(loops) for c in cut):
                raise ValueError(
                    f"{operand} cuts {cut} out of range for {len(loops)} loops"
                )
            if list(cut) != sorted(cut):
                raise ValueError(f"{operand} cuts must be non-decreasing, got {cut}")
            cuts[operand] = cut
        object.__setattr__(self, "cuts", cuts)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_level_lists(per_level: Mapping[Operand, Sequence[Sequence[Loop]]]) -> "TemporalMapping":
        """Build from explicit per-operand, per-level loop lists.

        All operands must describe the same global loop order once their
        level lists are concatenated innermost-first; this is validated.
        """
        orders: Dict[Operand, List[Loop]] = {}
        cuts: Dict[Operand, Tuple[int, ...]] = {}
        for operand, levels in per_level.items():
            flat: List[Loop] = []
            cut: List[int] = []
            for level_loops in levels:
                flat.extend(l for l in level_loops if l.size > 1)
                cut.append(len(flat))
            orders[operand] = flat
            cuts[operand] = tuple(cut[:-1])  # last boundary is the end
        reference = None
        for operand, flat in orders.items():
            if reference is None:
                reference = flat
            elif flat != reference:
                raise ValueError(
                    "per-operand level lists disagree on the global loop order: "
                    f"{[str(l) for l in reference]} vs {[str(l) for l in flat]} ({operand})"
                )
        assert reference is not None
        return TemporalMapping(tuple(reference), cuts)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def total_cycles(self) -> int:
        """Product of all temporal loop sizes (= ``CC_spatial``)."""
        return loops_product(self.loops)

    def num_levels(self, operand: Operand) -> int:
        """Memory-chain depth this mapping assumes for ``operand``."""
        return len(self.cuts[operand]) + 1

    def level_bounds(self, operand: Operand, level: int) -> Tuple[int, int]:
        """Half-open index range of the loops allocated to ``level``."""
        cut = self.cuts[operand]
        if level < 0 or level > len(cut):
            raise IndexError(f"{operand} has levels 0..{len(cut)}, asked {level}")
        lo = cut[level - 1] if level > 0 else 0
        hi = cut[level] if level < len(cut) else len(self.loops)
        return lo, hi

    def loops_at_level(self, operand: Operand, level: int) -> Tuple[Loop, ...]:
        """Loops allocated to ``level`` of ``operand`` (inner first)."""
        lo, hi = self.level_bounds(operand, level)
        return self.loops[lo:hi]

    def loops_at_or_below(self, operand: Operand, level: int) -> Tuple[Loop, ...]:
        """Loops allocated to levels ``0..level`` of ``operand``."""
        __, hi = self.level_bounds(operand, level)
        return self.loops[:hi]

    def loops_above(self, operand: Operand, level: int) -> Tuple[Loop, ...]:
        """Loops allocated strictly above ``level`` of ``operand``."""
        __, hi = self.level_bounds(operand, level)
        return self.loops[hi:]

    def cycles_at_or_below(self, operand: Operand, level: int) -> int:
        """Plain turnaround product (Fig. 2a's ``Mem_CC`` before extension)."""
        return loops_product(self.loops_at_or_below(operand, level))

    def ir_run_above(self, operand: Operand, level: int, layer: LayerSpec) -> Tuple[Loop, ...]:
        """The maximal run of ``operand``-irrelevant loops just above ``level``.

        These loops prolong the residency of level ``level``'s tile without
        changing it (pure reuse), so they extend the effective ``Mem_CC``.
        pr loops count as relevant (they do change part of the tile).
        """
        run: List[Loop] = []
        for loop in self.loops_above(operand, level):
            if layer.relevance(operand, loop.dim, pr_as_r=True) == "ir":
                run.append(loop)
            else:
                break
        return tuple(run)

    def top_ir_run(self, operand: Operand, level: int, layer: LayerSpec) -> Tuple[Loop, ...]:
        """Maximal run of ir loops at the *top* of ``level``'s residency.

        This is Table I's "top temporal loop type": walking the residency
        window (the loops of ``level`` plus the reuse extension above it)
        from the outermost inwards, collect the irrelevant loops until the
        first relevant one. A non-empty result means a non-double-buffered
        memory has a keep-out zone and its ReqBW scales by the run product.
        """
        run: List[Loop] = list(self.ir_run_above(operand, level, layer))
        for loop in reversed(self.loops_at_level(operand, level)):
            if layer.relevance(operand, loop.dim, pr_as_r=True) == "ir":
                run.append(loop)
            else:
                break
        return tuple(run)

    def describe(self, operand: Operand) -> str:
        """Level-annotated loop order, e.g. ``L0[B8] L1[K4 C2] L2[C300]``."""
        parts = []
        for level in range(self.num_levels(operand)):
            inside = " ".join(str(l) for l in self.loops_at_level(operand, level))
            parts.append(f"L{level}[{inside}]")
        return " ".join(parts)


def loops_from_pairs(pairs: Iterable[Tuple[str, int]]) -> Tuple[Loop, ...]:
    """Convenience: build loops from ("K", 4)-style pairs, inner first."""
    return tuple(Loop(dim, size) for dim, size in pairs)
