"""Dataflow classification: which operand a mapping keeps stationary.

The paper describes mappings in dataflow vocabulary ("Mapping B adopts a
full output stationary dataflow at O-Reg level"). This module recovers
that vocabulary from a mapping: for each operand, how many cycles its
innermost-level tile dwells (residency), and the resulting classification —
weight-, input-, output-stationary, or mixed — plus the per-level reuse
factors that explain it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.mapping.loop import loops_product
from repro.mapping.mapping import Mapping
from repro.workload.operand import Operand


@dataclasses.dataclass(frozen=True)
class OperandResidency:
    """How long one operand's innermost tile stays put."""

    operand: Operand
    dwell_cycles: int
    total_cycles: int
    fully_stationary: bool

    @property
    def dwell_fraction(self) -> float:
        """Residency as a fraction of the layer's temporal schedule."""
        return self.dwell_cycles / self.total_cycles if self.total_cycles else 0.0


@dataclasses.dataclass(frozen=True)
class DataflowClass:
    """The stationarity classification of a full mapping."""

    residencies: Dict[Operand, OperandResidency]
    label: str

    def describe(self) -> str:
        """e.g. ``output-stationary (W dwell 8, I dwell 1, O dwell 600)``."""
        parts = ", ".join(
            f"{op} dwell {r.dwell_cycles}" for op, r in sorted(
                self.residencies.items(), key=lambda kv: str(kv[0])
            )
        )
        return f"{self.label} ({parts})"


def operand_residency(mapping: Mapping, operand: Operand) -> OperandResidency:
    """Innermost-tile residency of ``operand`` (extension-aware)."""
    temporal = mapping.temporal
    layer = mapping.layer
    base = temporal.cycles_at_or_below(operand, 0)
    ext = loops_product(temporal.ir_run_above(operand, 0, layer))
    dwell = base * ext
    total = temporal.total_cycles
    # Fully stationary: the level-0 tile covers the whole schedule (it is
    # loaded once — residency equals the layer duration).
    return OperandResidency(
        operand=operand,
        dwell_cycles=dwell,
        total_cycles=total,
        fully_stationary=dwell >= total,
    )


def classify_dataflow(mapping: Mapping, dominance: float = 4.0) -> DataflowClass:
    """Classify ``mapping`` by comparing operand residencies.

    An operand is the *stationary* one when its innermost tile dwells at
    least ``dominance`` times longer than every other operand's. If no
    operand dominates, the mapping is ``"mixed"``; if everything is fully
    stationary (tiny layer), it is ``"fully-resident"``.
    """
    residencies = {op: operand_residency(mapping, op) for op in Operand}
    if all(r.fully_stationary for r in residencies.values()):
        return DataflowClass(residencies, "fully-resident")

    names = {
        Operand.W: "weight-stationary",
        Operand.I: "input-stationary",
        Operand.O: "output-stationary",
    }
    for op, r in residencies.items():
        others = [x.dwell_cycles for o, x in residencies.items() if o is not op]
        if all(r.dwell_cycles >= dominance * other for other in others):
            return DataflowClass(residencies, names[op])
    return DataflowClass(residencies, "mixed")


def reuse_factors(mapping: Mapping, operand: Operand) -> Tuple[int, ...]:
    """Per-level temporal reuse: how often each level's tile is re-read.

    Level ``l``'s factor is the residency-extended turnaround divided by
    the level-below's — the data-reuse distribution across memory levels
    that Case study 1's Fig. 6(e) tabulates.
    """
    temporal = mapping.temporal
    layer = mapping.layer
    factors = []
    prev = 1
    for level in range(temporal.num_levels(operand)):
        base = temporal.cycles_at_or_below(operand, level)
        ext = loops_product(temporal.ir_run_above(operand, level, layer))
        current = base * ext
        factors.append(max(1, current // max(prev, 1)))
        prev = current
    return tuple(factors)
