"""Spatial mapping: loop unrolling across the MAC array."""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Mapping

from repro.workload.dims import ALL_DIMS, LoopDim
from repro.workload.layer import LayerSpec


@dataclasses.dataclass(frozen=True)
class SpatialMapping:
    """Loop unroll factors across the MAC array, e.g. ``K 16 | B 8 | C 2``.

    Spatial mapping defines how DNN loops parallelize across the MACs
    (Section II-A-3). The product of the unroll factors must not exceed the
    MAC array size; a layer dimension smaller than its unroll factor leaves
    part of the array idle (spatial under-utilization, scenario 2/4 of
    Fig. 1b).
    """

    unrolling: Mapping[LoopDim, int]

    def __post_init__(self) -> None:
        clean: Dict[LoopDim, int] = {}
        for dim, factor in dict(self.unrolling).items():
            if not isinstance(dim, LoopDim):
                dim = LoopDim(dim)
            if not isinstance(factor, int) or factor < 1:
                raise ValueError(f"unroll factor for {dim} must be a positive int")
            if factor > 1:
                clean[dim] = factor
        object.__setattr__(self, "unrolling", clean)

    # ------------------------------------------------------------------ #

    def factor(self, dim: LoopDim) -> int:
        """Unroll factor of ``dim`` (1 when not spatially mapped)."""
        return self.unrolling.get(dim, 1)

    @property
    def total_unrolling(self) -> int:
        """Product of all unroll factors — MACs this mapping wants."""
        return math.prod(self.unrolling.values()) if self.unrolling else 1

    def fits(self, array_size: int) -> bool:
        """Whether the mapping fits on an array of ``array_size`` MACs."""
        return self.total_unrolling <= array_size

    def effective_factor(self, dim: LoopDim, layer: LayerSpec) -> int:
        """Unrolling actually exercised by ``layer`` (min of factor, bound)."""
        return min(self.factor(dim), layer.size(dim))

    def spatial_utilization(self, layer: LayerSpec, array_size: int) -> float:
        """Fraction of the array doing useful work on ``layer``.

        This is ``U_spatial = CC_ideal / CC_spatial`` of Fig. 1(b): the
        array is under-used both by unroll factors that do not divide the
        layer dimension (ceil effects) and by any MACs with no loop mapped.
        """
        ideal = layer.total_macs / array_size
        return ideal / self.temporal_iterations(layer)

    def temporal_iterations(self, layer: LayerSpec) -> int:
        """``CC_spatial``: cycles to sweep the layer once, ceil effects in.

        The Fig. 1(b) scenario-2 formula: the product over every loop
        dimension of ``ceil(dim size / unroll size)``.
        """
        total = 1
        for dim in ALL_DIMS:
            total *= math.ceil(layer.size(dim) / self.factor(dim))
        return total

    def temporal_bound(self, dim: LoopDim, layer: LayerSpec) -> int:
        """Iterations of ``dim`` left for the temporal mapping."""
        return math.ceil(layer.size(dim) / self.factor(dim))

    def __str__(self) -> str:
        if not self.unrolling:
            return "(no spatial unrolling)"
        parts = sorted(self.unrolling.items(), key=lambda kv: -kv[1])
        return " | ".join(f"{dim} {factor}" for dim, factor in parts)
