"""Testing utilities: tiny machines and hand-built mappings.

These helpers are used throughout the test and benchmark suites and are
exported for downstream users who want hand-computable fixtures:

* :func:`toy_accelerator` — a minimal two-level machine (one register per
  operand plus a shared global buffer) whose every DTL attribute can be
  verified by hand;
* :func:`make_mapping` — build a :class:`~repro.mapping.mapping.Mapping`
  from explicit per-operand, per-level loop lists;
* :func:`loops` — terse loop-list construction from ("K", 4)-style pairs;
* :func:`private_toy_accelerator` — a machine whose three operands own
  fully private memory chains (no shared ports at all), the canonical
  member of the RTL backend's certified-exact scenario subset;
* :func:`simulate` — run either simulator backend (``"event"`` /
  ``"rtl"``) behind one call, for backend-parametrized tests;
* :func:`random_accelerator`, :func:`random_layer`, :func:`sample_cases` —
  re-exported from :mod:`repro.verify.generators`: constrained, seeded
  random machines / layers / valid mappings for property-based tests.
"""

from __future__ import annotations

from typing import List, Mapping as TMapping, Optional, Sequence

from repro.hardware.accelerator import Accelerator, StallOverlapConfig
from repro.hardware.hierarchy import MemoryHierarchy, auto_allocate
from repro.hardware.mac_array import MacArray
from repro.hardware.memory import MemoryInstance, dual_port
from repro.mapping.loop import Loop
from repro.mapping.mapping import Mapping
from repro.mapping.spatial import SpatialMapping
from repro.mapping.temporal import TemporalMapping
from repro.verify.generators import (
    Case,
    GeneratorConfig,
    iter_cases,
    random_accelerator,
    random_layer,
    sample_cases,
)
from repro.workload.dims import LoopDim
from repro.workload.layer import LayerSpec
from repro.workload.operand import Operand

__all__ = [
    "Case",
    "GeneratorConfig",
    "iter_cases",
    "loops",
    "make_mapping",
    "private_toy_accelerator",
    "random_accelerator",
    "random_layer",
    "sample_cases",
    "simulate",
    "toy_accelerator",
]


def toy_accelerator(
    array: int = 1,
    reg_bits: int = 8,
    o_reg_bits: int = 24,
    reg_bw: float = 8.0,
    gb_read_bw: float = 64.0,
    gb_write_bw: float = 64.0,
    reg_double_buffered: bool = False,
    reg_instances: int = 1,
    o_instances: int = 1,
    stall_overlap: Optional[StallOverlapConfig] = None,
) -> Accelerator:
    """A minimal 2-level machine (per-operand register + shared GB).

    Small enough that every DTL attribute is hand-computable in tests.
    """
    w_reg = MemoryInstance(
        "W-Reg", reg_bits, dual_port(reg_bw, reg_bw),
        double_buffered=reg_double_buffered, instances=reg_instances,
        read_energy_pj_per_bit=0.01, write_energy_pj_per_bit=0.01,
    )
    i_reg = MemoryInstance(
        "I-Reg", reg_bits, dual_port(reg_bw, reg_bw),
        double_buffered=reg_double_buffered, instances=reg_instances,
        read_energy_pj_per_bit=0.01, write_energy_pj_per_bit=0.01,
    )
    o_reg = MemoryInstance(
        "O-Reg", o_reg_bits,
        dual_port(max(reg_bw, float(o_reg_bits)), max(reg_bw, float(o_reg_bits))),
        double_buffered=False, instances=o_instances,
        read_energy_pj_per_bit=0.01, write_energy_pj_per_bit=0.01,
    )
    gb = MemoryInstance(
        "GB", 64 * 1024 * 8, dual_port(gb_read_bw, gb_write_bw),
        read_energy_pj_per_bit=0.05, write_energy_pj_per_bit=0.05,
    )
    # ONE shared GB level object across the three chains (shared memory).
    gb_level = auto_allocate(gb, set(Operand))
    hierarchy = MemoryHierarchy(
        {
            Operand.W: (auto_allocate(w_reg, {Operand.W}), gb_level),
            Operand.I: (auto_allocate(i_reg, {Operand.I}), gb_level),
            Operand.O: (auto_allocate(o_reg, {Operand.O}), gb_level),
        }
    )
    return Accelerator(
        name="toy",
        mac_array=MacArray(rows=1, cols=array, macs_per_pe=1, mac_energy_pj=0.1),
        hierarchy=hierarchy,
        stall_overlap=stall_overlap or StallOverlapConfig.all_concurrent(),
    )


def private_toy_accelerator(
    reg_bits: int = 8,
    o_reg_bits: int = 24,
    reg_bw: float = 8.0,
    buf_bw: float = 64.0,
    reg_double_buffered: bool = False,
) -> Accelerator:
    """A 2-level machine where every operand's chain is fully private.

    Each operand gets its own register *and* its own upper buffer with
    dedicated read/write ports, so no physical port ever serves two
    transfer streams. On such machines the RTL backend's dynamic
    exactness condition (zero contended port cycles) holds by
    construction, and with power-of-two sizes the lowered program is
    integral — the certified subset where both simulator backends must
    agree on total cycles *exactly* (see :mod:`repro.simulator.rtl`).
    """
    def _reg(name: str, bits: int, bw: float) -> MemoryInstance:
        return MemoryInstance(
            name, bits, dual_port(bw, bw),
            double_buffered=reg_double_buffered and not name.startswith("O"),
            read_energy_pj_per_bit=0.01, write_energy_pj_per_bit=0.01,
        )

    def _buf(name: str) -> MemoryInstance:
        return MemoryInstance(
            name, 64 * 1024 * 8, dual_port(buf_bw, buf_bw),
            read_energy_pj_per_bit=0.05, write_energy_pj_per_bit=0.05,
        )

    o_bw = max(reg_bw, float(o_reg_bits))
    chains = {
        Operand.W: (
            auto_allocate(_reg("W-Reg", reg_bits, reg_bw), {Operand.W}),
            auto_allocate(_buf("W-Buf"), {Operand.W}),
        ),
        Operand.I: (
            auto_allocate(_reg("I-Reg", reg_bits, reg_bw), {Operand.I}),
            auto_allocate(_buf("I-Buf"), {Operand.I}),
        ),
        Operand.O: (
            auto_allocate(_reg("O-Reg", o_reg_bits, o_bw), {Operand.O}),
            auto_allocate(_buf("O-Buf"), {Operand.O}),
        ),
    }
    return Accelerator(
        name="private-toy",
        mac_array=MacArray(rows=1, cols=1, macs_per_pe=1, mac_energy_pj=0.1),
        hierarchy=MemoryHierarchy(chains),
        stall_overlap=StallOverlapConfig.all_concurrent(),
    )


def simulate(
    accelerator: Accelerator,
    mapping: Mapping,
    backend: str = "event",
    **kwargs,
):
    """Run one mapping through the chosen simulator backend.

    ``backend="event"`` dispatches to the event-driven
    :class:`~repro.simulator.engine.CycleSimulator`, ``backend="rtl"``
    to the register-stage-accurate
    :class:`~repro.simulator.rtl.RtlSimulator`; extra keyword arguments
    go to the chosen simulator's constructor. Both return the shared
    :class:`~repro.simulator.result.SimulationResult` shape, which is
    what lets test suites parametrize over the two oracles.
    """
    from repro.simulator.engine import CycleSimulator
    from repro.simulator.rtl import RtlSimulator

    if backend == "event":
        return CycleSimulator(accelerator, mapping, **kwargs).run()
    if backend == "rtl":
        return RtlSimulator(accelerator, mapping, **kwargs).run()
    raise ValueError(f"unknown simulator backend {backend!r}")


def make_mapping(
    layer: LayerSpec,
    spatial: TMapping[LoopDim, int],
    levels: TMapping[Operand, Sequence[Sequence[Loop]]],
) -> Mapping:
    """Mapping from per-operand, per-level loop lists (inner level first)."""
    temporal = TemporalMapping.from_level_lists(levels)
    return Mapping(layer, SpatialMapping(spatial), temporal)


def loops(*pairs) -> List[Loop]:
    """Loops from ("K", 4)-style pairs."""
    return [Loop(LoopDim(d), s) for d, s in pairs]
