"""The single-entry public API of the reproduction.

Three verbs cover the common flows without touching the underlying
machinery (:class:`~repro.engine.EvaluationEngine`,
:class:`~repro.dse.mapper.TemporalMapper`,
:class:`~repro.analysis.network.NetworkEvaluator`):

* :func:`evaluate` — latency of one layer (best-found mapping, or a
  mapping you supply) on one machine;
* :func:`search` — the ranked temporal-mapping candidates of a layer;
* :func:`evaluate_network` — a whole network, layer by layer.

All three accept either a :class:`~repro.hardware.presets.Preset` (an
accelerator with its native spatial unrolling) or a bare
:class:`~repro.hardware.accelerator.Accelerator`, and a layer given as a
:class:`~repro.workload.layer.LayerSpec`, a ``"B,K,C"`` string, or a
``(B, K, C)`` tuple. Pass ``engine=`` to share one cache/executor across
calls; otherwise each call builds a throwaway serial engine via
:meth:`EvaluationEngine.from_preset`.

Quickstart::

    from repro import api

    report = api.evaluate("case-study", "64,128,1200")
    print(report.summary())

Observability composes through the ambient context::

    from repro.observability import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        api.evaluate("case-study", "64,128,1200")
    print(len(tracer.records), "spans")
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.core.report import LatencyReport
from repro.dse.mapper import MapperConfig, MappingSearchResult, TemporalMapper
from repro.engine import EvaluationEngine
from repro.hardware.accelerator import Accelerator
from repro.hardware.presets import (
    Preset,
    case_study_accelerator,
    inhouse_accelerator,
)
from repro.mapping.mapping import Mapping
from repro.workload.generator import dense_layer
from repro.workload.layer import LayerSpec

AcceleratorLike = Union[Preset, Accelerator, str]
LayerLike = Union[LayerSpec, str, Tuple[int, int, int]]

__all__ = ["evaluate", "search", "evaluate_network"]


# --------------------------------------------------------------------- #
# Input coercion
# --------------------------------------------------------------------- #

def _as_preset(accelerator: AcceleratorLike) -> Preset:
    """Accept a Preset, a bare Accelerator, or a named preset string."""
    if isinstance(accelerator, Preset):
        return accelerator
    if isinstance(accelerator, Accelerator):
        # No native unrolling known: purely temporal mapping.
        return Preset(accelerator=accelerator, spatial_unrolling={})
    if isinstance(accelerator, str):
        names = {
            "case-study": case_study_accelerator,
            "case_study": case_study_accelerator,
            "inhouse": inhouse_accelerator,
        }
        if accelerator in names:
            return names[accelerator]()
        raise ValueError(
            f"unknown accelerator preset {accelerator!r}; "
            f"expected one of {sorted(set(names))} or a Preset/Accelerator"
        )
    raise TypeError(
        f"accelerator must be a Preset, Accelerator or preset name, "
        f"not {type(accelerator).__name__}"
    )


def _as_layer(layer: LayerLike) -> LayerSpec:
    """Accept a LayerSpec, a ``"B,K,C"`` string, or a (B, K, C) tuple."""
    if isinstance(layer, LayerSpec):
        return layer
    if isinstance(layer, str):
        parts = [int(p) for p in layer.split(",")]
    else:
        parts = [int(p) for p in layer]
    if len(parts) != 3:
        raise ValueError(f"layer shorthand must be B,K,C — got {layer!r}")
    return dense_layer(*parts)


def _engine_for(
    preset: Preset, engine: Optional[EvaluationEngine]
) -> EvaluationEngine:
    if engine is None:
        return EvaluationEngine.from_preset(preset)
    return engine


# --------------------------------------------------------------------- #
# The three verbs
# --------------------------------------------------------------------- #

def evaluate(
    accelerator: AcceleratorLike,
    layer: LayerLike,
    mapping: Optional[Mapping] = None,
    *,
    engine: Optional[EvaluationEngine] = None,
    config: Optional[MapperConfig] = None,
    validate: bool = True,
) -> LatencyReport:
    """Latency of ``layer`` on ``accelerator`` (the paper's 3-step model).

    With ``mapping=None`` (the default) the mapper searches the temporal
    space under the preset's spatial unrolling and the best mapping's
    report is returned; pass an explicit :class:`Mapping` to evaluate it
    as-is. ``config`` tunes the search budget, ``engine`` shares a cache
    and executor across calls.
    """
    preset = _as_preset(accelerator)
    engine = _engine_for(preset, engine)
    if mapping is not None:
        return engine.evaluate(mapping, validate=validate)
    mapper = TemporalMapper(
        preset.accelerator,
        preset.spatial_unrolling,
        config or MapperConfig(),
        engine=engine,
    )
    return mapper.best_mapping(_as_layer(layer)).report


def search(
    accelerator: AcceleratorLike,
    layer: LayerLike,
    *,
    engine: Optional[EvaluationEngine] = None,
    config: Optional[MapperConfig] = None,
    top: Optional[int] = None,
) -> List[MappingSearchResult]:
    """Ranked temporal-mapping candidates of ``layer``, best first."""
    preset = _as_preset(accelerator)
    mapper = TemporalMapper(
        preset.accelerator,
        preset.spatial_unrolling,
        config or MapperConfig(),
        engine=_engine_for(preset, engine),
    )
    results = mapper.search(_as_layer(layer))
    return results[:top] if top is not None else results


def evaluate_network(
    accelerator: AcceleratorLike,
    layers: Sequence[LayerLike],
    *,
    engine: Optional[EvaluationEngine] = None,
    config: Optional[MapperConfig] = None,
    apply_im2col: bool = True,
    with_energy: bool = False,
):
    """Evaluate ``layers`` back to back; returns a ``NetworkResult``."""
    from repro.analysis.network import NetworkEvaluator

    preset = _as_preset(accelerator)
    evaluator = NetworkEvaluator(
        preset,
        mapper_config=config,
        apply_im2col=apply_im2col,
        with_energy=with_energy,
        engine=_engine_for(preset, engine),
    )
    return evaluator.evaluate([_as_layer(layer) for layer in layers])
