"""The single-entry public API of the reproduction.

Three verbs cover the common flows without touching the underlying
machinery (:class:`~repro.engine.EvaluationEngine`,
:class:`~repro.dse.mapper.TemporalMapper`,
:class:`~repro.analysis.network.NetworkEvaluator`):

* :func:`evaluate` — latency of one layer (best-found mapping, or a
  mapping you supply);
* :func:`search` — the ranked temporal-mapping candidates of a layer;
* :func:`evaluate_network` — a whole network, layer by layer.

Since PR 7 the verbs are built around the
:class:`~repro.engine.Evaluator` protocol: *where* evaluation happens is
entirely the ``engine=`` argument, which accepts

* any :class:`~repro.engine.Evaluator` — an in-process
  :class:`~repro.engine.EvaluationEngine`, a
  :class:`~repro.serve.RemoteEngine`, or your own implementation;
* a :class:`~repro.hardware.presets.Preset` or bare
  :class:`~repro.hardware.accelerator.Accelerator` (a throwaway serial
  engine is built and closed after the call);
* a preset name (``"case-study"``, ``"inhouse"``) — the default is
  ``"case-study"``;
* a service URL — ``"serve://host:port"`` or ``"unix:///path.sock"`` —
  which connects a :class:`~repro.serve.RemoteEngine` to a running
  ``repro-latency serve`` daemon.

Layers are given as a :class:`~repro.workload.layer.LayerSpec`, a
``"B,K,C"`` string, or a ``(B, K, C)`` tuple.

Quickstart::

    from repro import api

    report = api.evaluate("64,128,1200")                      # case-study preset
    report = api.evaluate("64,128,1200", engine="inhouse")    # named preset
    report = api.evaluate("64,128,1200",
                          engine="serve://127.0.0.1:7421")    # remote daemon

Observability composes through the ambient context::

    from repro.observability import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        api.evaluate("64,128,1200")
    print(len(tracer.records), "spans")

The pre-PR 7 accelerator-first call shapes
(``evaluate("case-study", "64,128,1200")``) keep working through a thin
shim that emits one :class:`DeprecationWarning` per process.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence, Tuple, Union

from repro.core.report import LatencyReport
from repro.dse.mapper import MapperConfig, MappingSearchResult, TemporalMapper
from repro.engine import EvaluationEngine, Evaluator
from repro.hardware.accelerator import Accelerator
from repro.hardware.presets import (
    Preset,
    case_study_accelerator,
    inhouse_accelerator,
)
from repro.mapping.mapping import Mapping
from repro.workload.generator import dense_layer
from repro.workload.layer import LayerSpec

EngineLike = Union[Evaluator, Preset, Accelerator, str]
LayerLike = Union[LayerSpec, str, Tuple[int, int, int]]

__all__ = ["evaluate", "search", "evaluate_network"]

_PRESET_NAMES = {
    "case-study": case_study_accelerator,
    "case_study": case_study_accelerator,
    "inhouse": inhouse_accelerator,
}
_URL_SCHEMES = ("serve://", "unix://")

#: What ``engine=None`` means.
DEFAULT_ENGINE = "case-study"


# --------------------------------------------------------------------- #
# Input coercion
# --------------------------------------------------------------------- #

def _as_engine(engine: EngineLike) -> Tuple[Evaluator, bool]:
    """Coerce ``engine=`` to an Evaluator; the bool says the verb owns it.

    Owned engines (built or connected here) are closed when the verb
    returns; engines the caller passed in stay open — their cache and
    stats are the point of passing them.
    """
    if isinstance(engine, str):
        if engine.startswith(_URL_SCHEMES):
            from repro.serve.client import RemoteEngine

            return RemoteEngine(engine), True
        builder = _PRESET_NAMES.get(engine)
        if builder is None:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of "
                f"{sorted(set(_PRESET_NAMES))}, a serve://host:port or "
                f"unix:///path URL, a Preset/Accelerator, or an Evaluator"
            )
        return EvaluationEngine.from_preset(builder()), True
    if isinstance(engine, Preset):
        return EvaluationEngine.from_preset(engine), True
    if isinstance(engine, Accelerator):
        # No native unrolling known: purely temporal mapping.
        return (
            EvaluationEngine.from_preset(
                Preset(accelerator=engine, spatial_unrolling={})
            ),
            True,
        )
    if isinstance(engine, Evaluator):
        return engine, False
    raise TypeError(
        f"engine must be an Evaluator, Preset, Accelerator, preset name "
        f"or service URL, not {type(engine).__name__}"
    )


def _as_layer(layer: LayerLike) -> LayerSpec:
    """Accept a LayerSpec, a ``"B,K,C"`` string, or a (B, K, C) tuple."""
    if isinstance(layer, LayerSpec):
        return layer
    if isinstance(layer, str):
        parts = [int(p) for p in layer.split(",")]
    else:
        parts = [int(p) for p in layer]
    if len(parts) != 3:
        raise ValueError(f"layer shorthand must be B,K,C — got {layer!r}")
    return dense_layer(*parts)


# --------------------------------------------------------------------- #
# Legacy accelerator-first shapes (pre-PR 7): detection + one warning
# --------------------------------------------------------------------- #

_legacy_warned = False


def _is_engine_like(value) -> bool:
    """Could ``value`` have been the old positional ``accelerator``?"""
    if isinstance(value, (Preset, Accelerator)):
        return True
    return isinstance(value, str) and (
        value in _PRESET_NAMES or value.startswith(_URL_SCHEMES)
    )


def _warn_legacy(verb: str) -> None:
    global _legacy_warned
    if not _legacy_warned:
        warnings.warn(
            f"api.{verb}(accelerator, layer, ...) is deprecated; the layer "
            f"comes first now and the machine is the engine= argument: "
            f"{verb}(layer, engine=accelerator). The old shape keeps "
            "working but will be removed.",
            DeprecationWarning,
            stacklevel=4,
        )
        _legacy_warned = True


def _resolve(
    engine: Optional[EngineLike], legacy_accelerator=None
) -> Tuple[Evaluator, bool, Accelerator, dict]:
    """The verb's engine plus the mapper geometry (machine + unrolling).

    In the modern shape the engine *is* the geometry; in the legacy
    shape the positional accelerator defines the geometry while an
    explicitly passed ``engine=`` keeps supplying cache and execution,
    exactly as before the redesign.
    """
    if legacy_accelerator is not None:
        if isinstance(legacy_accelerator, Preset):
            preset = legacy_accelerator
        elif isinstance(legacy_accelerator, Accelerator):
            preset = Preset(accelerator=legacy_accelerator, spatial_unrolling={})
        else:  # a preset name (URLs are never legacy accelerators)
            preset = _PRESET_NAMES[legacy_accelerator]()
        if engine is None:
            return (
                EvaluationEngine.from_preset(preset),
                True,
                preset.accelerator,
                dict(preset.spatial_unrolling),
            )
        engine_obj, owned = _as_engine(engine)
        return engine_obj, owned, preset.accelerator, dict(preset.spatial_unrolling)
    engine_obj, owned = _as_engine(engine if engine is not None else DEFAULT_ENGINE)
    return (
        engine_obj,
        owned,
        engine_obj.accelerator,
        dict(engine_obj.spatial_unrolling),
    )


# --------------------------------------------------------------------- #
# The three verbs
# --------------------------------------------------------------------- #

def evaluate(
    layer: LayerLike,
    mapping: Optional[Mapping] = None,
    *args,
    engine: Optional[EngineLike] = None,
    config: Optional[MapperConfig] = None,
    validate: bool = True,
) -> LatencyReport:
    """Latency of ``layer`` on ``engine`` (the paper's 3-step model).

    With ``mapping=None`` (the default) the mapper searches the temporal
    space under the engine's native spatial unrolling and the best
    mapping's report is returned; pass an explicit :class:`Mapping` to
    evaluate it as-is. ``config`` tunes the search budget; pass a
    long-lived ``engine`` (or a service URL) to share a cache across
    calls. ``engine=None`` means the ``"case-study"`` preset.
    """
    legacy_accelerator = None
    if _is_engine_like(layer) and isinstance(mapping, (LayerSpec, str, tuple, list)):
        # Legacy shape: evaluate(accelerator, layer[, mapping]).
        _warn_legacy("evaluate")
        legacy_accelerator, layer = layer, mapping
        mapping = args[0] if args else None
        args = args[1:]
    if args:
        raise TypeError(
            f"evaluate() takes at most 2 positional arguments "
            f"({2 + len(args)} given)"
        )
    if mapping is not None and not isinstance(mapping, Mapping):
        # A second positional that is neither a Mapping nor layer-like:
        # most plausibly a legacy call with a bad accelerator argument —
        # coercing it raises the specific error.
        _as_engine(layer)
        raise TypeError(f"mapping must be a Mapping, not {type(mapping).__name__}")
    engine_obj, owned, accelerator, spatial = _resolve(engine, legacy_accelerator)
    try:
        if mapping is not None:
            return engine_obj.evaluate(mapping, validate=validate)
        mapper = TemporalMapper(
            accelerator, spatial, config or MapperConfig(), engine=engine_obj
        )
        return mapper.best_mapping(_as_layer(layer)).report
    finally:
        if owned:
            engine_obj.close()


def search(
    layer: LayerLike,
    *args,
    engine: Optional[EngineLike] = None,
    config: Optional[MapperConfig] = None,
    top: Optional[int] = None,
) -> List[MappingSearchResult]:
    """Ranked temporal-mapping candidates of ``layer``, best first."""
    legacy_accelerator = None
    if (
        args
        and _is_engine_like(layer)
        and isinstance(args[0], (LayerSpec, str, tuple, list))
    ):
        # Legacy shape: search(accelerator, layer).
        _warn_legacy("search")
        legacy_accelerator, layer = layer, args[0]
        args = args[1:]
    if args:
        raise TypeError(
            f"search() takes 1 positional argument ({1 + len(args)} given)"
        )
    engine_obj, owned, accelerator, spatial = _resolve(engine, legacy_accelerator)
    try:
        mapper = TemporalMapper(
            accelerator, spatial, config or MapperConfig(), engine=engine_obj
        )
        results = mapper.search(_as_layer(layer))
        return results[:top] if top is not None else results
    finally:
        if owned:
            engine_obj.close()


def evaluate_network(
    layers: Sequence[LayerLike],
    *args,
    engine: Optional[EngineLike] = None,
    config: Optional[MapperConfig] = None,
    apply_im2col: bool = True,
    with_energy: bool = False,
):
    """Evaluate ``layers`` back to back; returns a ``NetworkResult``."""
    from repro.analysis.network import NetworkEvaluator

    legacy_accelerator = None
    if args and _is_engine_like(layers):
        # Legacy shape: evaluate_network(accelerator, layers).
        _warn_legacy("evaluate_network")
        legacy_accelerator, layers = layers, args[0]
        args = args[1:]
    if args:
        raise TypeError(
            f"evaluate_network() takes 1 positional argument "
            f"({1 + len(args)} given)"
        )
    engine_obj, owned, accelerator, spatial = _resolve(engine, legacy_accelerator)
    try:
        evaluator = NetworkEvaluator(
            Preset(accelerator=accelerator, spatial_unrolling=spatial),
            mapper_config=config,
            apply_im2col=apply_im2col,
            with_energy=with_energy,
            engine=engine_obj,
        )
        return evaluator.evaluate([_as_layer(layer) for layer in layers])
    finally:
        if owned:
            engine_obj.close()
