"""The uniform intra-layer latency model — the paper's core contribution.

:class:`LatencyModel` ties the three steps together (Section III):

1. :func:`repro.core.step1.build_dtls` divides the memory system into unit
   memories and derives every DTL's ``ReqBW_u`` / ``MUW_u`` / ``SS_u``;
2. :func:`repro.core.step2.combine_all_ports` +
   :func:`repro.core.step2.served_memory_stalls` combine shared-port DTLs
   (Eq. 1/2) and same-served-memory endpoints (max);
3. :func:`repro.core.step3.integrate_stalls` folds the per-memory stalls
   into ``SS_overall`` under the accelerator's stall-overlap config.

The overall latency then follows Section III-E:
``CC = preload + CC_spatial + SS_overall + offload`` with
``U = CC_ideal / CC``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.loading import offload_cycles, preload_cycles
from repro.core.report import LatencyReport
from repro.core.step1 import ModelOptions, build_dtls
from repro.core.step2 import combine_all_ports, served_memory_stalls
from repro.core.step3 import integrate_stalls
from repro.hardware.accelerator import Accelerator
from repro.mapping.mapping import Mapping, MappingError, check_capacity, utilization_scenario
from repro.observability.tracer import current_tracer


class LatencyModel:
    """Memory-type / bandwidth / sharing-aware analytical latency model.

    Parameters
    ----------
    accelerator:
        The hardware design point to evaluate mappings on.
    options:
        Modeling conventions (compute-edge DTLs, period-count convention).

    Examples
    --------
    >>> from repro.hardware.presets import case_study_accelerator
    >>> from repro.dse.mapper import TemporalMapper
    >>> preset = case_study_accelerator()
    >>> model = LatencyModel(preset.accelerator)   # doctest: +SKIP
    >>> report = model.evaluate(mapping)           # doctest: +SKIP
    >>> report.total_cycles                        # doctest: +SKIP
    """

    def __init__(
        self,
        accelerator: Accelerator,
        options: Optional[ModelOptions] = None,
    ) -> None:
        self.accelerator = accelerator
        self.options = options or ModelOptions()

    # ------------------------------------------------------------------ #

    def evaluate(self, mapping: Mapping, validate: bool = True) -> LatencyReport:
        """Run the 3-step model on ``mapping`` and assemble the report.

        ``validate=True`` (default) first checks that the mapping fits the
        MAC array and every memory's mapper-visible capacity, raising
        :class:`~repro.mapping.mapping.MappingError` with the full list of
        violations otherwise.
        """
        if validate:
            self.check(mapping)

        array_size = self.accelerator.mac_array.size
        horizon = float(mapping.spatial_cycles)

        tracer = current_tracer()
        with tracer.span("model.evaluate") as span:
            dtls = tuple(build_dtls(self.accelerator, mapping, self.options))
            ports = combine_all_ports(dtls, horizon, self.options.combine_rule)
            served = tuple(served_memory_stalls(dtls, ports, self.options.served_rule))
            integration = integrate_stalls(served, self.accelerator.stall_overlap)

            preload = preload_cycles(self.accelerator, mapping)
            offload = offload_cycles(self.accelerator, mapping)
            scenario = utilization_scenario(mapping, array_size, integration.ss_overall)

            report = LatencyReport(
                layer_name=mapping.layer.name or str(mapping.layer.layer_type),
                accelerator_name=self.accelerator.name,
                cc_ideal=mapping.ideal_cycles(array_size),
                cc_spatial=mapping.spatial_cycles,
                ss_overall=integration.ss_overall,
                preload=preload,
                offload=offload,
                scenario=scenario,
                dtls=dtls,
                port_combinations=ports,
                served_stalls=served,
                integration=integration,
            )
            if tracer.enabled:
                span.set_many(
                    layer=report.layer_name,
                    accelerator=report.accelerator_name,
                    scenario=report.scenario,
                    cc_ideal=report.cc_ideal,
                    cc_spatial=report.cc_spatial,
                    ss_overall=report.ss_overall,
                    preload=report.preload,
                    offload=report.offload,
                    total_cycles=report.total_cycles,
                    utilization=report.utilization,
                )
        return report

    def check(self, mapping: Mapping) -> None:
        """Raise :class:`MappingError` if ``mapping`` is infeasible here."""
        if not mapping.spatial.fits(self.accelerator.mac_array.size):
            raise MappingError(
                f"spatial mapping {mapping.spatial} needs "
                f"{mapping.spatial.total_unrolling} MACs but "
                f"{self.accelerator.name} has {self.accelerator.mac_array.size}"
            )
        violations = check_capacity(mapping, self.accelerator)
        if violations:
            raise MappingError("; ".join(violations))
