"""The latency report: every quantity of Fig. 1 plus the stall anatomy."""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional, Tuple

from repro.core.dtl import DTL
from repro.core.step2 import PortCombination, ServedMemoryStall
from repro.core.step3 import StallIntegration


@dataclasses.dataclass(frozen=True)
class LatencyBreakdown:
    """The four Fig. 7(b) latency components, in clock cycles."""

    preload: float
    ideal: float
    spatial_stall: float
    temporal_stall: float
    offload: float

    @property
    def total(self) -> float:
        """Overall layer latency (Section III-E)."""
        return (
            self.preload + self.ideal + self.spatial_stall
            + self.temporal_stall + self.offload
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for CSV/JSON export."""
        return {
            "preload": self.preload,
            "ideal": self.ideal,
            "spatial_stall": self.spatial_stall,
            "temporal_stall": self.temporal_stall,
            "offload": self.offload,
            "total": self.total,
        }


@dataclasses.dataclass(frozen=True)
class LatencyReport:
    """Everything the uniform latency model derives for one mapping.

    Attributes follow the paper's terminology: ``cc_ideal`` and
    ``cc_spatial`` from Fig. 1(b); ``ss_overall`` from Step 3; the
    utilization figures are ``U = CC_ideal / CC`` at the respective stage.
    """

    layer_name: str
    accelerator_name: str
    cc_ideal: float
    cc_spatial: int
    ss_overall: float
    preload: float
    offload: float
    scenario: int
    dtls: Tuple[DTL, ...]
    port_combinations: Mapping[Tuple[str, str], PortCombination]
    served_stalls: Tuple[ServedMemoryStall, ...]
    integration: Optional[StallIntegration]

    # ------------------------------------------------------------------ #

    @property
    def spatial_stall(self) -> float:
        """``CC_spatial - CC_ideal`` (Fig. 1b)."""
        return self.cc_spatial - self.cc_ideal

    @property
    def computation_cycles(self) -> float:
        """Computation-phase latency: ``CC_spatial + SS_overall``."""
        return self.cc_spatial + self.ss_overall

    @property
    def total_cycles(self) -> float:
        """Overall latency including data (off)loading."""
        return self.computation_cycles + self.preload + self.offload

    @property
    def utilization(self) -> float:
        """Overall MAC array utilization ``U = CC_ideal / CC``."""
        return self.cc_ideal / self.total_cycles

    @property
    def spatial_utilization(self) -> float:
        """``U_spatial = CC_ideal / CC_spatial``."""
        return self.cc_ideal / self.cc_spatial

    @property
    def temporal_utilization(self) -> float:
        """``U_temp = CC_spatial / (CC_spatial + SS_overall)``."""
        return self.cc_spatial / self.computation_cycles

    @property
    def breakdown(self) -> LatencyBreakdown:
        """The Fig. 7(b)-style component breakdown."""
        return LatencyBreakdown(
            preload=self.preload,
            ideal=self.cc_ideal,
            spatial_stall=self.spatial_stall,
            temporal_stall=self.ss_overall,
            offload=self.offload,
        )

    def bottlenecks(self, top: int = 3) -> Tuple[ServedMemoryStall, ...]:
        """The ``top`` largest unit-memory stalls (positive only)."""
        positive = [s for s in self.served_stalls if s.ss > 0]
        return tuple(sorted(positive, key=lambda s: -s.ss)[:top])

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"Layer {self.layer_name} on {self.accelerator_name} "
            f"(scenario {self.scenario}):",
            f"  CC_ideal      = {self.cc_ideal:12.1f}",
            f"  CC_spatial    = {self.cc_spatial:12d}   (spatial stall {self.spatial_stall:.1f})",
            f"  SS_overall    = {self.ss_overall:12.1f}   (temporal stall)",
            f"  preload       = {self.preload:12.1f}",
            f"  offload       = {self.offload:12.1f}",
            f"  TOTAL         = {self.total_cycles:12.1f}",
            f"  utilization   = {self.utilization:12.1%} "
            f"(spatial {self.spatial_utilization:.1%}, temporal {self.temporal_utilization:.1%})",
        ]
        bn = self.bottlenecks()
        if bn:
            lines.append("  bottlenecks:")
            lines.extend(f"    {s.describe()}" for s in bn)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric view for CSV/JSON export."""
        data = self.breakdown.as_dict()
        data.update(
            cc_spatial=float(self.cc_spatial),
            ss_overall=self.ss_overall,
            utilization=self.utilization,
            spatial_utilization=self.spatial_utilization,
            temporal_utilization=self.temporal_utilization,
            scenario=float(self.scenario),
        )
        return data
