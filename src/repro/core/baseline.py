"""Baseline latency models the paper compares against.

* :class:`BwUnawareModel` — the "memory-BW-unaware" model of Fig. 7(b)'s
  cyan dotted line and Fig. 8(a): it keeps the spatial-mapping effects
  (``CC_spatial``) and the data (off)loading phases but assumes perfectly
  double-buffered, never-contended memories, i.e. ``SS_overall = 0``.
* :func:`ideal_cycles` — scenario 1 of Fig. 1(b): total MACs / array size.
"""

from __future__ import annotations

from repro.core.loading import offload_cycles, preload_cycles
from repro.core.report import LatencyReport
from repro.hardware.accelerator import Accelerator
from repro.mapping.mapping import Mapping, utilization_scenario


def ideal_cycles(mapping: Mapping, array_size: int) -> float:
    """``CC_ideal``: the 100 %-utilization roofline latency."""
    return mapping.ideal_cycles(array_size)


class BwUnawareModel:
    """Latency model that ignores memory bandwidth (the prior-art baseline).

    Most existing analytical latency models "rely on ideal assumptions,
    such as: all memories at different levels are double-buffered [...];
    memories that are shared by multiple operands always have multiple
    read/write ports" (Section I). Under those assumptions no temporal
    stall exists, so latency reduces to ``preload + CC_spatial + offload``.
    """

    def __init__(self, accelerator: Accelerator, include_loading: bool = True) -> None:
        self.accelerator = accelerator
        self.include_loading = include_loading

    def evaluate(self, mapping: Mapping) -> LatencyReport:
        """Evaluate ``mapping`` with all temporal stalls assumed away."""
        array_size = self.accelerator.mac_array.size
        preload = preload_cycles(self.accelerator, mapping) if self.include_loading else 0.0
        offload = offload_cycles(self.accelerator, mapping) if self.include_loading else 0.0
        return LatencyReport(
            layer_name=mapping.layer.name or str(mapping.layer.layer_type),
            accelerator_name=f"{self.accelerator.name} (BW-unaware)",
            cc_ideal=mapping.ideal_cycles(array_size),
            cc_spatial=mapping.spatial_cycles,
            ss_overall=0.0,
            preload=preload,
            offload=offload,
            scenario=utilization_scenario(mapping, array_size, 0.0),
            dtls=(),
            port_combinations={},
            served_stalls=(),
            integration=None,
        )
