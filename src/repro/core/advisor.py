"""Upgrade advisor: which hardware knob buys the most latency.

Section V-A's closing guidance ("match ReqBW with RealBW, or reduce the
frequent access of the low-BW link") made actionable: for a given (machine,
layer) pair the advisor tries every single-knob hardware upgrade — double
the bandwidth of one port set, double-buffer one memory, double one
memory's capacity — re-runs the mapper and model, and ranks the options by
latency saved. Each option is a *one-change* variant, so the ranking tells
a designer exactly where the next wire or SRAM bank should go.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.sensitivity import scale_memory_bandwidth, swap_level
from repro.dse.mapper import MapperConfig, TemporalMapper
from repro.hardware.accelerator import Accelerator
from repro.hardware.hierarchy import MemoryLevel
from repro.mapping.mapping import MappingError
from repro.workload.layer import LayerSpec


@dataclasses.dataclass(frozen=True)
class UpgradeOption:
    """One evaluated single-knob hardware change."""

    description: str
    memory: str
    kind: str                  # "bandwidth" | "double_buffer" | "capacity"
    baseline_cycles: float
    upgraded_cycles: float

    @property
    def saving(self) -> float:
        """Relative latency reduction (positive = faster)."""
        if self.baseline_cycles <= 0:
            return 0.0
        return 1.0 - self.upgraded_cycles / self.baseline_cycles

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.description}: {self.baseline_cycles:.0f} -> "
            f"{self.upgraded_cycles:.0f} cc ({self.saving:+.1%})"
        )


def _double_buffer(accelerator: Accelerator, name: str) -> Optional[Accelerator]:
    level = accelerator.memory_by_name(name)
    if level.instance.double_buffered:
        return None
    upgraded = dataclasses.replace(
        level.instance,
        double_buffered=True,
        size_bits=level.instance.size_bits * 2,  # add the shadow copy
    )
    return swap_level(
        accelerator, level,
        MemoryLevel(upgraded, level.serves, level.allocation, level.capacity_share),
    )


def _double_capacity(accelerator: Accelerator, name: str) -> Accelerator:
    level = accelerator.memory_by_name(name)
    upgraded = dataclasses.replace(
        level.instance, size_bits=level.instance.size_bits * 2
    )
    return swap_level(
        accelerator, level,
        MemoryLevel(upgraded, level.serves, level.allocation, level.capacity_share),
    )


class UpgradeAdvisor:
    """Rank single-knob hardware upgrades for one layer."""

    def __init__(
        self,
        accelerator: Accelerator,
        spatial_unrolling,
        mapper_config: Optional[MapperConfig] = None,
    ) -> None:
        self.accelerator = accelerator
        self.spatial_unrolling = spatial_unrolling
        self.mapper_config = mapper_config or MapperConfig(
            max_enumerated=80, samples=60
        )

    def _best_cycles(self, machine: Accelerator, layer: LayerSpec) -> Optional[float]:
        mapper = TemporalMapper(machine, self.spatial_unrolling, self.mapper_config)
        try:
            return mapper.best_mapping(layer).report.total_cycles
        except MappingError:
            return None

    def advise(self, layer: LayerSpec, min_saving: float = 0.01) -> List[UpgradeOption]:
        """Evaluate all single-knob upgrades; return those saving >= min_saving."""
        baseline = self._best_cycles(self.accelerator, layer)
        if baseline is None:
            raise MappingError(
                f"{layer.describe()} is unmappable on {self.accelerator.name}"
            )
        options: List[UpgradeOption] = []
        for level in self.accelerator.hierarchy.unique_levels():
            name = level.name
            current_bw = max(p.bandwidth for p in level.instance.ports)

            candidates = [
                (
                    f"2x {name} port bandwidth ({current_bw:g} -> {2 * current_bw:g} b/cyc)",
                    "bandwidth",
                    scale_memory_bandwidth(self.accelerator, name, 2 * current_bw),
                ),
                (
                    f"2x {name} capacity",
                    "capacity",
                    _double_capacity(self.accelerator, name),
                ),
            ]
            db_variant = _double_buffer(self.accelerator, name)
            if db_variant is not None:
                candidates.append(
                    (f"double-buffer {name}", "double_buffer", db_variant)
                )
            for description, kind, machine in candidates:
                upgraded = self._best_cycles(machine, layer)
                if upgraded is None:
                    continue
                option = UpgradeOption(
                    description=description,
                    memory=name,
                    kind=kind,
                    baseline_cycles=baseline,
                    upgraded_cycles=min(upgraded, baseline),
                )
                if option.saving >= min_saving:
                    options.append(option)
        options.sort(key=lambda o: -o.saving)
        return options
