"""Step 2 — Combine DTLs sharing physical ports and serving the same memory.

Two combinations happen here (Section III-C):

1. **Shared-port combination.** All DTL endpoints landing on one physical
   memory port contend for its bandwidth. ``ReqBW_comb`` is the sum of the
   endpoints' ``ReqBW_u``; ``MUW_comb`` is the length of the *union* of
   their periodic allowed windows; and ``SS_comb`` follows Eq. (1)/(2):

   * Eq. (1), all ``SS_u <= 0``:
     ``SS_comb = sum(MUW_u + SS_u) - MUW_comb``
     (note ``MUW_u + SS_u = X_REAL * Z`` — the port busy time the DTL
     needs; the port stalls when total demand exceeds the combined window).
   * Eq. (2), some ``SS_u > 0``: positive stalls pass through undiminished
     and only the non-positive rest may (partially) absorb into the window:
     ``SS_comb = sum(SS_u > 0) + max(0, sum_nonpos(MUW_u + SS_u) - MUW_comb)``.
     A DTL's own stall is never cancelled by another DTL's slack.

2. **Same-served-memory combination.** The two endpoints of a logical
   transfer (source read port, destination write port) serve the same unit
   memory; the stall the unit memory experiences is the max of the two
   ports' ``SS_comb``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.core import kernels
from repro.core.dtl import DTL
from repro.core.windows import union_length
from repro.observability.tracer import current_tracer
from repro.workload.operand import Operand


@dataclasses.dataclass(frozen=True)
class PortCombination:
    """Combined Step-2 attributes of one physical memory port."""

    memory: str
    port: str
    dtls: Tuple[DTL, ...]
    req_bw_comb: float
    muw_comb: float
    ss_comb: float

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.memory}.{self.port}: {len(self.dtls)} DTL(s), "
            f"ReqBW_comb={self.req_bw_comb:.2f} b/cyc, SS_comb={self.ss_comb:.1f} cc"
        )


@dataclasses.dataclass(frozen=True)
class ServedMemoryStall:
    """Final Step-2 stall of one unit memory (operand at one level)."""

    operand: Operand
    level: int
    memory: str
    ss: float
    limiting_port: Tuple[str, str]

    def describe(self) -> str:
        """One-line summary for reports."""
        lim = f"{self.limiting_port[0]}.{self.limiting_port[1]}"
        return f"{self.operand}@{self.memory}(L{self.level}): SS={self.ss:.1f} cc (limited by {lim})"


def combine_port(
    memory: str,
    port: str,
    dtls: Sequence[DTL],
    horizon: float,
    rule: str = "refined",
) -> PortCombination:
    """Combine the DTLs sharing one physical port (Eq. (1)/(2)).

    With ``rule="paper"`` the equations are applied exactly as printed.
    ``rule="refined"`` additionally enforces the port's aggregate busy
    deficit: the port must move ``sum(X_REAL * Z)`` bits-worth of cycles
    but only ``MUW_comb`` window cycles exist, so
    ``SS_comb >= sum(busy) - MUW_comb`` — a bound the printed Eq. (2)
    misses when an already-stalling DTL shares the port with a DTL that
    exactly saturates the window.
    """
    dtls = tuple(dtls)
    req_bw_comb = sum(d.req_bw for d in dtls)
    muw_comb = union_length([d.window() for d in dtls], horizon)

    positives = [d for d in dtls if d.ss_u > 0]
    nonpos = [d for d in dtls if d.ss_u <= 0]
    nonpos_demand = sum(d.muw_u + d.ss_u for d in nonpos)
    total_busy = sum(d.muw_u + d.ss_u for d in dtls)  # = sum X_REAL * Z
    ss_comb = float(
        kernels.combine_ss(
            sum(d.ss_u for d in positives),
            nonpos_demand,
            bool(positives),
            muw_comb,
            total_busy,
            rule == "refined",
        )
    )
    return PortCombination(memory, port, dtls, req_bw_comb, muw_comb, ss_comb)


def combine_all_ports(
    dtls: Sequence[DTL], horizon: float, rule: str = "refined"
) -> Dict[Tuple[str, str], PortCombination]:
    """Group DTL endpoints by physical port and combine each group."""
    groups: Dict[Tuple[str, str], List[DTL]] = {}
    for dtl in dtls:
        groups.setdefault(dtl.port_key, []).append(dtl)
    tracer = current_tracer()
    with tracer.span("model.step2.ports") as span:
        combined = {
            key: combine_port(key[0], key[1], group, horizon, rule)
            for key, group in groups.items()
        }
        if tracer.enabled:
            span.set("ports", len(combined))
            span.set("combine_rule", rule)
            for comb in combined.values():
                tracer.event(
                    "step2.port",
                    memory=comb.memory,
                    port=comb.port,
                    dtls=len(comb.dtls),
                    req_bw_comb=comb.req_bw_comb,
                    muw_comb=comb.muw_comb,
                    ss_comb=comb.ss_comb,
                    # The Eq. (1)/(2) decision: positive per-DTL stalls
                    # switch the port to Eq. (2) (stalls pass through).
                    equation=(
                        "eq2" if any(d.ss_u > 0 for d in comb.dtls) else "eq1"
                    ),
                )
    return combined


def served_memory_stalls(
    dtls: Sequence[DTL],
    port_combinations: Dict[Tuple[str, str], PortCombination],
    rule: str = "chained",
) -> List[ServedMemoryStall]:
    """Per-unit-memory stall from the endpoint ports' ``SS_comb``.

    Within one logical traffic stream the two endpoints (source read port,
    destination write port) carry the same data, so the stream experiences
    the *max* of the two ports' combined stalls ("the final SS_comb is the
    maximal value ... e.g. max(SS_comb 1-6, SS_comb 2-7)").

    Across *distinct* streams serving the same unit memory:

    * ``"paper"`` takes the max, as printed in Fig. 2(b);
    * ``"sum"`` adds them — a pessimistic fully-serialized bound kept for
      the ablation study;
    * ``"chained"`` (default) takes the paper max but additionally bounds
      the result from below by the *dependency-chain* cost of an output
      drain followed by its partial-sum reload. The two transfers cannot
      overlap at one period boundary (the reload waits for the drain), and
      the chain restarts every period whenever the allowed window is
      strictly shorter than the period (``X_REQ < P`` — compute separates
      the deadlines, draining any pipelining); its cost is then the *sum*
      of the streams' own per-DTL stalls. When ``X_REQ == P`` consecutive
      boundaries abut and the streams pipeline on their two ports, so no
      chain term applies. Both regimes are confirmed by the cycle-level
      simulator (ablation bench).
    """
    per_stream: Dict[
        Tuple[Operand, int, str, str], Tuple[float, Tuple[str, str]]
    ] = {}
    for dtl in dtls:
        transfer = dtl.transfer
        key = (
            transfer.operand,
            transfer.served_level,
            transfer.served_memory,
            transfer.kind.value,
        )
        port_ss = port_combinations[dtl.port_key].ss_comb
        if key not in per_stream or port_ss > per_stream[key][0]:
            per_stream[key] = (port_ss, dtl.port_key)

    served: Dict[Tuple[Operand, int, str], Tuple[float, Tuple[str, str]]] = {}
    for (operand, level, memory, __), (ss, port) in per_stream.items():
        key = (operand, level, memory)
        if key not in served:
            served[key] = (ss, port)
        elif rule == "sum":
            prev_ss, prev_port = served[key]
            # Sum distinct streams; only positive stalls accumulate.
            total = max(prev_ss, 0.0) + max(ss, 0.0)
            if total == 0.0:
                total = max(prev_ss, ss)
            served[key] = (total, port if ss > prev_ss else prev_port)
        else:  # "paper" and the base of "chained": the per-port max
            if ss > served[key][0]:
                served[key] = (ss, port)

    if rule == "chained":
        _apply_chain_bounds(dtls, per_stream, served)

    out = [
        ServedMemoryStall(operand, level, memory, ss, port)
        for (operand, level, memory), (ss, port) in sorted(
            served.items(), key=lambda kv: (str(kv[0][0]), kv[0][1])
        )
    ]
    tracer = current_tracer()
    if tracer.enabled:
        with tracer.span("model.step2.served", rule=rule):
            for stall in out:
                tracer.event(
                    "step2.served",
                    operand=str(stall.operand),
                    level=stall.level,
                    memory=stall.memory,
                    ss=stall.ss,
                    limiting_port=f"{stall.limiting_port[0]}.{stall.limiting_port[1]}",
                )
    return out


def _apply_chain_bounds(
    dtls: Sequence[DTL],
    per_stream: Dict[Tuple[Operand, int, str, str], Tuple[float, Tuple[str, str]]],
    served: Dict[Tuple[Operand, int, str], Tuple[float, Tuple[str, str]]],
) -> None:
    """Lower-bound served stalls by the drain->reload dependency chain.

    For every unit memory with both a FLUSH and a PSUM_READBACK stream
    whose allowed window is strictly shorter than the period (separated
    boundaries — the chain restarts every period instead of pipelining),
    the unit memory's stall is at least the sum of the two streams'
    port-level stalls: the drain's write-side port time and the reload's
    read-side port time cannot overlap at the boundary.
    """
    from repro.core.dtl import TrafficKind

    chained_kinds = (TrafficKind.FLUSH.value, TrafficKind.PSUM_READBACK.value)
    separated: Dict[Tuple[Operand, int, str], Dict[str, bool]] = {}
    for dtl in dtls:
        transfer = dtl.transfer
        if transfer.kind.value not in chained_kinds:
            continue
        key = (transfer.operand, transfer.served_level, transfer.served_memory)
        separated.setdefault(key, {})[transfer.kind.value] = (
            transfer.x_req < transfer.period - 1e-9
        )
    for key, kinds in separated.items():
        if len(kinds) < 2 or not all(kinds.values()):
            continue  # need both streams, both with keep-out-separated windows
        chain = 0.0
        port = served[key][1] if key in served else None
        for kind in chained_kinds:
            entry = per_stream.get((*key, kind))
            if entry is None:
                chain = -1.0
                break
            chain += max(0.0, entry[0])
            port = port or entry[1]
        if chain > 0 and port is not None and chain > served.get(key, (0.0, port))[0]:
            served[key] = (chain, port)
