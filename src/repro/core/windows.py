"""Finite periodic window functions — the MUW machinery of Fig. 2(a).

Step 1 models each DTL's allowed memory-updating window as "a finite
periodic function, supporting union and intersection operation" with four
parameters: period (``Mem_CC``), active span within one period (``X``),
active start within one period (``S``) and number of periods (``Z``).

Step 2 needs the *length of the union* of several such windows
(``MUW_comb``). Periods in a nested-loop schedule are products of loop-size
prefixes, so they are usually divisor-related and the hyperperiod stays
small; we compute the union exactly by interval merging over one
hyperperiod whenever the interval count is tractable and fall back to the
safe upper bound ``min(sum of active, horizon)`` otherwise.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.core import kernels

#: Cap on merged intervals per union computation before falling back.
MAX_UNION_INTERVALS = 2_000_000

#: One window as plain parameters ``(period, active, start, repeats)`` —
#: the representation the batch evaluator hands to :func:`union_length_params`
#: without materializing :class:`PeriodicWindow` objects.
WindowParams = Tuple[float, float, float, int]


@dataclasses.dataclass(frozen=True)
class PeriodicWindow:
    """An active window of ``active`` cycles repeating every ``period``.

    The window occupies ``[k*period + start, k*period + start + active)``
    for ``k = 0 .. repeats-1``. ``active == period`` (with ``start == 0``)
    describes an always-open window; ``active < period`` leaves a keep-out
    zone of ``period - active`` cycles per period.

    Spans are real-valued: ``X_REQ = Mem_DATA / ReqBW`` is generally not an
    integer cycle count, and the analytical model keeps the fraction.
    """

    period: float
    active: float
    start: float
    repeats: int

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0 <= self.active <= self.period + 1e-12:
            raise ValueError(
                f"active span {self.active} must lie in [0, period={self.period}]"
            )
        if self.start < -1e-12 or self.start + self.active > self.period + 1e-9:
            raise ValueError(
                f"window start {self.start} + active {self.active} exceeds period {self.period}"
            )
        if self.repeats < 0:
            raise ValueError("repeats must be >= 0")

    @property
    def total_active(self) -> float:
        """Total open window across all repeats (``MUW_u = X * Z``)."""
        return self.active * self.repeats

    @property
    def horizon(self) -> float:
        """End of the last period."""
        return self.period * self.repeats

    @property
    def is_full(self) -> bool:
        """Whether the window is open for the entire period."""
        return math.isclose(self.active, self.period)

    def intervals(self) -> Iterable[Tuple[float, float]]:
        """Yield the absolute (begin, end) intervals, in order."""
        for k in range(self.repeats):
            base = k * self.period
            yield (base + self.start, base + self.start + self.active)


def _merged_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of (begin, end) intervals."""
    if not intervals:
        return 0.0
    arr = np.asarray(intervals, dtype=np.float64)
    return kernels.merged_interval_length(arr[:, 0], arr[:, 1])


def union_length(windows: Sequence[PeriodicWindow], horizon: float) -> float:
    """Length of the union of ``windows`` clipped to ``[0, horizon)``.

    Thin object wrapper over :func:`union_length_params`, which holds the
    actual algorithm (and which the batch evaluator calls directly).
    """
    return union_length_params(
        [(w.period, w.active, w.start, w.repeats) for w in windows], horizon
    )


def union_length_params(params: Sequence[WindowParams], horizon: float) -> float:
    """``MUW_comb`` of windows given as ``(period, active, start, repeats)``.

    Fast paths, in order:

    1. a full window (``active == period``) spanning the horizon covers
       everything;
    2. a single window needs no merging;
    3. in a nested-loop schedule every period divides the total cycle
       count, so the union pattern repeats every ``lcm(periods)`` cycles:
       merge one hyperperiod and scale. (Windows are treated as repeating
       across the whole horizon; a stream whose ``repeats`` stop one period
       short contributes at most one extra ``active`` span — bounded by one
       period out of the horizon.)
    4. plain interval merging, falling back to the upper bound
       ``min(sum of active, horizon)`` beyond :data:`MAX_UNION_INTERVALS`
       (an upper bound on MUW_comb biases Eq. (1) optimistically; it only
       triggers for pathological schedules).
    """
    windows = [w for w in params if w[3] > 0 and w[1] > 0]
    if not windows or horizon <= 0:
        return 0.0
    for period, active, __, repeats in windows:
        if math.isclose(active, period) and period * repeats >= horizon - 1e-9:
            return float(horizon)
    if len(windows) == 1:
        period, active, __, repeats = windows[0]
        return min(active * repeats, float(horizon))

    periods = [w[0] for w in windows]
    if all(math.isclose(p, round(p)) for p in periods):
        hyper = 1
        for p in periods:
            hyper = math.lcm(hyper, int(round(p)))
            if hyper > horizon:
                break
        n_intervals = sum(hyper // int(round(p)) for p in periods)
        if hyper <= horizon and n_intervals <= MAX_UNION_INTERVALS:
            spans = [
                kernels.window_intervals(
                    period, active, start, hyper // int(round(period)), float("inf")
                )
                for period, active, start, __ in windows
            ]
            per_hyper = kernels.merged_interval_length(
                np.concatenate([lo for lo, __ in spans]),
                np.concatenate([hi for __, hi in spans]),
            )
            full, rest = divmod(horizon, hyper)
            total = per_hyper * full
            if rest > 1e-9:
                total += _clipped_union(windows, rest)
            return min(total, float(horizon))

    count = sum(min(w[3], math.ceil(horizon / w[0])) for w in windows)
    if count > MAX_UNION_INTERVALS:
        return min(sum(w[1] * w[3] for w in windows), float(horizon))
    return _clipped_union(windows, horizon)


def _clipped_union(windows: Sequence[WindowParams], horizon: float) -> float:
    """Direct interval merge of the windows clipped to ``[0, horizon)``."""
    windows = [
        (w.period, w.active, w.start, w.repeats)
        if isinstance(w, PeriodicWindow)
        else w
        for w in windows
    ]
    spans = [
        kernels.window_intervals(
            period, active, start, min(repeats, math.ceil(horizon / period)), horizon
        )
        for period, active, start, repeats in windows
    ]
    lo = np.concatenate([l for l, __ in spans])
    if lo.shape[0] == 0:
        return 0.0
    hi = np.concatenate([h for __, h in spans])
    return kernels.merged_interval_length(lo, hi)


def intersection_length(a: PeriodicWindow, b: PeriodicWindow, horizon: float) -> float:
    """Length of the pairwise intersection clipped to ``[0, horizon)``.

    Exposed for analyses that ask how much two DTLs' windows overlap (the
    paper mentions the window functions support intersection as well).
    """
    if horizon <= 0:
        return 0.0
    ints_a = [(lo, min(hi, horizon)) for lo, hi in a.intervals() if lo < horizon]
    ints_b = [(lo, min(hi, horizon)) for lo, hi in b.intervals() if lo < horizon]
    total = 0.0
    i = j = 0
    while i < len(ints_a) and j < len(ints_b):
        lo = max(ints_a[i][0], ints_b[j][0])
        hi = min(ints_a[i][1], ints_b[j][1])
        if hi > lo:
            total += hi - lo
        if ints_a[i][1] <= ints_b[j][1]:
            i += 1
        else:
            j += 1
    return total
