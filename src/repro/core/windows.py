"""Finite periodic window functions — the MUW machinery of Fig. 2(a).

Step 1 models each DTL's allowed memory-updating window as "a finite
periodic function, supporting union and intersection operation" with four
parameters: period (``Mem_CC``), active span within one period (``X``),
active start within one period (``S``) and number of periods (``Z``).

Step 2 needs the *length of the union* of several such windows
(``MUW_comb``). Periods in a nested-loop schedule are products of loop-size
prefixes, so they are usually divisor-related and the hyperperiod stays
small; we compute the union exactly by interval merging over one
hyperperiod whenever the interval count is tractable and fall back to the
safe upper bound ``min(sum of active, horizon)`` otherwise.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Sequence, Tuple

#: Cap on merged intervals per union computation before falling back.
MAX_UNION_INTERVALS = 2_000_000


@dataclasses.dataclass(frozen=True)
class PeriodicWindow:
    """An active window of ``active`` cycles repeating every ``period``.

    The window occupies ``[k*period + start, k*period + start + active)``
    for ``k = 0 .. repeats-1``. ``active == period`` (with ``start == 0``)
    describes an always-open window; ``active < period`` leaves a keep-out
    zone of ``period - active`` cycles per period.

    Spans are real-valued: ``X_REQ = Mem_DATA / ReqBW`` is generally not an
    integer cycle count, and the analytical model keeps the fraction.
    """

    period: float
    active: float
    start: float
    repeats: int

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0 <= self.active <= self.period + 1e-12:
            raise ValueError(
                f"active span {self.active} must lie in [0, period={self.period}]"
            )
        if self.start < -1e-12 or self.start + self.active > self.period + 1e-9:
            raise ValueError(
                f"window start {self.start} + active {self.active} exceeds period {self.period}"
            )
        if self.repeats < 0:
            raise ValueError("repeats must be >= 0")

    @property
    def total_active(self) -> float:
        """Total open window across all repeats (``MUW_u = X * Z``)."""
        return self.active * self.repeats

    @property
    def horizon(self) -> float:
        """End of the last period."""
        return self.period * self.repeats

    @property
    def is_full(self) -> bool:
        """Whether the window is open for the entire period."""
        return math.isclose(self.active, self.period)

    def intervals(self) -> Iterable[Tuple[float, float]]:
        """Yield the absolute (begin, end) intervals, in order."""
        for k in range(self.repeats):
            base = k * self.period
            yield (base + self.start, base + self.start + self.active)


def _merged_length(intervals: List[Tuple[float, float]]) -> float:
    """Total length of the union of (begin, end) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_lo, cur_hi = intervals[0]
    for lo, hi in intervals[1:]:
        if lo > cur_hi:
            total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    total += cur_hi - cur_lo
    return total


def union_length(windows: Sequence[PeriodicWindow], horizon: float) -> float:
    """Length of the union of ``windows`` clipped to ``[0, horizon)``.

    This is ``MUW_comb`` for a set of shared-port DTLs. Fast paths, in
    order:

    1. a full window (``active == period``) spanning the horizon covers
       everything;
    2. a single window needs no merging;
    3. in a nested-loop schedule every period divides the total cycle
       count, so the union pattern repeats every ``lcm(periods)`` cycles:
       merge one hyperperiod and scale. (Windows are treated as repeating
       across the whole horizon; a stream whose ``repeats`` stop one period
       short contributes at most one extra ``active`` span — bounded by one
       period out of the horizon.)
    4. plain interval merging, falling back to the upper bound
       ``min(sum of active, horizon)`` beyond :data:`MAX_UNION_INTERVALS`
       (an upper bound on MUW_comb biases Eq. (1) optimistically; it only
       triggers for pathological schedules).
    """
    windows = [w for w in windows if w.repeats > 0 and w.active > 0]
    if not windows or horizon <= 0:
        return 0.0
    for w in windows:
        if w.is_full and w.horizon >= horizon - 1e-9:
            return float(horizon)
    if len(windows) == 1:
        w = windows[0]
        return min(w.total_active, float(horizon))

    periods = [w.period for w in windows]
    if all(math.isclose(p, round(p)) for p in periods):
        hyper = 1
        for p in periods:
            hyper = math.lcm(hyper, int(round(p)))
            if hyper > horizon:
                break
        n_intervals = sum(hyper // int(round(p)) for p in periods)
        if hyper <= horizon and n_intervals <= MAX_UNION_INTERVALS:
            per_hyper = _merged_length(
                [
                    (k * w.period + w.start, k * w.period + w.start + w.active)
                    for w in windows
                    for k in range(hyper // int(round(w.period)))
                ]
            )
            full, rest = divmod(horizon, hyper)
            total = per_hyper * full
            if rest > 1e-9:
                total += _clipped_union(windows, rest)
            return min(total, float(horizon))

    count = sum(min(w.repeats, math.ceil(horizon / w.period)) for w in windows)
    if count > MAX_UNION_INTERVALS:
        return min(sum(w.total_active for w in windows), float(horizon))
    return _clipped_union(windows, horizon)


def _clipped_union(windows: Sequence[PeriodicWindow], horizon: float) -> float:
    """Direct interval merge of the windows clipped to ``[0, horizon)``."""
    intervals: List[Tuple[float, float]] = []
    for w in windows:
        k_max = min(w.repeats, math.ceil(horizon / w.period))
        for k in range(k_max):
            lo = k * w.period + w.start
            if lo >= horizon:
                break
            intervals.append((lo, min(lo + w.active, horizon)))
    if not intervals:
        return 0.0
    return _merged_length(intervals)


def intersection_length(a: PeriodicWindow, b: PeriodicWindow, horizon: float) -> float:
    """Length of the pairwise intersection clipped to ``[0, horizon)``.

    Exposed for analyses that ask how much two DTLs' windows overlap (the
    paper mentions the window functions support intersection as well).
    """
    if horizon <= 0:
        return 0.0
    ints_a = [(lo, min(hi, horizon)) for lo, hi in a.intervals() if lo < horizon]
    ints_b = [(lo, min(hi, horizon)) for lo, hi in b.intervals() if lo < horizon]
    total = 0.0
    i = j = 0
    while i < len(ints_a) and j < len(ints_b):
        lo = max(ints_a[i][0], ints_b[j][0])
        hi = min(ints_a[i][1], ints_b[j][1])
        if hi > lo:
            total += hi - lo
        if ints_a[i][1] <= ints_b[j][1]:
            i += 1
        else:
            j += 1
    return total
