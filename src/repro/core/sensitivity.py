"""What-if analysis: latency sensitivity to memory bandwidth and capacity.

Case study 3 closes with the 3D-IC argument: high-bandwidth SRAM-on-logic
stacking (> 1024 bit/cycle) changes which designs win, and "the proposed
BW-aware latency model can aid in evaluating the impact of this new
technology on the design space". This module automates exactly that
question for a single design: sweep one memory's port bandwidth (or the
whole memory's capacity scale) and report the latency curve, its knee, and
the bandwidth beyond which the layer becomes compute-bound.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.step1 import ModelOptions
from repro.dse.mapper import MapperConfig, TemporalMapper
from repro.engine import EvaluationEngine
from repro.hardware.accelerator import Accelerator
from repro.hardware.hierarchy import MemoryHierarchy, MemoryLevel
from repro.hardware.memory import MemoryInstance
from repro.hardware.port import Port
from repro.mapping.mapping import Mapping, MappingError
from repro.workload.layer import LayerSpec
from repro.workload.operand import Operand


@dataclasses.dataclass(frozen=True)
class SensitivityPoint:
    """One point of a sensitivity curve."""

    value: float
    total_cycles: float
    ss_overall: float
    utilization: float


@dataclasses.dataclass(frozen=True)
class SensitivityCurve:
    """A latency-vs-parameter curve with convenience accessors."""

    parameter: str
    points: Tuple[SensitivityPoint, ...]

    def knee(self, tolerance: float = 0.02) -> Optional[SensitivityPoint]:
        """First point within ``tolerance`` of the best latency achieved.

        Beyond the knee, extra bandwidth/capacity buys (almost) nothing —
        the actionable number for a designer sizing an interconnect.
        """
        if not self.points:
            return None
        best = min(p.total_cycles for p in self.points)
        for p in self.points:
            if p.total_cycles <= best * (1 + tolerance):
                return p
        return None

    def compute_bound_from(self) -> Optional[float]:
        """Smallest parameter value with zero temporal stall (if any)."""
        for p in self.points:
            if p.ss_overall <= 0:
                return p.value
        return None

    def as_rows(self) -> List[Dict[str, float]]:
        """Flat rows for CSV export."""
        return [
            {
                self.parameter: p.value,
                "total_cycles": p.total_cycles,
                "ss_overall": p.ss_overall,
                "utilization": p.utilization,
            }
            for p in self.points
        ]


def _scale_memory_bandwidth(
    accelerator: Accelerator, memory_name: str, bandwidth: float
) -> Accelerator:
    """Copy of ``accelerator`` with every port of ``memory_name`` set to
    ``bandwidth`` bits/cycle."""
    old_level = accelerator.memory_by_name(memory_name)
    old_inst = old_level.instance
    new_ports = tuple(
        Port(p.name, p.direction, bandwidth) for p in old_inst.ports
    )
    new_inst = dataclasses.replace(old_inst, ports=new_ports)
    new_level = MemoryLevel(
        new_inst, old_level.serves, old_level.allocation, old_level.capacity_share
    )
    return _swap_level(accelerator, old_level, new_level)


def _scale_memory_capacity(
    accelerator: Accelerator, memory_name: str, size_bits: int
) -> Accelerator:
    """Copy of ``accelerator`` with ``memory_name`` resized."""
    old_level = accelerator.memory_by_name(memory_name)
    new_inst = dataclasses.replace(old_level.instance, size_bits=size_bits)
    new_level = MemoryLevel(
        new_inst, old_level.serves, old_level.allocation, old_level.capacity_share
    )
    return _swap_level(accelerator, old_level, new_level)


def _swap_level(
    accelerator: Accelerator, old: MemoryLevel, new: MemoryLevel
) -> Accelerator:
    chains = {}
    for op in Operand:
        chains[op] = tuple(
            new if lvl is old else lvl
            for lvl in accelerator.hierarchy.levels(op)
        )
    return dataclasses.replace(
        accelerator, hierarchy=MemoryHierarchy(chains)
    )


# Public aliases for the machine-variant builders (used by the advisor
# and by user scripts constructing what-if variants).
scale_memory_bandwidth = _scale_memory_bandwidth
scale_memory_capacity = _scale_memory_capacity
swap_level = _swap_level


class SensitivityAnalyzer:
    """Sweep a single hardware parameter and track the latency response."""

    def __init__(
        self,
        accelerator: Accelerator,
        spatial_unrolling,
        mapper_config: Optional[MapperConfig] = None,
        options: Optional[ModelOptions] = None,
        remap_per_point: bool = True,
        engine: Optional[EvaluationEngine] = None,
    ) -> None:
        self.accelerator = accelerator
        self.spatial_unrolling = spatial_unrolling
        self.mapper_config = mapper_config or MapperConfig(
            max_enumerated=100, samples=80
        )
        self.options = options or ModelOptions()
        #: Re-run the mapper for every swept point (the fair comparison —
        #: the best mapping changes with the hardware); False keeps the
        #: baseline machine's mapping fixed.
        self.remap_per_point = remap_per_point
        #: Engine lineage shared across every swept machine: per-machine
        #: engines are derived from it, pooling the cache, stats and
        #: executor for the whole sweep.
        self.engine = engine

    def _engine_for(self, machine: Accelerator) -> EvaluationEngine:
        if self.engine is None:
            self.engine = EvaluationEngine(
                machine, self.mapper_config.model_options
            )
        elif self.engine.accelerator is not machine:
            self.engine = self.engine.derive(accelerator=machine)
        return self.engine

    # ------------------------------------------------------------------ #

    def bandwidth_sweep(
        self,
        layer: LayerSpec,
        memory_name: str,
        bandwidths: Sequence[float],
    ) -> SensitivityCurve:
        """Latency vs. one memory's port bandwidth."""
        return self._sweep(
            layer,
            "bandwidth",
            bandwidths,
            lambda value: _scale_memory_bandwidth(
                self.accelerator, memory_name, value
            ),
        )

    def capacity_sweep(
        self,
        layer: LayerSpec,
        memory_name: str,
        sizes_bits: Sequence[int],
    ) -> SensitivityCurve:
        """Latency vs. one memory's capacity."""
        return self._sweep(
            layer,
            "size_bits",
            sizes_bits,
            lambda value: _scale_memory_capacity(
                self.accelerator, memory_name, int(value)
            ),
        )

    def _sweep(
        self,
        layer: LayerSpec,
        parameter: str,
        values: Sequence[float],
        build: Callable[[float], Accelerator],
    ) -> SensitivityCurve:
        baseline_mapping: Optional[Mapping] = None
        points: List[SensitivityPoint] = []
        for value in values:
            machine = build(value)
            engine = self._engine_for(machine)
            try:
                if self.remap_per_point or baseline_mapping is None:
                    mapper = TemporalMapper(
                        machine,
                        self.spatial_unrolling,
                        self.mapper_config,
                        engine=engine,
                    )
                    best = mapper.best_mapping(layer)
                    mapping = best.mapping
                    if baseline_mapping is None:
                        baseline_mapping = mapping
                else:
                    mapping = baseline_mapping
                # The reported curve uses the analyzer's own ModelOptions,
                # which may differ from the mapper's search options.
                report = engine.derive(options=self.options).evaluate(
                    mapping, validate=False
                )
            except MappingError:
                continue
            points.append(
                SensitivityPoint(
                    value=float(value),
                    total_cycles=report.total_cycles,
                    ss_overall=report.ss_overall,
                    utilization=report.utilization,
                )
            )
        return SensitivityCurve(parameter=parameter, points=tuple(points))
