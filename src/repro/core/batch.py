"""Structure-of-arrays batch evaluation of the 3-step latency model.

The scalar :class:`~repro.core.model.LatencyModel` walks one mapping at a
time through Steps 1-3. A DSE sweep evaluates thousands of mappings that
share one ``(accelerator, layer)`` pair, and everything mapping-dependent
in the model is closed-form arithmetic over loop-size prefix products — so
this module *lowers* a list of mappings into NumPy arrays (one lane per
mapping) and runs the same Step 1-3 formulas across all lanes at once:

* **Plan** (:class:`BatchPlan`): the accelerator + options fix the set of
  candidate transfer streams ("slots": W/I refills per level pair, O flush
  and partial-sum read-back per level pair, the compute-edge reads), their
  port endpoints, the shared-port groups and the served-memory/overlap
  structure. All of that is mapping-independent and computed once.
* **Lowering** (:meth:`BatchEvaluator.evaluate`): per-mapping loop dims,
  sizes and per-operand cuts become int64 arrays; prefix products give
  every footprint, period, ``Z`` and ir-run product as one gather each.
* **Steps 1-3**: Table I spans, Eq. (1)/(2) port combination and the
  served-memory max/chain rules run vectorized through the *same* kernels
  (:mod:`repro.core.kernels`) the scalar wrappers call — identical inputs
  hit identical instructions, which makes batch and scalar results
  bit-for-bit equal (the ``batch_scalar_parity`` property of
  :mod:`repro.verify` enforces this forever).

Only two pieces stay per-mapping Python: multi-window MUW unions that miss
the vectorized fast paths (delegated to
:func:`repro.core.windows.union_length_params`, optionally memoized in a
:class:`~repro.engine.cache.PartialResultCache` so neighboring mappings
re-use each other's window unions), and the Step-3 group integration
(:func:`repro.core.step3.integrate_stall_entries` over a handful of
entries).

Batch reports are *slim*: ``dtls`` and ``port_combinations`` are left
empty (the per-DTL anatomy would dominate materialization cost), while
``served_stalls`` and the ``integration`` — everything the run ledger,
rankings and bottleneck lists consume — are fully populated. A single
``engine.evaluate()`` call transparently upgrades a slim cached report to
a full one when the anatomy is requested.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import kernels
from repro.core.dtl import TrafficKind
from repro.core.report import LatencyReport
from repro.core.step1 import ModelOptions
from repro.core.step2 import ServedMemoryStall
from repro.core.step3 import StallIntegration, integrate_stall_entries
from repro.core.windows import union_length_params
from repro.hardware.accelerator import Accelerator
from repro.hardware.port import EndpointKind
from repro.workload.dims import ALL_DIMS, LoopDim
from repro.workload.layer import LayerSpec, LayerType
from repro.workload.operand import Operand


class BatchLoweringError(ValueError):
    """A mapping set that cannot be lowered into one SoA batch."""


# --------------------------------------------------------------------- #
# Static plan
# --------------------------------------------------------------------- #

@dataclasses.dataclass(frozen=True)
class _Endpoint:
    """One physical-port endpoint of a slot (static attributes)."""

    memory: str
    port: str
    endpoint: EndpointKind
    real_bw: float
    burst_bits: int

    @property
    def port_key(self) -> Tuple[str, str]:
        return (self.memory, self.port)


@dataclasses.dataclass(frozen=True)
class _Slot:
    """One candidate transfer stream of the (accelerator, options) pair.

    Slots follow the exact order :func:`repro.core.step1.build_dtls` emits
    transfers in, so the per-port member order (and with it every
    order-sensitive accumulation of Step 2) matches the scalar path.
    """

    operand: Operand
    kind: TrafficKind
    level: int
    served_memory: str
    double_buffered: bool
    endpoints: Tuple[_Endpoint, ...]

    @property
    def served_key(self) -> Tuple[Operand, int, str]:
        return (self.operand, self.level, self.served_memory)


class BatchPlan:
    """Mapping-independent structure shared by every batch of one engine."""

    def __init__(self, accelerator: Accelerator, options: ModelOptions) -> None:
        self.accelerator = accelerator
        self.options = options
        self.slots: List[_Slot] = []
        hierarchy = accelerator.hierarchy

        for operand in (Operand.W, Operand.I):
            chain = hierarchy.levels(operand)
            for lvl in range(len(chain) - 1):
                dst, src = chain[lvl], chain[lvl + 1]
                self.slots.append(
                    _Slot(
                        operand=operand,
                        kind=TrafficKind.REFILL,
                        level=lvl,
                        served_memory=dst.name,
                        double_buffered=dst.instance.double_buffered,
                        endpoints=(
                            self._endpoint(src, operand, EndpointKind.TL),
                            self._endpoint(dst, operand, EndpointKind.FH),
                        ),
                    )
                )
        chain = hierarchy.levels(Operand.O)
        for lvl in range(len(chain) - 1):
            low, high = chain[lvl], chain[lvl + 1]
            self.slots.append(
                _Slot(
                    operand=Operand.O,
                    kind=TrafficKind.FLUSH,
                    level=lvl,
                    served_memory=low.name,
                    double_buffered=low.instance.double_buffered,
                    endpoints=(
                        self._endpoint(low, Operand.O, EndpointKind.TH),
                        self._endpoint(high, Operand.O, EndpointKind.FL),
                    ),
                )
            )
            self.slots.append(
                _Slot(
                    operand=Operand.O,
                    kind=TrafficKind.PSUM_READBACK,
                    level=lvl,
                    served_memory=low.name,
                    double_buffered=low.instance.double_buffered,
                    endpoints=(
                        self._endpoint(high, Operand.O, EndpointKind.TL),
                        self._endpoint(low, Operand.O, EndpointKind.FH),
                    ),
                )
            )
        if options.compute_edges:
            for operand in (Operand.W, Operand.I):
                level0 = hierarchy.innermost(operand)
                self.slots.append(
                    _Slot(
                        operand=operand,
                        kind=TrafficKind.COMPUTE_READ,
                        level=0,
                        served_memory=level0.name,
                        double_buffered=level0.instance.double_buffered,
                        endpoints=(
                            self._endpoint(level0, operand, EndpointKind.TL),
                        ),
                    )
                )

        # Shared-port groups, members in global slot/endpoint order.
        self.port_groups: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
        for si, slot in enumerate(self.slots):
            for ei, ep in enumerate(slot.endpoints):
                self.port_groups.setdefault(ep.port_key, []).append((si, ei))
        self.group_keys = list(self.port_groups)
        self.group_index = {key: gi for gi, key in enumerate(self.group_keys)}

        # Served-memory structure: which slots (streams) feed each unit
        # memory, in stream-first-seen order; plus the static output order
        # and Step-3 overlap group of every served key.
        self.served_keys: List[Tuple[Operand, int, str]] = []
        self.served_streams: Dict[Tuple[Operand, int, str], List[int]] = {}
        for si, slot in enumerate(self.slots):
            if slot.served_key not in self.served_streams:
                self.served_keys.append(slot.served_key)
            self.served_streams.setdefault(slot.served_key, []).append(si)
        self.sorted_served = sorted(
            self.served_keys, key=lambda k: (str(k[0]), k[1])
        )
        self.served_gid = {
            key: accelerator.stall_overlap.group_of(key[2])
            for key in self.served_keys
        }
        self.depths = {op: hierarchy.depth(op) for op in Operand}

        # Flush/psum slot pairs per served key, for the chained rule.
        self.chain_pairs: Dict[Tuple[Operand, int, str], Tuple[int, int]] = {}
        flush: Dict[Tuple[Operand, int, str], int] = {}
        psum: Dict[Tuple[Operand, int, str], int] = {}
        for si, slot in enumerate(self.slots):
            if slot.kind is TrafficKind.FLUSH:
                flush[slot.served_key] = si
            elif slot.kind is TrafficKind.PSUM_READBACK:
                psum[slot.served_key] = si
        for key, fi in flush.items():
            if key in psum:
                self.chain_pairs[key] = (fi, psum[key])

    @staticmethod
    def _endpoint(level, operand: Operand, kind: EndpointKind) -> _Endpoint:
        port = level.port_for(operand, kind)
        return _Endpoint(
            memory=level.name,
            port=port.name,
            endpoint=kind,
            real_bw=port.bandwidth * level.instance.instances,
            burst_bits=level.instance.min_burst_bits,
        )


# --------------------------------------------------------------------- #
# Result container
# --------------------------------------------------------------------- #

@dataclasses.dataclass
class BatchResult:
    """SoA view of one evaluated batch (one lane per mapping).

    ``reports`` is populated only when the batch was evaluated with
    ``materialize=True``; the arrays are always present and are what the
    speed-critical sweeps consume.
    """

    mappings: Sequence
    cc_ideal: np.ndarray
    cc_spatial: np.ndarray
    ss_overall: np.ndarray
    preload: np.ndarray
    offload: np.ndarray
    scenario: np.ndarray
    total_cycles: np.ndarray
    utilization: np.ndarray
    reports: Optional[List[LatencyReport]] = None


# --------------------------------------------------------------------- #
# The evaluator
# --------------------------------------------------------------------- #

_DIM_INDEX = {dim: i for i, dim in enumerate(ALL_DIMS)}


class BatchEvaluator:
    """Evaluate many mappings of one layer on one accelerator at once.

    Parameters
    ----------
    accelerator / options:
        The design point and model conventions (same as
        :class:`~repro.core.model.LatencyModel`).
    muw_cache:
        Optional :class:`~repro.engine.cache.PartialResultCache` (or any
        object with ``get_or_compute(key, fn)``) memoizing multi-window
        MUW unions across batches — the delta-evaluation hook that lets
        neighboring mappings skip each other's Step-2 window merges.
    """

    def __init__(
        self,
        accelerator: Accelerator,
        options: Optional[ModelOptions] = None,
        muw_cache=None,
    ) -> None:
        self.accelerator = accelerator
        self.options = options or ModelOptions()
        self.plan = BatchPlan(accelerator, self.options)
        self.muw_cache = muw_cache
        # Without an external cache, memoize window unions locally: lanes
        # of one sweep overwhelmingly share (params, horizon) keys.
        self._local_muw: Dict[Tuple, float] = {}

    # -- public API ----------------------------------------------------- #

    def supports(self, mapping) -> bool:
        """Whether ``mapping`` can be lowered onto this plan."""
        cuts = mapping.temporal.cuts
        for op, depth in self.plan.depths.items():
            if len(cuts[op]) + 1 != depth:
                return False
        return True

    def evaluate(self, mappings: Sequence, materialize: bool = True) -> BatchResult:
        """Run Steps 1-3 across all ``mappings`` (same layer) at once."""
        if not mappings:
            return BatchResult(
                mappings=mappings,
                **{
                    name: np.empty(0)
                    for name in (
                        "cc_ideal", "cc_spatial", "ss_overall", "preload",
                        "offload", "scenario", "total_cycles", "utilization",
                    )
                },
                reports=[] if materialize else None,
            )
        layer = mappings[0].layer
        for m in mappings:
            if m.layer is not layer and m.layer != layer:
                raise BatchLoweringError("batch mappings must share one layer")
            if not self.supports(m):
                raise BatchLoweringError(
                    f"mapping assumes a different memory depth than "
                    f"{self.accelerator.name}"
                )
        low = _Lowered(self.plan, layer, mappings)
        step1 = self._step1(low)
        ss_group = self._step2_ports(low, step1)
        served = self._step2_served(low, step1, ss_group)
        return self._finalize(low, served, materialize)

    # -- Step 1 --------------------------------------------------------- #

    def _step1(self, low: "_Lowered") -> Dict[int, Dict[str, np.ndarray]]:
        """Per-slot Table-I arrays: period, repeats, spans, per-endpoint SS."""
        plan = self.plan
        opts = self.options
        out: Dict[int, Dict[str, np.ndarray]] = {}
        for si, slot in enumerate(plan.slots):
            if slot.kind is TrafficKind.COMPUTE_READ:
                n = low.n
                data_bits = (
                    low.compute_edge_elements(slot.operand)
                    * low.precision(slot.operand, partial=False)
                ).astype(np.float64)
                arrays = {
                    "period": np.ones(n, dtype=np.float64),
                    "repeats": low.total_cc,
                    "x_req": np.ones(n, dtype=np.float64),
                    "window_start": np.zeros(n, dtype=np.float64),
                    "data_bits": data_bits,
                    "active": np.ones(n, dtype=bool),
                }
            else:
                arrays = self._periodic_slot(low, slot)
            for ei, ep in enumerate(slot.endpoints):
                bits = arrays["data_bits"]
                padded = (
                    kernels.padded_bits(bits, ep.burst_bits)
                    if ep.burst_bits > 1
                    else bits
                )
                x_real = padded / ep.real_bw
                arrays[f"ss_u{ei}"] = kernels.stall_slack(
                    x_real, arrays["x_req"], arrays["repeats"]
                )
            arrays["muw_u"] = kernels.window_total(
                arrays["x_req"], arrays["repeats"]
            )
            out[si] = arrays
        return out

    def _periodic_slot(self, low: "_Lowered", slot: _Slot) -> Dict[str, np.ndarray]:
        opts = self.options
        op = slot.operand
        lvl = slot.level
        hi = low.cut(op, lvl)
        base = low.gather(low.prefix_all, hi)
        if opts.residency_extension:
            run_end = low.gather(low.nxt[op], hi)
            ext = low.gather(low.prefix_all, run_end) // base
        else:
            run_end = low.gather(low.nxt[op], hi)
            ext = np.ones(low.n, dtype=np.int64)
        period = base * ext
        period_f = period.astype(np.float64)
        z = low.total_cc // period

        lo = low.cut(op, lvl - 1) if lvl > 0 else np.zeros(low.n, dtype=np.int64)
        j0 = np.maximum(lo, low.gather(low.prv[op], hi) + 1)
        top_ir = low.gather(low.prefix_all, run_end) // low.gather(
            low.prefix_all, j0
        )
        x_req = kernels.x_req_span(period_f, top_ir, slot.double_buffered)

        if op is Operand.O:
            ir_above = low.gather(low.prefix_ir_o, np.full(low.n, low.L)) // (
                low.gather(low.prefix_ir_o, hi)
            )
            revisit = ir_above // ext
            partial = revisit > 1
            elements = low.footprint_elements(op, hi)
            data_bits = elements.astype(np.float64) * np.where(
                partial,
                low.precision(op, partial=True),
                low.precision(op, partial=False),
            )
            if slot.kind is TrafficKind.FLUSH:
                repeats = kernels.steady_repeats(z, opts.paper_period_count)
                window_start = period_f - x_req
            else:  # PSUM_READBACK
                repeats = np.where(
                    partial,
                    kernels.readback_repeats(z, np.maximum(revisit, 1)),
                    0,
                )
                window_start = np.zeros(low.n, dtype=np.float64)
        else:
            elements = low.footprint_elements(op, hi)
            data_bits = (
                elements * low.precision(op, partial=False)
            ).astype(np.float64)
            repeats = kernels.steady_repeats(z, opts.paper_period_count)
            window_start = period_f - x_req
        return {
            "period": period_f,
            "repeats": repeats,
            "x_req": x_req,
            "window_start": window_start,
            "data_bits": data_bits,
            "active": repeats > 0,
        }

    # -- Step 2: shared-port combination -------------------------------- #

    def _step2_ports(
        self, low: "_Lowered", step1: Dict[int, Dict[str, np.ndarray]]
    ) -> List[np.ndarray]:
        """``SS_comb`` per port group, as one array per group."""
        plan = self.plan
        horizon = low.horizon
        refined = self.options.combine_rule == "refined"
        ss_group: List[np.ndarray] = []
        for key in plan.group_keys:
            members = plan.port_groups[key]
            pos_sum = np.zeros(low.n)
            nonpos_demand = np.zeros(low.n)
            total_busy = np.zeros(low.n)
            has_pos = np.zeros(low.n, dtype=bool)
            active_count = np.zeros(low.n, dtype=np.int64)
            full_cover = np.zeros(low.n, dtype=bool)
            muw_sum = np.zeros(low.n)
            for si, ei in members:
                a = step1[si]
                mask = a["active"]
                ss_u = a[f"ss_u{ei}"]
                busy = a["muw_u"] + ss_u
                pos = mask & (ss_u > 0)
                pos_sum += np.where(pos, ss_u, 0.0)
                nonpos_demand += np.where(mask & (ss_u <= 0), busy, 0.0)
                total_busy += np.where(mask, busy, 0.0)
                has_pos |= pos
                active_count += mask
                full_cover |= (
                    mask
                    & kernels.isclose_f(a["x_req"], a["period"])
                    & (a["period"] * a["repeats"] >= horizon - 1e-9)
                )
                muw_sum += np.where(mask, a["muw_u"], 0.0)
            muw = np.where(
                active_count == 0,
                0.0,
                np.where(
                    full_cover,
                    horizon,
                    np.minimum(muw_sum, horizon),  # exact for count == 1
                ),
            )
            fallback = np.flatnonzero((active_count >= 2) & ~full_cover)
            if fallback.size:
                # Per-lane Python work: pull the member columns out of
                # NumPy once (scalar indexing into lists is ~10x cheaper).
                cols = [
                    (
                        step1[si]["active"].tolist(),
                        step1[si]["period"].tolist(),
                        step1[si]["x_req"].tolist(),
                        step1[si]["window_start"].tolist(),
                        step1[si]["repeats"].tolist(),
                    )
                    for si, __ in members
                ]
                horizon_list = horizon.tolist()
                for i in fallback.tolist():
                    muw[i] = self._union(cols, i, horizon_list[i])
            ss_group.append(
                kernels.combine_ss(
                    pos_sum, nonpos_demand, has_pos, muw, total_busy, refined
                )
            )
        return ss_group

    def _union(self, cols: List[Tuple], i: int, horizon: float) -> float:
        """Multi-window MUW union for one mapping lane (memoized)."""
        params = tuple(
            (period[i], x_req[i], start[i], repeats[i])
            for active, period, x_req, start, repeats in cols
            if active[i]
        )
        key = ("muw", params, horizon)
        if self.muw_cache is not None:
            return self.muw_cache.get_or_compute(
                key, lambda: union_length_params(params, horizon)
            )
        hit = self._local_muw.get(key)
        if hit is None:
            hit = union_length_params(params, horizon)
            if len(self._local_muw) < 200_000:
                self._local_muw[key] = hit
        return hit

    # -- Step 2: served-memory combination ------------------------------ #

    def _step2_served(
        self,
        low: "_Lowered",
        step1: Dict[int, Dict[str, np.ndarray]],
        ss_group: List[np.ndarray],
    ) -> Dict[Tuple[Operand, int, str], Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per served key: (ss, limiting-port group index, present mask)."""
        plan = self.plan
        rule = self.options.served_rule

        # Per-stream (slot) max over its endpoints' port stalls.
        stream_ss: Dict[int, np.ndarray] = {}
        stream_port: Dict[int, np.ndarray] = {}
        for si, slot in enumerate(plan.slots):
            g0 = plan.group_index[slot.endpoints[0].port_key]
            cur_ss = ss_group[g0]
            cur_port = np.full(low.n, g0, dtype=np.int64)
            for ep in slot.endpoints[1:]:
                g1 = plan.group_index[ep.port_key]
                better = ss_group[g1] > cur_ss
                cur_ss = np.where(better, ss_group[g1], cur_ss)
                cur_port = np.where(better, g1, cur_port)
            stream_ss[si] = cur_ss
            stream_port[si] = cur_port

        served: Dict[
            Tuple[Operand, int, str], Tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        for key in plan.served_keys:
            ss_acc = port_acc = present = None
            for si in plan.served_streams[key]:
                active = step1[si]["active"]
                ss = stream_ss[si]
                port = stream_port[si]
                if ss_acc is None:
                    ss_acc = np.where(active, ss, 0.0)
                    port_acc = port
                    present = active.copy()
                    continue
                if rule == "sum":
                    total = np.maximum(ss_acc, 0.0) + np.maximum(ss, 0.0)
                    total = np.where(
                        total == 0.0, np.maximum(ss_acc, ss), total
                    )
                    both = present & active
                    only_new = active & ~present
                    better = ss > ss_acc  # vs the accumulator *before* update
                    ss_acc = np.where(
                        both, total, np.where(only_new, ss, ss_acc)
                    )
                    port_acc = np.where(
                        (both & better) | only_new, port, port_acc
                    )
                else:  # "paper" and the base of "chained"
                    replace = active & (~present | (ss > ss_acc))
                    ss_acc = np.where(replace, ss, ss_acc)
                    port_acc = np.where(replace, port, port_acc)
                present = present | active
            served[key] = (ss_acc, port_acc, present)

        if rule == "chained":
            for key, (fi, pi) in plan.chain_pairs.items():
                f, p = step1[fi], step1[pi]
                eligible = (
                    f["active"]
                    & p["active"]
                    & (f["x_req"] < f["period"] - 1e-9)
                    & (p["x_req"] < p["period"] - 1e-9)
                )
                chain = np.maximum(0.0, stream_ss[fi]) + np.maximum(
                    0.0, stream_ss[pi]
                )
                ss_acc, port_acc, present = served[key]
                apply = eligible & (chain > 0) & (chain > ss_acc)
                served[key] = (
                    np.where(apply, chain, ss_acc),
                    port_acc,
                    present,
                )
        return served

    # -- Step 3 + assembly ---------------------------------------------- #

    def _finalize(
        self,
        low: "_Lowered",
        served: Dict[
            Tuple[Operand, int, str], Tuple[np.ndarray, np.ndarray, np.ndarray]
        ],
        materialize: bool,
    ) -> BatchResult:
        plan = self.plan
        n = low.n
        layer = low.layer

        preload = self._preload(low)
        offload = self._offload(low)

        # Per-mapping Step 3 over the (few) present served entries. Columns
        # leave NumPy once; the per-lane loop then touches plain lists.
        group_key_list = plan.group_keys
        sorted_cols = [
            (
                key,
                plan.served_gid[key],
                served[key][0].tolist(),
                served[key][1].tolist(),
                served[key][2].tolist(),
            )
            for key in plan.sorted_served
        ]
        ss_overall_list: List[float] = []
        served_out: List[Tuple[ServedMemoryStall, ...]] = []
        integrations: List[StallIntegration] = []
        for i in range(n):
            entries = []
            stalls: List[ServedMemoryStall] = []
            for key, gid, ss_col, port_col, present in sorted_cols:
                if not present[i]:
                    continue
                port_key = group_key_list[port_col[i]]
                ss = ss_col[i]
                entries.append((gid, ss, port_key))
                if materialize:
                    stalls.append(
                        ServedMemoryStall(key[0], key[1], key[2], ss, port_key)
                    )
            total, per_group = integrate_stall_entries(entries)
            ss_overall_list.append(total)
            if materialize:
                dominant = [
                    stalls[worst]
                    for __, contribution, worst in per_group
                    if contribution > 0
                ]
                integrations.append(
                    StallIntegration(
                        ss_overall=total,
                        group_stalls=tuple(
                            (gid, c) for gid, c, __ in per_group
                        ),
                        dominant=tuple(
                            sorted(dominant, key=lambda s: -s.ss)
                        ),
                    )
                )
                served_out.append(tuple(stalls))
        ss_overall = np.asarray(ss_overall_list, dtype=np.float64)

        array_size = self.accelerator.mac_array.size
        cc_ideal_val = layer.total_macs / array_size
        cc_ideal = np.full(n, cc_ideal_val)
        cc_spatial = low.total_cc
        scenario = kernels.scenario_code(
            cc_ideal, cc_spatial.astype(np.float64), ss_overall
        )
        # Same association order as LatencyReport.total_cycles:
        # (cc_spatial + ss_overall) + preload + offload.
        total_cycles = (
            (cc_spatial + ss_overall) + preload
        ) + offload
        utilization = cc_ideal / total_cycles

        reports: Optional[List[LatencyReport]] = None
        if materialize:
            layer_name = layer.name or str(layer.layer_type)
            accel_name = self.accelerator.name
            reports = [
                LatencyReport(
                    layer_name=layer_name,
                    accelerator_name=accel_name,
                    cc_ideal=cc_ideal_val,
                    cc_spatial=spatial_i,
                    ss_overall=ss_i,
                    preload=pre_i,
                    offload=off_i,
                    scenario=scen_i,
                    dtls=(),
                    port_combinations={},
                    served_stalls=stalls_i,
                    integration=integ_i,
                )
                for spatial_i, ss_i, pre_i, off_i, scen_i, stalls_i, integ_i in zip(
                    cc_spatial.tolist(),
                    ss_overall_list,
                    preload.tolist(),
                    offload.tolist(),
                    scenario.tolist(),
                    served_out,
                    integrations,
                )
            ]
        return BatchResult(
            mappings=low.mappings,
            cc_ideal=cc_ideal,
            cc_spatial=cc_spatial,
            ss_overall=ss_overall,
            preload=preload,
            offload=offload,
            scenario=scenario,
            total_cycles=total_cycles,
            utilization=utilization,
            reports=reports,
        )

    # -- pre/post phases ------------------------------------------------ #

    def _preload(self, low: "_Lowered") -> np.ndarray:
        accelerator = self.accelerator
        hierarchy = accelerator.hierarchy
        max_depth = max(hierarchy.depth(op) for op in (Operand.W, Operand.I))
        total = np.zeros(low.n)

        if accelerator.offchip_bandwidth is not None:
            bits = np.zeros(low.n)
            for operand in (Operand.W, Operand.I):
                outer = hierarchy.depth(operand) - 1
                bits = bits + low.footprint_bits(operand, outer)
            total += bits / accelerator.offchip_bandwidth

        for stage in range(1, max_depth):
            port_bits: Dict[Tuple[str, str], Tuple[np.ndarray, float]] = {}
            for operand in (Operand.W, Operand.I):
                depth = hierarchy.depth(operand)
                dst_index = depth - 1 - stage
                if dst_index < 0:
                    continue
                src = hierarchy.levels(operand)[dst_index + 1]
                dst = hierarchy.levels(operand)[dst_index]
                bits = low.footprint_bits(operand, dst_index).astype(np.float64)
                for level, kind in ((src, EndpointKind.TL), (dst, EndpointKind.FH)):
                    port = level.port_for(operand, kind)
                    key = (level.name, port.name)
                    bw = port.bandwidth * level.instance.instances
                    prev_bits, __ = port_bits.get(key, (0.0, bw))
                    port_bits[key] = (prev_bits + bits, bw)
            stage_time = np.zeros(low.n)
            for bits, bw in port_bits.values():
                stage_time = np.maximum(stage_time, bits / bw)
            total = total + stage_time
        return total

    def _offload(self, low: "_Lowered") -> np.ndarray:
        hierarchy = self.accelerator.hierarchy
        chain = hierarchy.levels(Operand.O)
        total = np.zeros(low.n)
        p_final = low.precision(Operand.O, partial=False)
        for lvl in range(len(chain) - 1):
            src, dst = chain[lvl], chain[lvl + 1]
            hi = low.cut(Operand.O, lvl)
            bits = (
                low.footprint_elements(Operand.O, hi) * p_final
            ).astype(np.float64)
            src_bw = (
                src.port_for(Operand.O, EndpointKind.TH).bandwidth
                * src.instance.instances
            )
            dst_bw = (
                dst.port_for(Operand.O, EndpointKind.FL).bandwidth
                * dst.instance.instances
            )
            total = total + bits / min(src_bw, dst_bw)
        return total


# --------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------- #

class _Lowered:
    """Int64 SoA view of one batch: loops, cuts, prefix products, masks."""

    def __init__(self, plan: BatchPlan, layer: LayerSpec, mappings: Sequence) -> None:
        self.plan = plan
        self.layer = layer
        self.mappings = mappings
        n = self.n = len(mappings)
        L = self.L = max(len(m.temporal.loops) for m in mappings)

        dims = np.zeros((n, L), dtype=np.int64)
        sizes = np.ones((n, L), dtype=np.int64)
        for i, m in enumerate(mappings):
            loops = m.temporal.loops
            for j, loop in enumerate(loops):
                dims[i, j] = _DIM_INDEX[loop.dim]
                sizes[i, j] = loop.size
        self.pad = np.zeros((n, L), dtype=bool)
        for i, m in enumerate(mappings):
            self.pad[i, len(m.temporal.loops):] = True

        # Prefix products of all loops and of each dimension separately.
        self.prefix_all = np.ones((n, L + 1), dtype=np.int64)
        np.cumprod(sizes, axis=1, out=self.prefix_all[:, 1:])
        self.prefix_dim = []
        for di in range(len(ALL_DIMS)):
            p = np.ones((n, L + 1), dtype=np.int64)
            np.cumprod(np.where(dims == di, sizes, 1), axis=1, out=p[:, 1:])
            self.prefix_dim.append(p)
        self.total_cc = self.prefix_all[:, L]
        self.horizon = self.total_cc.astype(np.float64)

        # Per-operand irrelevance of every loop position (pr counts as r),
        # and the run-boundary helper indices:
        #   nxt[:, j]  = first relevant position >= j   (L when none)
        #   prv[:, j]  = last relevant position < j     (-1 when none)
        # Padding positions are size-1 and marked irrelevant — they extend
        # runs without changing any product.
        self.ir_mask = {}
        self.nxt = {}
        self.prv = {}
        positions = np.arange(L, dtype=np.int64)
        for operand in Operand:
            ir_of_dim = np.array(
                [
                    layer.relevance(operand, dim, pr_as_r=True) == "ir"
                    for dim in ALL_DIMS
                ]
            )
            ir = ir_of_dim[dims] | self.pad
            self.ir_mask[operand] = ir
            rel = ~ir
            idx = np.where(rel, positions, L)
            nxt = np.empty((n, L + 1), dtype=np.int64)
            nxt[:, L] = L
            if L:
                nxt[:, :L] = np.minimum.accumulate(idx[:, ::-1], axis=1)[:, ::-1]
            prv = np.empty((n, L + 1), dtype=np.int64)
            prv[:, 0] = -1
            if L:
                prv[:, 1:] = np.maximum.accumulate(
                    np.where(rel, positions, -1), axis=1
                )
            self.nxt[operand] = nxt
            self.prv[operand] = prv

        # Product of *all* output-irrelevant loop sizes up to each position
        # (for the revisit factor of partial sums).
        self.prefix_ir_o = np.ones((n, L + 1), dtype=np.int64)
        np.cumprod(
            np.where(self.ir_mask[Operand.O], sizes, 1),
            axis=1,
            out=self.prefix_ir_o[:, 1:],
        )

        # Cuts per operand/boundary and spatial unroll factors per dim.
        self.cuts = {
            operand: np.array(
                [m.temporal.cuts[operand] for m in mappings], dtype=np.int64
            ).reshape(n, -1)
            for operand in Operand
        }
        self.spatial = np.array(
            [[m.spatial.factor(dim) for dim in ALL_DIMS] for m in mappings],
            dtype=np.int64,
        )
        self.size_vec = np.array(
            [layer.size(dim) for dim in ALL_DIMS], dtype=np.int64
        )
        self._elements_cache: Dict[Tuple[Operand, int], np.ndarray] = {}

    # -- helpers -------------------------------------------------------- #

    @staticmethod
    def gather(table: np.ndarray, idx: np.ndarray) -> np.ndarray:
        return np.take_along_axis(table, idx[:, None], axis=1)[:, 0]

    def cut(self, operand: Operand, boundary: int) -> np.ndarray:
        return self.cuts[operand][:, boundary]

    def precision(self, operand: Operand, partial: bool) -> int:
        return self.layer.precision.of(operand, partial=partial)

    def _extents_at(self, hi: np.ndarray) -> np.ndarray:
        """(n, 7) clamped temporal-x-spatial extents of every dim at ``hi``."""
        ext = np.empty((self.n, len(ALL_DIMS)), dtype=np.int64)
        for di in range(len(ALL_DIMS)):
            ext[:, di] = self.gather(self.prefix_dim[di], hi) * self.spatial[:, di]
        return np.minimum(ext, self.size_vec)

    def _elements_from_extents(self, operand: Operand, ext: np.ndarray) -> np.ndarray:
        """Vector form of :func:`repro.mapping.footprint.tile_elements`."""
        layer = self.layer
        depthwise = layer.layer_type is LayerType.DEPTHWISE
        d = _DIM_INDEX
        if operand is Operand.W:
            channels = 1 if depthwise else ext[:, d[LoopDim.C]]
            return (
                ext[:, d[LoopDim.K]]
                * channels
                * ext[:, d[LoopDim.FX]]
                * ext[:, d[LoopDim.FY]]
            )
        if operand is Operand.O:
            return (
                ext[:, d[LoopDim.B]]
                * ext[:, d[LoopDim.K]]
                * ext[:, d[LoopDim.OX]]
                * ext[:, d[LoopDim.OY]]
            )
        ix = (
            (ext[:, d[LoopDim.OX]] - 1) * layer.stride_x
            + (ext[:, d[LoopDim.FX]] - 1) * layer.dilation_x
            + 1
        )
        iy = (
            (ext[:, d[LoopDim.OY]] - 1) * layer.stride_y
            + (ext[:, d[LoopDim.FY]] - 1) * layer.dilation_y
            + 1
        )
        channels = ext[:, d[LoopDim.K]] if depthwise else ext[:, d[LoopDim.C]]
        return ext[:, d[LoopDim.B]] * channels * ix * iy

    def footprint_elements(self, operand: Operand, hi: np.ndarray) -> np.ndarray:
        return self._elements_from_extents(operand, self._extents_at(hi))

    def footprint_bits(self, operand: Operand, level: int) -> np.ndarray:
        """``Mem_DATA`` bits at ``level``; O uses psum precision when partial.

        Matches :meth:`repro.mapping.mapping.Mapping.footprint_bits` for
        W/I (the only operands pre/offload and refills ask for).
        """
        key = (operand, level)
        cached = self._elements_cache.get(key)
        if cached is None:
            hi = (
                self.cut(operand, level)
                if level < self.cuts[operand].shape[1]
                else np.full(self.n, self.L, dtype=np.int64)
            )
            cached = self.footprint_elements(operand, hi)
            self._elements_cache[key] = cached
        return cached * self.precision(operand, partial=False)

    def compute_edge_elements(self, operand: Operand) -> np.ndarray:
        """Per-cycle tile elements: spatial unrolling only (no loops)."""
        ext = np.minimum(self.spatial, self.size_vec)
        return self._elements_from_extents(operand, ext)
