"""Array kernels shared by the scalar model and the batch evaluator.

Every closed-form expression of the 3-step model (Table I spans, Eq. (1)/(2)
port combination, interval-union MUW lengths, the Fig. 1(b) scenario split)
lives here exactly once, written against NumPy ufunc semantics so the same
function evaluates a single mapping (0-d inputs) or a structure-of-arrays
batch of thousands (1-d inputs). The scalar wrappers in ``step1``/``step2``/
``dtl``/``windows`` and the vectorized :mod:`repro.core.batch` evaluator both
call these kernels, which is what makes batch-vs-scalar agreement *bit-for-
bit* rather than approximate: for identical inputs, identical instructions.

Floating-point ground rules observed throughout (and relied on by the
parity property in :mod:`repro.verify`):

* ``np.where(c, a, b)`` on float64 equals the ``if``/``else`` it replaces;
* masked accumulation ``acc + np.where(mask, x, 0.0)`` in member order
  equals the Python ``sum()`` that skips masked members (``y + 0.0 == y``);
* ``np.maximum``/``np.minimum`` equal ``max``/``min`` for non-NaN floats;
* integer prefix products and exact divisions stay in int64 (< 2**53);
* anything data-dependent on *reduction order* (the interval-union sum)
  is a single kernel here, so every caller inherits one canonical order.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Interval-count threshold below which the union merge runs as a plain
#: Python sweep (cheaper than NumPy dispatch for tiny unions). The branch
#: is chosen by the *input*, never by the caller, so the scalar and batch
#: paths always take the same branch for the same window set.
_SMALL_MERGE = 64


# --------------------------------------------------------------------- #
# Step 1 — Table I quantities
# --------------------------------------------------------------------- #

def steady_repeats(z_total, paper_count: bool):
    """Transfers landing inside the computation phase (``Z`` convention).

    ``z_total <= 1`` means the tile is resident for the whole layer
    (preload/offload only). Otherwise the paper counts every period; the
    default convention discounts the one covered by pre-loading.
    """
    z = np.asarray(z_total)
    steady = z if paper_count else z - 1
    return np.where(z <= 1, 0, steady)


def readback_repeats(z_total, revisit_factor):
    """Partial-sum read-backs: every period except the final-visit ones."""
    z = np.asarray(z_total)
    return z - z // np.asarray(revisit_factor)


def x_req_span(period, top_ir_product, double_buffered):
    """Table I: allowed updating span ``X_REQ`` per period.

    Double-buffered memories update the shadow half at any time
    (``X_REQ = period``); non-double-buffered memories with an irrelevant
    loop run on top may only update after the data's last reuse
    (``X_REQ = period / top-ir product``, so ``ReqBW = BW0 x top-ir``).
    """
    p = np.asarray(period, dtype=np.float64)
    top = np.asarray(top_ir_product)
    return np.where(np.asarray(double_buffered) | (top <= 1), p, p / top)


def padded_bits(data_bits, burst_bits):
    """Transfer size rounded up to whole bursts (words)."""
    bits = np.asarray(data_bits, dtype=np.float64)
    burst = np.asarray(burst_bits)
    return np.where(burst <= 1, bits, np.ceil(bits / np.maximum(burst, 1)) * burst)


def stall_slack(x_real, x_req, repeats):
    """Per-DTL stall (+) or slack (-): ``SS_u = (X_REAL - X_REQ) * Z``."""
    return (x_real - x_req) * repeats


def window_total(x_req, repeats):
    """Total allowed updating window ``MUW_u = X_REQ * Z``."""
    return x_req * repeats


# --------------------------------------------------------------------- #
# Step 2 — Eq. (1)/(2) shared-port combination
# --------------------------------------------------------------------- #

def combine_ss(
    positive_sum,
    nonpos_demand,
    has_positive,
    muw_comb,
    total_busy,
    refined: bool,
):
    """``SS_comb`` of one shared port from its members' aggregates.

    * Eq. (2) (some ``SS_u > 0``): positive stalls pass through and only
      the non-positive rest may absorb into the combined window.
    * Eq. (1) (all ``SS_u <= 0``): stall iff summed busy time exceeds the
      combined window.
    * ``refined`` additionally lower-bounds by the port's aggregate busy
      deficit ``sum(X_REAL * Z) - MUW_comb`` over *all* members.
    """
    eq2 = positive_sum + np.maximum(0.0, nonpos_demand - muw_comb)
    eq1 = nonpos_demand - muw_comb
    ss = np.where(has_positive, eq2, eq1)
    if refined:
        ss = np.maximum(ss, total_busy - muw_comb)
    return ss


# --------------------------------------------------------------------- #
# MUW interval-union machinery
# --------------------------------------------------------------------- #

def window_intervals(
    period: float, active: float, start: float, count: int, horizon: float
) -> Tuple[np.ndarray, np.ndarray]:
    """The first ``count`` absolute (begin, end) spans of one window.

    Ends are clipped to ``horizon``; spans starting at or past the horizon
    are dropped (begin positions ``k * period + start`` are monotone in
    ``k``, so the drop matches the scalar early-``break``).
    """
    lo = np.arange(count, dtype=np.float64) * period + start
    lo = lo[lo < horizon]
    hi = np.minimum(lo + active, horizon)
    return lo, hi


def merged_interval_length(lo: np.ndarray, hi: np.ndarray) -> float:
    """Total length of the union of ``[lo, hi)`` intervals.

    Sort by (begin, end), sweep a running maximum of ends, and sum the
    per-run extents. The reduction order over runs is fixed by this kernel
    (sequential for small unions, pairwise ``np.sum`` for large ones) and
    depends only on the input intervals — every caller gets the same bits.
    """
    n = lo.shape[0]
    if n == 0:
        return 0.0
    if n == 1:
        return float(hi[0] - lo[0])
    if n <= _SMALL_MERGE:
        total = 0.0
        pairs = sorted(zip(lo.tolist(), hi.tolist()))
        cur_lo, cur_hi = pairs[0]
        for b, e in pairs[1:]:
            if b > cur_hi:
                total += cur_hi - cur_lo
                cur_lo, cur_hi = b, e
            else:
                cur_hi = max(cur_hi, e)
        total += cur_hi - cur_lo
        return total
    order = np.lexsort((hi, lo))
    lo_s = lo[order]
    hi_s = hi[order]
    cummax = np.maximum.accumulate(hi_s)
    # A new run opens where an interval begins past everything merged so far.
    starts = np.empty(n, dtype=bool)
    starts[0] = True
    np.greater(lo_s[1:], cummax[:-1], out=starts[1:])
    start_idx = np.flatnonzero(starts)
    end_idx = np.empty_like(start_idx)
    end_idx[:-1] = start_idx[1:] - 1
    end_idx[-1] = n - 1
    lengths = cummax[end_idx] - lo_s[start_idx]
    return float(np.sum(lengths))


# --------------------------------------------------------------------- #
# Fig. 1(b) utilization scenario
# --------------------------------------------------------------------- #

def isclose_f(a, b, rel_tol: float = 1e-9):
    """Vectorized ``math.isclose(a, b)`` (symmetric relative tolerance)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return np.abs(a - b) <= rel_tol * np.maximum(np.abs(a), np.abs(b))


def scenario_code(cc_ideal, cc_spatial, temporal_stall):
    """Classify into the four Fig. 1(b) scenarios (1-4)."""
    spatially_full = isclose_f(cc_ideal, cc_spatial)
    temporally_full = np.asarray(temporal_stall) <= 0
    return np.where(
        spatially_full,
        np.where(temporally_full, 1, 3),
        np.where(temporally_full, 2, 4),
    )
