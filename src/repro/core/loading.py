"""Data pre-loading and offloading latency (the phases around computation).

"We define the data pre-loading as the data initialization step before
computation starts, and the data offloading as the final round of outputs
writing back to memory after computation finishes. We can derive their
latency based on the required data transfer amount and the related
memories' BW." (Section III)

Pre-loading fills every W/I level's *first tile*, stage by stage from the
outermost level inwards. Within one stage (one hop depth) transfers that
share a physical port serialize — the sum of their bits divides the port
bandwidth — while transfers on disjoint ports overlap (max). Stages
themselves serialize because a level cannot forward data it has not
received. Offloading drains the last (final-precision) output tile up the
output chain the same way.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.hardware.accelerator import Accelerator
from repro.hardware.port import EndpointKind
from repro.mapping.mapping import Mapping
from repro.workload.operand import Operand


def _stage_time(port_bits: Dict[Tuple[str, str], Tuple[float, float]]) -> float:
    """Max over ports of (total bits on port / port bandwidth)."""
    time = 0.0
    for bits, bw in port_bits.values():
        time = max(time, bits / bw)
    return time


def preload_cycles(accelerator: Accelerator, mapping: Mapping) -> float:
    """Cycles to initialize the W and I hierarchies before compute starts."""
    hierarchy = accelerator.hierarchy
    max_depth = max(hierarchy.depth(op) for op in (Operand.W, Operand.I))
    total = 0.0

    if accelerator.offchip_bandwidth is not None:
        bits = 0.0
        for operand in (Operand.W, Operand.I):
            outer = hierarchy.depth(operand) - 1
            bits += mapping.footprint_bits(operand, outer)
        total += bits / accelerator.offchip_bandwidth

    # Stage s fills the level that is s hops below each operand's outermost.
    for stage in range(1, max_depth):
        port_bits: Dict[Tuple[str, str], Tuple[float, float]] = {}
        for operand in (Operand.W, Operand.I):
            depth = hierarchy.depth(operand)
            dst_index = depth - 1 - stage
            if dst_index < 0:
                continue
            src = hierarchy.levels(operand)[dst_index + 1]
            dst = hierarchy.levels(operand)[dst_index]
            bits = float(mapping.footprint_bits(operand, dst_index))
            for level, kind in ((src, EndpointKind.TL), (dst, EndpointKind.FH)):
                port = level.port_for(operand, kind)
                key = (level.name, port.name)
                bw = port.bandwidth * level.instance.instances
                prev_bits, __ = port_bits.get(key, (0.0, bw))
                port_bits[key] = (prev_bits + bits, bw)
        total += _stage_time(port_bits)
    return total


def offload_cycles(accelerator: Accelerator, mapping: Mapping) -> float:
    """Cycles to drain the last output tile after compute finishes."""
    hierarchy = accelerator.hierarchy
    chain = hierarchy.levels(Operand.O)
    total = 0.0
    for lvl in range(len(chain) - 1):
        src, dst = chain[lvl], chain[lvl + 1]
        # The final round is always at final-output precision.
        bits = float(_final_bits(mapping, lvl))
        src_bw = src.port_for(Operand.O, EndpointKind.TH).bandwidth * src.instance.instances
        dst_bw = dst.port_for(Operand.O, EndpointKind.FL).bandwidth * dst.instance.instances
        total += bits / min(src_bw, dst_bw)
    return total


def _final_bits(mapping: Mapping, level: int) -> int:
    """Last-tile size at ``level`` in final-output precision."""
    from repro.mapping.footprint import operand_footprint_elements

    elements = operand_footprint_elements(
        mapping.layer, Operand.O, mapping.temporal, mapping.spatial, level
    )
    return elements * mapping.layer.precision.of(Operand.O, partial=False)
