"""The uniform intra-layer latency model (the paper's core contribution).

Public entry points:

* :class:`~repro.core.model.LatencyModel` — the full 3-step
  memory-type / bandwidth / sharing-aware model;
* :class:`~repro.core.baseline.BwUnawareModel` — the prior-art baseline
  that ignores temporal stalls;
* :class:`~repro.core.report.LatencyReport` — the result object with the
  Fig. 1 / Fig. 7 breakdown and the stall anatomy;
* the step modules (:mod:`~repro.core.step1`, :mod:`~repro.core.step2`,
  :mod:`~repro.core.step3`) for fine-grained access to DTL attributes,
  port combinations and the integration.
"""

from repro.core.baseline import BwUnawareModel, ideal_cycles
from repro.core.dtl import DTL, TrafficKind, Transfer
from repro.core.model import LatencyModel
from repro.core.report import LatencyBreakdown, LatencyReport
from repro.core.scenarios import ScenarioQuantities, classify
from repro.core.step1 import ModelOptions, build_dtls
from repro.core.step2 import (
    PortCombination,
    ServedMemoryStall,
    combine_all_ports,
    combine_port,
    served_memory_stalls,
)
from repro.core.step3 import StallIntegration, integrate_stalls
from repro.core.windows import PeriodicWindow, intersection_length, union_length

__all__ = [
    "BwUnawareModel",
    "DTL",
    "LatencyBreakdown",
    "LatencyModel",
    "LatencyReport",
    "ModelOptions",
    "PeriodicWindow",
    "PortCombination",
    "ScenarioQuantities",
    "ServedMemoryStall",
    "StallIntegration",
    "TrafficKind",
    "Transfer",
    "build_dtls",
    "classify",
    "combine_all_ports",
    "combine_port",
    "ideal_cycles",
    "integrate_stalls",
    "intersection_length",
    "served_memory_stalls",
    "union_length",
]
