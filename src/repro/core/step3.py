"""Step 3 — Integrate per-memory stalls into the overall temporal stall.

"SS_overall accounts for the parallel memory operation as well as multiple
stall sources across all memory levels. For the memory operations that can
be overlapped, SS_overall takes the maximum of SS_comb [...]; otherwise,
SS_overall is the sum of all stalls [...]. Users can customize this memory
parallel operation constraint based on the design." (Section III-D)

The :class:`~repro.hardware.accelerator.StallOverlapConfig` partitions the
memory modules into concurrent groups: inside a group stalls hide under
each other (max); the groups themselves serialize (sum). Each group's
contribution is clamped at zero before summing so that one group's slack
never cancels another group's stall — the same no-cancellation philosophy
as Eq. (2) — and the final ``SS_overall`` is clamped at zero per the paper
("if calculated SS_overall <= 0, we take zero").

One refinement on top of the printed rule: the cross-group sum never
charges the same *physical port* twice. A port shared by several unit
memories (a single-ported global buffer serving W, I and O) produces one
``SS_comb`` that Step 2 hands to every served memory; if the overlap
config then places those memories in different groups, summing the copies
would bill one port's busy time once per group. The cycle-level simulator
confirms the stall is paid once (the port can only be busy once), so each
group only contributes a port's stall *in excess* of what earlier groups
already charged to that port. Groups limited by disjoint ports are
unaffected.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.core.step2 import ServedMemoryStall
from repro.hardware.accelerator import StallOverlapConfig
from repro.observability.tracer import current_tracer


@dataclasses.dataclass(frozen=True)
class StallIntegration:
    """The Step-3 result: overall stall plus its per-group breakdown."""

    ss_overall: float
    group_stalls: Tuple[Tuple[int, float], ...]
    dominant: Tuple[ServedMemoryStall, ...]

    def describe(self) -> str:
        """One-line summary for reports."""
        groups = ", ".join(f"g{gid}={ss:.1f}" for gid, ss in self.group_stalls)
        return f"SS_overall={self.ss_overall:.1f} cc ({groups or 'no stall sources'})"


def integrate_stall_entries(
    entries: Sequence[Tuple[int, float, Hashable]],
) -> Tuple[float, List[Tuple[int, float, int]]]:
    """The Step-3 integration over plain ``(group, ss, port)`` entries.

    This is the single source of truth for the overlap-group/port-charge
    arithmetic; :func:`integrate_stalls` wraps it over
    :class:`~repro.core.step2.ServedMemoryStall` objects and the batch
    evaluator calls it directly on array-extracted tuples. Returns
    ``(ss_overall, per_group)`` with one ``(gid, contribution, worst_index)``
    triple per overlap group in ascending group order; ``worst_index``
    points into ``entries``.
    """
    groups: Dict[int, List[int]] = {}
    for idx, (gid, __, ___) in enumerate(entries):
        groups.setdefault(gid, []).append(idx)

    per_group: List[Tuple[int, float, int]] = []
    charged: Dict[Hashable, float] = {}
    total = 0.0
    for gid in sorted(groups):
        members = groups[gid]
        # A member's effective stall discounts what earlier groups
        # already billed to its limiting physical port.
        worst = max(
            members,
            key=lambda i: entries[i][1] - charged.get(entries[i][2], 0.0),
        )
        __, ss, port = entries[worst]
        contribution = max(0.0, ss - charged.get(port, 0.0))
        if contribution > 0:
            charged[port] = charged.get(port, 0.0) + contribution
        per_group.append((gid, contribution, worst))
        total += contribution
    return max(0.0, total), per_group


def integrate_stalls(
    served: Sequence[ServedMemoryStall],
    overlap: StallOverlapConfig = StallOverlapConfig.all_concurrent(),
) -> StallIntegration:
    """Combine unit-memory stalls into ``SS_overall``.

    Returns the integration together with the *dominant* stall source of
    every group — the bottleneck list that Section V's case studies read
    off to decide what to fix (raise RealBW or reduce the traffic).
    """
    entries = [
        (overlap.group_of(stall.memory), stall.ss, stall.limiting_port)
        for stall in served
    ]

    tracer = current_tracer()
    with tracer.span("model.step3") as span:
        ss_overall, per_group = integrate_stall_entries(entries)
        group_stalls: List[Tuple[int, float]] = []
        dominant: List[ServedMemoryStall] = []
        for gid, contribution, worst_idx in per_group:
            worst = served[worst_idx]
            group_stalls.append((gid, contribution))
            if contribution > 0:
                dominant.append(worst)
            if tracer.enabled:
                members = [
                    served[i] for i, e in enumerate(entries) if e[0] == gid
                ]
                tracer.event(
                    "step3.group",
                    group=gid,
                    members=len(members),
                    member_memories=",".join(
                        sorted({s.memory for s in members})
                    ),
                    dominant_memory=worst.memory,
                    dominant_operand=str(worst.operand),
                    ss_group_raw=worst.ss,
                    ss_group=contribution,
                )
        if tracer.enabled:
            span.set("groups", len({gid for gid, __, ___ in entries}))
            span.set("ss_overall", ss_overall)

    return StallIntegration(
        ss_overall=ss_overall,
        group_stalls=tuple(group_stalls),
        dominant=tuple(sorted(dominant, key=lambda s: -s.ss)),
    )
