"""The four computation-phase scenarios of Fig. 1(b).

========  ==================  ==================  =============================
Scenario  temporally full?    spatially full?     latency
========  ==================  ==================  =============================
1         yes                 yes                 ``CC_ideal``
2         yes                 no                  ``CC_spatial``
3         no                  yes                 ``CC_ideal + SS_overall``
4         no                  no                  ``CC_spatial + SS_overall``
========  ==================  ==================  =============================

with spatial stall ``CC_spatial - CC_ideal`` and temporal stall
``SS_overall``; utilization is always ``CC_ideal`` over the scenario's
latency.
"""

from __future__ import annotations

import dataclasses

from repro.mapping.mapping import Mapping, utilization_scenario


@dataclasses.dataclass(frozen=True)
class ScenarioQuantities:
    """The Fig. 1(b) row for one (mapping, array, SS_overall) triple."""

    scenario: int
    cc_ideal: float
    cc_spatial: int
    ss_overall: float

    @property
    def latency(self) -> float:
        """Computation-phase cycle count for the scenario."""
        return self.cc_spatial + self.ss_overall

    @property
    def spatial_stall(self) -> float:
        """``CC_spatial - CC_ideal``."""
        return self.cc_spatial - self.cc_ideal

    @property
    def temporal_stall(self) -> float:
        """``SS_overall`` (zero in scenarios 1-2)."""
        return self.ss_overall

    @property
    def utilization(self) -> float:
        """``U = CC_ideal / latency``."""
        return self.cc_ideal / self.latency

    @property
    def spatially_full(self) -> bool:
        """Whether the MAC array is spatially fully mapped."""
        return self.scenario in (1, 3)

    @property
    def temporally_full(self) -> bool:
        """Whether the MAC array is temporally fully mapped."""
        return self.scenario in (1, 2)


def classify(mapping: Mapping, array_size: int, ss_overall: float) -> ScenarioQuantities:
    """Build the Fig. 1(b) quantities for a computed ``SS_overall``."""
    return ScenarioQuantities(
        scenario=utilization_scenario(mapping, array_size, ss_overall),
        cc_ideal=mapping.ideal_cycles(array_size),
        cc_spatial=mapping.spatial_cycles,
        ss_overall=max(0.0, ss_overall),
    )
