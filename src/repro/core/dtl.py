"""Data Transfer Links (DTLs) and their Step-1 attributes.

Step 1 decouples every memory-interface operation into DTLs: separate read
and write links at each unit memory (Fig. 2b, links 1-18). One *logical
transfer* (e.g. refilling the W local buffer from the global buffer)
produces **two** DTLs: the read endpoint on the source memory's port and
the write endpoint on the destination memory's port. Both carry the same
periodic traffic (same ``Mem_DATA``, period and repeats) but see different
``RealBW`` — their own port's — and belong to different physical-port
groups in Step 2.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Tuple

from repro.core import kernels
from repro.core.windows import PeriodicWindow
from repro.hardware.port import EndpointKind
from repro.workload.operand import Operand


class TrafficKind(str, enum.Enum):
    """Why a transfer happens."""

    REFILL = "refill"            # W/I tile moving down the hierarchy
    FLUSH = "flush"              # O tile (final or partial) moving up
    PSUM_READBACK = "psum"       # partial sum returning down for more accumulation
    COMPUTE_READ = "compute"     # innermost level feeding the MAC array


@dataclasses.dataclass(frozen=True)
class Transfer:
    """One logical periodic data movement between two adjacent levels.

    Attributes
    ----------
    operand / kind:
        What moves and why.
    served_memory / served_level:
        The unit memory (memory name + chain level index) whose periodic
        operation this transfer implements — the "served mem" of Step 2's
        final max. This is the *lower* level of the pair.
    src_memory / dst_memory:
        Physical memory names of the two endpoints (src is read, dst is
        written). ``None`` for compute-edge reads (the MAC array is not a
        memory).
    data_bits:
        ``Mem_DATA`` moved per period, in bits.
    period:
        Effective turnaround ``Mem_CC`` in cycles (residency-extended).
    repeats:
        ``Z`` — number of periods whose transfers land in the computation
        phase (steady state).
    x_req:
        Allowed updating span per period (``X_REQ = Mem_DATA / ReqBW``).
    window_start:
        ``S`` — where the allowed span sits inside the period.
    """

    operand: Operand
    kind: TrafficKind
    served_memory: str
    served_level: int
    src_memory: Optional[str]
    dst_memory: Optional[str]
    data_bits: float
    period: float
    repeats: int
    x_req: float
    window_start: float

    @property
    def req_bw(self) -> float:
        """``ReqBW_u`` — minimum bandwidth for stall-free operation."""
        if self.x_req <= 0:
            return float("inf")
        return self.data_bits / self.x_req

    @property
    def bw0(self) -> float:
        """``BW_0 = Mem_DATA / Mem_CC`` (Table I footnote)."""
        return self.data_bits / self.period

    def window(self) -> PeriodicWindow:
        """The allowed-updating-window periodic function."""
        return PeriodicWindow(self.period, self.x_req, self.window_start, self.repeats)

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.operand}-{self.kind.value} {self.src_memory or 'MAC'}"
            f"->{self.dst_memory or 'MAC'} {self.data_bits:g}b / {self.period:g}cc x{self.repeats}"
        )


@dataclasses.dataclass(frozen=True)
class DTL:
    """One endpoint of a :class:`Transfer` on a physical memory port.

    ``SS_u = (X_REAL - X_REQ) * Z`` measures this endpoint's own stall (+)
    or slack (-) against computation (Fig. 3), where
    ``X_REAL = Mem_DATA / RealBW`` uses the *port's* bandwidth. When the
    memory has a minimum burst (word) size, the transfer pads up to a
    whole number of bursts first — small tiles on wide-word memories pay
    for the full word.
    """

    transfer: Transfer
    memory: str
    port: str
    endpoint: EndpointKind
    real_bw: float
    burst_bits: int = 1

    def __post_init__(self) -> None:
        if self.real_bw <= 0:
            raise ValueError(f"DTL on {self.memory}.{self.port}: RealBW must be positive")
        if self.burst_bits < 1:
            raise ValueError(f"DTL on {self.memory}.{self.port}: burst_bits must be >= 1")

    @property
    def padded_bits(self) -> float:
        """Transfer size rounded up to whole bursts (words)."""
        if self.burst_bits <= 1:
            return self.transfer.data_bits
        return float(kernels.padded_bits(self.transfer.data_bits, self.burst_bits))

    @property
    def x_real(self) -> float:
        """Actual updating span per period given the port bandwidth."""
        return self.padded_bits / self.real_bw

    @property
    def x_req(self) -> float:
        """Allowed updating span per period (from the transfer)."""
        return self.transfer.x_req

    @property
    def ss_u(self) -> float:
        """Per-DTL stall (+) or slack (-): ``(X_REAL - X_REQ) * Z``."""
        return kernels.stall_slack(self.x_real, self.x_req, self.transfer.repeats)

    @property
    def muw_u(self) -> float:
        """Total allowed updating window ``X_REQ * Z``."""
        return kernels.window_total(self.x_req, self.transfer.repeats)

    @property
    def req_bw(self) -> float:
        """``ReqBW_u`` of the underlying transfer."""
        return self.transfer.req_bw

    def window(self) -> PeriodicWindow:
        """Periodic allowed window (shared with the sibling endpoint)."""
        return self.transfer.window()

    @property
    def port_key(self) -> Tuple[str, str]:
        """Step-2 grouping key: (memory name, port name)."""
        return (self.memory, self.port)

    def span_attributes(self) -> dict:
        """The Step-1 attribution payload of this endpoint's trace span.

        Everything a stall post-mortem needs to see per DTL: the MUW
        parameters (period ``P``, allowed span ``X_REQ``, start ``S``,
        repeats ``Z``), the bandwidth pair, and the resulting per-DTL
        stall/slack ``SS_u`` — before any Step-2 combination.
        """
        t = self.transfer
        return {
            "memory": self.memory,
            "port": self.port,
            "endpoint": self.endpoint.value,
            "operand": str(t.operand),
            "kind": t.kind.value,
            "served_memory": t.served_memory,
            "served_level": t.served_level,
            "data_bits": t.data_bits,
            "period": t.period,
            "repeats": t.repeats,
            "x_req": t.x_req,
            "window_start": t.window_start,
            "x_real": self.x_real,
            "req_bw": self.req_bw,
            "real_bw": self.real_bw,
            "muw_u": self.muw_u,
            "ss_u": self.ss_u,
        }

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.memory}.{self.port}[{self.endpoint.value}] {self.transfer.operand}-"
            f"{self.transfer.kind.value}: ReqBW={self.req_bw:.3f} RealBW={self.real_bw:.3f} "
            f"SS_u={self.ss_u:.1f}"
        )
