"""Step 1 — Divide the memory system into unit memories and DTLs.

For every operand and every adjacent pair of its memory levels this module
derives the periodic transfer stream (``Mem_DATA``, effective ``Mem_CC``,
``Z``), applies Table I to obtain ``ReqBW_u`` / ``X_REQ`` (keep-out zones
for non-double-buffered memories with irrelevant loops on top), and
instantiates the two DTL endpoints with their port-specific ``RealBW``.

Output-operand specifics (Section III-B and Case study 1): tiles flushed
upward while reduction loops remain above the level are *partial sums* —
they travel at accumulator precision and return later as read-back traffic,
which is exactly the extra GB traffic that penalizes Mapping A in Fig. 6.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional

from repro.core import kernels
from repro.core.dtl import DTL, TrafficKind, Transfer
from repro.hardware.accelerator import Accelerator
from repro.hardware.hierarchy import MemoryLevel
from repro.hardware.port import EndpointKind
from repro.mapping.footprint import operand_footprint_elements, tile_elements
from repro.mapping.loop import loops_product
from repro.mapping.mapping import Mapping
from repro.observability.tracer import current_tracer
from repro.workload.operand import Operand


@dataclasses.dataclass(frozen=True)
class ModelOptions:
    """Tunable conventions of the latency model.

    Parameters
    ----------
    compute_edges:
        Include the innermost-level read DTLs feeding the MAC array (the
        W-Reg/I-Reg "to MAC" links of Fig. 2b). Output accumulation is part
        of the MAC-accumulator datapath and is never modeled as a DTL.
    paper_period_count:
        Use ``Z`` = all periods, as printed in the paper's
        ``SS_u = (X_REAL - X_REQ) x Z``. The default counts ``Z - 1``
        steady-state transfers, because each unit memory's first tile
        arrives in the pre-loading phase (and the last output flush is the
        offloading phase); the two conventions differ by one period (a
        ``1/Z`` relative effect) and the ablation bench quantifies it.
    combine_rule:
        Shared-port combination rule. ``"paper"`` is Eq. (2) exactly as
        printed: DTLs that already stall contribute only their ``SS_u`` and
        are excluded from the window-consumption sum. ``"refined"``
        (default) additionally lower-bounds the result by the port's busy
        deficit ``sum(X_REAL * Z) - MUW_comb`` over *all* DTLs — a stalling
        DTL still occupies the shared window with its first ``X_REQ``
        cycles, which the printed form drops; the cycle-level simulator
        confirms the refined form (see the ablation bench).
    served_rule:
        Same-served-memory combination. ``"paper"`` takes the max over all
        endpoint ports (Fig. 2b). ``"chained"`` (default) keeps that max
        but additionally lower-bounds an output register's stall by its
        drain -> partial-sum-reload dependency chain: when the allowed
        window is strictly shorter than the period, compute separates
        consecutive boundaries, the chain restarts every period and the
        two streams' stalls *add*; when the window spans the whole period
        the boundaries abut and the streams pipeline on their two ports
        (back to the paper max). Both regimes are simulator-verified
        (ablation bench). ``"sum"`` always adds distinct streams — a
        pessimistic bound kept for the ablation study.
    residency_extension:
        Extend ``Mem_CC`` by the run of operand-irrelevant loops directly
        above each level boundary (pure reuse prolongs residency without a
        refill). Disabling it reverts to the plain loop-product turnaround
        of Fig. 2(a)'s table — the ablation bench shows the resulting
        phantom refill traffic.
    """

    compute_edges: bool = True
    paper_period_count: bool = False
    combine_rule: str = "refined"
    served_rule: str = "chained"
    residency_extension: bool = True

    def __post_init__(self) -> None:
        if self.combine_rule not in ("paper", "refined"):
            raise ValueError(f"unknown combine_rule {self.combine_rule!r}")
        if self.served_rule not in ("paper", "sum", "chained"):
            raise ValueError(f"unknown served_rule {self.served_rule!r}")

    @staticmethod
    def paper_faithful() -> "ModelOptions":
        """The model with every convention exactly as printed in the paper."""
        return ModelOptions(
            paper_period_count=True, combine_rule="paper", served_rule="paper"
        )


def _steady_repeats(z_total: int, options: ModelOptions) -> int:
    """Transfers that land inside the computation phase."""
    return int(kernels.steady_repeats(z_total, options.paper_period_count))


def _x_req(level: MemoryLevel, period: float, top_ir_product: int) -> float:
    """Table I: allowed updating span per period (see ``kernels.x_req_span``)."""
    return float(
        kernels.x_req_span(period, top_ir_product, level.instance.double_buffered)
    )


def _endpoint_pair(
    transfer: Transfer,
    src_level: Optional[MemoryLevel],
    src_kind: EndpointKind,
    dst_level: Optional[MemoryLevel],
    dst_kind: EndpointKind,
    operand: Operand,
) -> List[DTL]:
    """Build the (up to two) DTL endpoints of a transfer."""
    dtls: List[DTL] = []
    if src_level is not None:
        port = src_level.port_for(operand, src_kind)
        dtls.append(
            DTL(
                transfer=transfer,
                memory=src_level.name,
                port=port.name,
                endpoint=src_kind,
                real_bw=port.bandwidth * src_level.instance.instances,
                burst_bits=src_level.instance.min_burst_bits,
            )
        )
    if dst_level is not None:
        port = dst_level.port_for(operand, dst_kind)
        dtls.append(
            DTL(
                transfer=transfer,
                memory=dst_level.name,
                port=port.name,
                endpoint=dst_kind,
                real_bw=port.bandwidth * dst_level.instance.instances,
                burst_bits=dst_level.instance.min_burst_bits,
            )
        )
    return dtls


def build_dtls(
    accelerator: Accelerator,
    mapping: Mapping,
    options: Optional[ModelOptions] = None,
) -> List[DTL]:
    """All DTL endpoints of ``mapping`` on ``accelerator`` (Step 1)."""
    options = options or ModelOptions()
    tracer = current_tracer()
    with tracer.span("model.step1") as span:
        dtls: List[DTL] = []
        dtls.extend(_input_weight_dtls(accelerator, mapping, options))
        dtls.extend(_output_dtls(accelerator, mapping, options))
        if options.compute_edges:
            dtls.extend(_compute_edge_dtls(accelerator, mapping))
        if tracer.enabled:
            span.set("dtls", len(dtls))
            for dtl in dtls:
                tracer.event("step1.dtl", **dtl.span_attributes())
    return dtls


# --------------------------------------------------------------------- #
# W / I refills
# --------------------------------------------------------------------- #

def _input_weight_dtls(
    accelerator: Accelerator, mapping: Mapping, options: ModelOptions
) -> List[DTL]:
    layer = mapping.layer
    temporal = mapping.temporal
    total_cc = temporal.total_cycles
    dtls: List[DTL] = []

    for operand in (Operand.W, Operand.I):
        chain = accelerator.hierarchy.levels(operand)
        for lvl in range(len(chain) - 1):
            dst_level, src_level = chain[lvl], chain[lvl + 1]
            base_cc = temporal.cycles_at_or_below(operand, lvl)
            ext = loops_product(temporal.ir_run_above(operand, lvl, layer))
            if not options.residency_extension:
                ext = 1
            period = base_cc * ext
            z_total = total_cc // period
            repeats = _steady_repeats(z_total, options)
            if repeats == 0:
                continue  # the tile is resident for the whole layer: preload only
            data_bits = mapping.footprint_bits(operand, lvl)
            top_ir = loops_product(temporal.top_ir_run(operand, lvl, layer))
            x_req = _x_req(dst_level, period, top_ir)
            transfer = Transfer(
                operand=operand,
                kind=TrafficKind.REFILL,
                served_memory=dst_level.name,
                served_level=lvl,
                src_memory=src_level.name,
                dst_memory=dst_level.name,
                data_bits=float(data_bits),
                period=float(period),
                repeats=repeats,
                x_req=x_req,
                window_start=float(period) - x_req,
            )
            dtls.extend(
                _endpoint_pair(
                    transfer,
                    src_level, EndpointKind.TL,
                    dst_level, EndpointKind.FH,
                    operand,
                )
            )
    return dtls


# --------------------------------------------------------------------- #
# Output flushes and partial-sum read-backs
# --------------------------------------------------------------------- #

def _output_dtls(
    accelerator: Accelerator, mapping: Mapping, options: ModelOptions
) -> List[DTL]:
    layer = mapping.layer
    temporal = mapping.temporal
    total_cc = temporal.total_cycles
    operand = Operand.O
    chain = accelerator.hierarchy.levels(operand)
    dtls: List[DTL] = []

    for lvl in range(len(chain) - 1):
        low_level, high_level = chain[lvl], chain[lvl + 1]
        base_cc = temporal.cycles_at_or_below(operand, lvl)
        ext = loops_product(temporal.ir_run_above(operand, lvl, layer))
        if not options.residency_extension:
            ext = 1
        period = base_cc * ext
        z_total = total_cc // period
        # Reduction iterations that interleave with relevant loops above:
        # each tile is flushed F times, F-1 of them as partial sums.
        ir_above = math.prod(
            loop.size
            for loop in temporal.loops_above(operand, lvl)
            if layer.relevance(operand, loop.dim, pr_as_r=True) == "ir"
        )
        revisit_factor = ir_above // ext
        partial = revisit_factor > 1
        elements = operand_footprint_elements(layer, operand, temporal, mapping.spatial, lvl)
        data_bits = float(elements * layer.precision.of(operand, partial=partial))
        top_ir = loops_product(temporal.top_ir_run(operand, lvl, layer))
        x_req = _x_req(low_level, period, top_ir)

        flush_repeats = z_total - 1 if z_total > 1 else 0
        if options.paper_period_count and z_total > 1:
            flush_repeats = z_total
        if flush_repeats > 0:
            flush = Transfer(
                operand=operand,
                kind=TrafficKind.FLUSH,
                served_memory=low_level.name,
                served_level=lvl,
                src_memory=low_level.name,
                dst_memory=high_level.name,
                data_bits=data_bits,
                period=float(period),
                repeats=flush_repeats,
                x_req=x_req,
                window_start=float(period) - x_req,
            )
            dtls.extend(
                _endpoint_pair(
                    flush,
                    low_level, EndpointKind.TH,
                    high_level, EndpointKind.FL,
                    operand,
                )
            )

        if partial:
            readback_repeats = z_total - z_total // revisit_factor
            if readback_repeats > 0:
                readback = Transfer(
                    operand=operand,
                    kind=TrafficKind.PSUM_READBACK,
                    served_memory=low_level.name,
                    served_level=lvl,
                    src_memory=high_level.name,
                    dst_memory=low_level.name,
                    data_bits=data_bits,
                    period=float(period),
                    repeats=readback_repeats,
                    x_req=x_req,
                    window_start=0.0,
                )
                dtls.extend(
                    _endpoint_pair(
                        readback,
                        high_level, EndpointKind.TL,
                        low_level, EndpointKind.FH,
                        operand,
                    )
                )
    return dtls


# --------------------------------------------------------------------- #
# Compute-edge reads (innermost level feeding the MAC array)
# --------------------------------------------------------------------- #

def _compute_edge_dtls(accelerator: Accelerator, mapping: Mapping) -> List[DTL]:
    layer = mapping.layer
    total_cc = mapping.temporal.total_cycles
    dtls: List[DTL] = []
    for operand in (Operand.W, Operand.I):
        level0 = accelerator.hierarchy.innermost(operand)
        per_cycle_elements = tile_elements(layer, operand, (), mapping.spatial)
        data_bits = float(per_cycle_elements * layer.precision.of(operand))
        transfer = Transfer(
            operand=operand,
            kind=TrafficKind.COMPUTE_READ,
            served_memory=level0.name,
            served_level=0,
            src_memory=level0.name,
            dst_memory=None,
            data_bits=data_bits,
            period=1.0,
            repeats=total_cc,
            x_req=1.0,
            window_start=0.0,
        )
        dtls.extend(
            _endpoint_pair(transfer, level0, EndpointKind.TL, None, EndpointKind.FH, operand)
        )
    return dtls
