"""repro — uniform intra-layer latency model for DNN accelerators.

A faithful, from-scratch reproduction of *"A Uniform Latency Model for DNN
Accelerators with Diverse Architectures and Dataflows"* (Mei, Liu, Wu,
Sumbul, Verhelst, Beigne — DATE 2022), plus every substrate the paper's
evaluation depends on: workload & mapping representations, a hardware
description layer, an energy model, a ZigZag-style mapper and architecture
search, and an event-driven cycle-level reference simulator used in place
of the authors' (unavailable) taped-out chip for validation.

Quickstart::

    from repro import (
        LatencyModel, case_study_accelerator, dense_layer, TemporalMapper,
    )

    preset = case_study_accelerator()
    layer = dense_layer(64, 128, 1200)
    mapper = TemporalMapper(preset.accelerator, preset.spatial_unrolling)
    best = mapper.best_mapping(layer)
    report = LatencyModel(preset.accelerator).evaluate(best.mapping)
    print(report.summary())
"""

from repro.analysis.network import NetworkEvaluator
from repro.analysis.summary import generate_report
from repro.core import (
    BwUnawareModel,
    LatencyModel,
    LatencyReport,
    ModelOptions,
)
from repro.core.advisor import UpgradeAdvisor
from repro.core.sensitivity import SensitivityAnalyzer
from repro.energy import EnergyModel, EnergyReport
from repro.hardware import Accelerator, MacArray, MemoryHierarchy, MemoryInstance
from repro.hardware.presets import (
    Preset,
    build_accelerator,
    case_study_accelerator,
    inhouse_accelerator,
    shared_lb_accelerator,
)
from repro.mapping import Mapping, SpatialMapping, TemporalMapping
from repro.simulator import CycleSimulator, SimulationResult
from repro.dse import MappingSearchResult, TemporalMapper
from repro.workload import LayerSpec, LayerType, Operand, dense_layer, im2col

__version__ = "1.0.0"

__all__ = [
    "Accelerator",
    "BwUnawareModel",
    "CycleSimulator",
    "EnergyModel",
    "EnergyReport",
    "LatencyModel",
    "LatencyReport",
    "LayerSpec",
    "LayerType",
    "MacArray",
    "Mapping",
    "MappingSearchResult",
    "MemoryHierarchy",
    "MemoryInstance",
    "ModelOptions",
    "NetworkEvaluator",
    "Operand",
    "Preset",
    "SensitivityAnalyzer",
    "SimulationResult",
    "SpatialMapping",
    "TemporalMapper",
    "TemporalMapping",
    "UpgradeAdvisor",
    "build_accelerator",
    "case_study_accelerator",
    "dense_layer",
    "generate_report",
    "im2col",
    "inhouse_accelerator",
    "shared_lb_accelerator",
]
