"""repro — uniform intra-layer latency model for DNN accelerators.

A faithful, from-scratch reproduction of *"A Uniform Latency Model for DNN
Accelerators with Diverse Architectures and Dataflows"* (Mei, Liu, Wu,
Sumbul, Verhelst, Beigne — DATE 2022), plus every substrate the paper's
evaluation depends on: workload & mapping representations, a hardware
description layer, an energy model, a ZigZag-style mapper and architecture
search, and an event-driven cycle-level reference simulator used in place
of the authors' (unavailable) taped-out chip for validation.

Quickstart — the single-entry facade (:mod:`repro.api`)::

    from repro import api

    report = api.evaluate("64,128,1200")                    # case-study preset
    report = api.evaluate("64,128,1200", engine="inhouse")  # named preset
    print(report.summary())

Evaluation is location-transparent: ``engine=`` takes anything
implementing the :class:`~repro.engine.Evaluator` protocol — an
in-process :class:`~repro.engine.EvaluationEngine`, or a
:class:`~repro.serve.RemoteEngine` connected to a ``repro-latency
serve`` daemon (``engine="serve://host:port"``).

or, driving the machinery directly::

    from repro import (
        EvaluationEngine, case_study_accelerator, dense_layer, TemporalMapper,
    )

    preset = case_study_accelerator()
    layer = dense_layer(64, 128, 1200)
    engine = EvaluationEngine.from_preset(preset)
    mapper = TemporalMapper(
        preset.accelerator, preset.spatial_unrolling, engine=engine
    )
    best = mapper.best_mapping(layer)
    print(best.report.summary())
    print(engine.stats.summary())

Every high-level flow (mapper, architecture search, sensitivity sweeps,
network evaluation, the CLI) evaluates through an
:class:`~repro.engine.EvaluationEngine`, which caches results by
canonical fingerprint and can fan batches out to worker processes; the
pure 3-step kernel remains directly usable via
:class:`~repro.core.model.LatencyModel` for single evaluations.
"""

from repro import api
from repro.analysis.network import NetworkEvaluator
from repro.analysis.summary import generate_report
from repro.api import evaluate, evaluate_network, search
from repro.core import (
    BwUnawareModel,
    LatencyModel,
    LatencyReport,
    ModelOptions,
)
from repro.core.advisor import UpgradeAdvisor
from repro.core.sensitivity import SensitivityAnalyzer
from repro.energy import EnergyModel, EnergyReport
from repro.engine import (
    EngineStats,
    Evaluation,
    EvaluationCache,
    EvaluationEngine,
    Evaluator,
)
from repro.hardware import Accelerator, MacArray, MemoryHierarchy, MemoryInstance
from repro.hardware.presets import (
    Preset,
    build_accelerator,
    case_study_accelerator,
    inhouse_accelerator,
    shared_lb_accelerator,
)
from repro.mapping import Mapping, SpatialMapping, TemporalMapping
from repro.serve import RemoteEngine, connect
from repro.simulator import CycleSimulator, SimulationResult
from repro.dse import MappingSearchResult, TemporalMapper
from repro.workload import LayerSpec, LayerType, Operand, dense_layer, im2col

__version__ = "1.0.0"

__all__ = [
    "Accelerator",
    "BwUnawareModel",
    "CycleSimulator",
    "EnergyModel",
    "EnergyReport",
    "EngineStats",
    "Evaluation",
    "EvaluationCache",
    "EvaluationEngine",
    "Evaluator",
    "LatencyModel",
    "LatencyReport",
    "LayerSpec",
    "LayerType",
    "MacArray",
    "Mapping",
    "MappingSearchResult",
    "MemoryHierarchy",
    "MemoryInstance",
    "ModelOptions",
    "NetworkEvaluator",
    "Operand",
    "Preset",
    "RemoteEngine",
    "SensitivityAnalyzer",
    "SimulationResult",
    "SpatialMapping",
    "TemporalMapper",
    "TemporalMapping",
    "UpgradeAdvisor",
    "api",
    "build_accelerator",
    "case_study_accelerator",
    "connect",
    "dense_layer",
    "evaluate",
    "evaluate_network",
    "generate_report",
    "im2col",
    "inhouse_accelerator",
    "search",
    "shared_lb_accelerator",
]
