"""Campaign-scoped search observability: funnel, convergence, provenance.

A *campaign* is one design-space-exploration run — a mapper search, a
local-search refinement, an architecture sweep, a network evaluation, or
any composition of those.  The campaign plane answers the questions the
per-evaluation tracer and ledger cannot:

* **Coverage** — how many candidates did the search actually consider,
  and what happened to each one?
* **Provenance** — *why* was a candidate discarded (duplicate?
  infeasible? dominated by a better one?), with an exact tag per
  discard.
* **Convergence** — how did the incumbent objective evolve, at what
  rate did improvements arrive, and has the search stagnated?

Ambient installation mirrors the tracer/ledger/emitter pattern::

    campaign = CampaignRecorder("nightly-sweep")
    with use_campaign(campaign):
        search.evaluate(layer)
    campaign.finish()
    campaign.flush_to(ledger)

Instrumentation sites fetch :func:`current_campaign` and guard on
``campaign.enabled``; with no campaign installed the NULL singleton
makes every hook a no-op attribute check.

Funnel semantics
----------------

Each search loop owns one :class:`PhaseFunnel` (keyed by flow name, e.g.
``"mapper"`` or ``"arch_search"``).  Every enumerated candidate lands in
exactly **one** terminal bucket, so the conservation identity

``enumerated == deduped + cache_hits + evaluated + invalid + dominated``

holds exactly for completed campaigns:

* ``deduped`` — recognized as equivalent to an earlier candidate and
  never scored (tags ``duplicate``, ``canonical-equivalent``).
* ``invalid`` — could not be scored at all (allocation overflow,
  mapping construction error, engine infeasibility, unmappable
  design/layer/spatial, lane overflow).
* ``cache_hits`` / ``evaluated`` — scored **and retained** in the
  phase's final result set, split by score provenance (persistent-cache
  probe vs. fresh kernel evaluation).
* ``dominated`` — scored but discarded by selection (truncated out of
  the top-K, beaten by the incumbent, a worse neighbor, or
  Pareto-dominated); the provenance tag records which.

Interrupted (SIGINT) campaigns flush a best-effort partial row flagged
``partial=1``; conservation is only guaranteed for completed campaigns.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .ledger import RunRecord, git_sha
from .metrics import current_metrics
from .progress import (
    ConvergenceUpdate,
    FunnelSnapshot,
    ParetoFrontSnapshot,
    current_emitter,
)

__all__ = [
    "FUNNEL_BUCKETS",
    "PROVENANCE_BUCKETS",
    "PhaseFunnel",
    "CampaignRecorder",
    "NullCampaign",
    "NULL_CAMPAIGN",
    "current_campaign",
    "use_campaign",
    "CampaignGateResult",
    "campaign_records",
    "select_campaign",
    "phase_records",
    "compare_campaigns",
    "gate_campaigns",
]

#: Terminal funnel buckets, in waterfall order.
FUNNEL_BUCKETS: Tuple[str, ...] = (
    "deduped", "cache_hits", "evaluated", "invalid", "dominated",
)

#: Every discard provenance tag and the funnel bucket it drains into.
#: ``cache_hits``/``evaluated`` are retention buckets and have no tags.
PROVENANCE_BUCKETS: Dict[str, str] = {
    # Never scored: recognized as equivalent to an earlier candidate.
    "duplicate": "deduped",
    "canonical-equivalent": "deduped",
    # Never scored: could not be evaluated at all.
    "allocation-overflow": "invalid",
    "mapping-error": "invalid",
    "engine-infeasible": "invalid",
    "unmappable-design": "invalid",
    "unmappable-layer": "invalid",
    "unmappable-spatial": "invalid",
    "lane-overflow": "invalid",
    # Scored, then discarded by selection.
    "keep-top": "dominated",
    "beaten-incumbent": "dominated",
    "worse-neighbor": "dominated",
    "pareto-dominated": "dominated",
}


class PhaseFunnel:
    """Candidate accounting for one search loop of a campaign.

    Call :meth:`admit` when a candidate enters the loop,
    :meth:`discard` with a provenance tag when it is dropped, and
    :meth:`retain` when it survives into the loop's result set.
    """

    __slots__ = (
        "flow", "enumerated", "deduped", "cache_hits", "evaluated",
        "invalid", "dominated", "provenance", "context",
    )

    def __init__(self, flow: str) -> None:
        self.flow = flow
        self.enumerated = 0
        self.deduped = 0
        self.cache_hits = 0
        self.evaluated = 0
        self.invalid = 0
        self.dominated = 0
        #: tag -> count, one entry per discard provenance seen.
        self.provenance: Dict[str, int] = {}
        #: replayability scalars (sampling seed, config fingerprint, ...).
        self.context: Dict[str, Any] = {}

    # -- accounting ------------------------------------------------------ #

    def admit(self, n: int = 1) -> None:
        """Count ``n`` candidates entering the funnel."""
        self.enumerated += n

    def discard(self, tag: str, n: int = 1) -> None:
        """Drop ``n`` candidates with provenance ``tag``."""
        if n <= 0:
            return
        bucket = PROVENANCE_BUCKETS.get(tag)
        if bucket is None:
            raise ValueError(f"unknown discard provenance tag: {tag!r}")
        setattr(self, bucket, getattr(self, bucket) + n)
        self.provenance[tag] = self.provenance.get(tag, 0) + n

    def retain(self, n: int = 1, cache_hit: bool = False) -> None:
        """Count ``n`` scored candidates kept in the phase result set."""
        if cache_hit:
            self.cache_hits += n
        else:
            self.evaluated += n

    # -- views ----------------------------------------------------------- #

    @property
    def classified(self) -> int:
        """Candidates that reached a terminal bucket."""
        return (
            self.deduped + self.cache_hits + self.evaluated
            + self.invalid + self.dominated
        )

    @property
    def scored(self) -> int:
        """Candidates that received an objective value."""
        return self.cache_hits + self.evaluated + self.dominated

    @property
    def conserved(self) -> bool:
        """The funnel identity: every admitted candidate classified."""
        return self.enumerated == self.classified

    def counts(self) -> Dict[str, int]:
        """The six funnel counters as a plain dict."""
        return {
            "enumerated": self.enumerated,
            "deduped": self.deduped,
            "cache_hits": self.cache_hits,
            "evaluated": self.evaluated,
            "invalid": self.invalid,
            "dominated": self.dominated,
        }

    def as_extra(self) -> Dict[str, Any]:
        """Ledger ``extra`` payload: counts, tags, and replay context."""
        extra: Dict[str, Any] = dict(self.counts())
        extra["scored"] = self.scored
        extra["conserved"] = 1.0 if self.conserved else 0.0
        for tag in sorted(self.provenance):
            extra[f"tag.{tag}"] = self.provenance[tag]
        for key, value in self.context.items():
            extra[f"ctx.{key}"] = value
        return extra


class _NullFunnel(PhaseFunnel):
    """Inert funnel returned by the NULL campaign: swallows everything."""

    def __init__(self) -> None:
        super().__init__("null")

    def admit(self, n: int = 1) -> None:
        pass

    def discard(self, tag: str, n: int = 1) -> None:
        pass

    def retain(self, n: int = 1, cache_hit: bool = False) -> None:
        pass


class CampaignRecorder:
    """Accumulates funnel, convergence, and Pareto telemetry for one campaign.

    The recorder is cheap enough to leave threaded through hot search
    loops: funnel updates are plain integer bumps, convergence updates
    emit a progress event only on improvement, and metrics gauges are
    synchronized at checkpoints (improvements, snapshots, finish) rather
    than per candidate.
    """

    enabled = True

    def __init__(
        self,
        name: str = "campaign",
        *,
        stagnation_after: int = 500,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.name = name
        self.stagnation_after = stagnation_after
        self._clock = clock
        self.started_ts = clock()
        self.phases: Dict[str, PhaseFunnel] = {}
        self.best: Optional[float] = None
        self.observed = 0
        self.improvements = 0
        self.last_improvement_at = 0
        #: (observed index, incumbent objective) appended per improvement.
        self.trajectory: List[Tuple[int, float]] = []
        #: Pareto-front evolution: dicts with flow/label/at/points.
        self.snapshots: List[Dict[str, Any]] = []
        self.memoized_searches = 0
        self.partial = False
        self._finished = False
        self._flushed = False
        self._stagnation_reported = False

    # -- funnel ---------------------------------------------------------- #

    def phase(self, flow: str) -> PhaseFunnel:
        """Get-or-create the funnel for one search loop, by flow name."""
        funnel = self.phases.get(flow)
        if funnel is None:
            funnel = self.phases[flow] = PhaseFunnel(flow)
        return funnel

    def note_memoized_search(self) -> None:
        """A whole-search result was served from the engine cache."""
        self.memoized_searches += 1

    def note_context(self, flow: str, **scalars: Any) -> None:
        """Attach replayability context (seeds, fingerprints) to a phase."""
        self.phase(flow).context.update(scalars)

    def funnel_totals(self) -> Dict[str, int]:
        """Funnel counters summed across all phases."""
        totals = {
            "enumerated": 0, "deduped": 0, "cache_hits": 0,
            "evaluated": 0, "invalid": 0, "dominated": 0,
        }
        for funnel in self.phases.values():
            for key, value in funnel.counts().items():
                totals[key] += value
        return totals

    @property
    def conserved(self) -> bool:
        """True when every phase funnel satisfies the conservation identity."""
        return all(f.conserved for f in self.phases.values())

    @property
    def scored(self) -> int:
        """Scored candidates across all phases (the coverage measure)."""
        return sum(f.scored for f in self.phases.values())

    # -- convergence ----------------------------------------------------- #

    def observe(self, objective: float) -> bool:
        """Record one scored candidate; returns True on a new incumbent."""
        self.observed += 1
        improved = self.best is None or objective < self.best
        if improved:
            self.best = objective
            self.improvements += 1
            self.last_improvement_at = self.observed
            self.trajectory.append((self.observed, objective))
            self._stagnation_reported = False
            self._emit_convergence()
            self._sync_metrics()
        elif self.stagnated and not self._stagnation_reported:
            self._stagnation_reported = True
            self._emit_convergence()
            self._sync_metrics()
        return improved

    @property
    def improvement_rate(self) -> float:
        """Improvements per observed candidate (0 when nothing observed)."""
        return self.improvements / self.observed if self.observed else 0.0

    @property
    def since_improvement(self) -> int:
        """Candidates observed since the incumbent last improved."""
        return self.observed - self.last_improvement_at

    @property
    def stagnated(self) -> bool:
        """True once ``stagnation_after`` candidates pass with no improvement."""
        return self.observed > 0 and self.since_improvement >= self.stagnation_after

    # -- Pareto evolution ------------------------------------------------ #

    def pareto_snapshot(
        self,
        flow: str,
        points: Sequence[Sequence[float]],
        label: str = "",
    ) -> None:
        """Record the current Pareto front of ``flow`` as (x, y) pairs."""
        snap = {
            "flow": flow,
            "label": label,
            "at": self.observed,
            "points": [[float(x), float(y)] for x, y in points],
        }
        self.snapshots.append(snap)
        emitter = current_emitter()
        if emitter.enabled:
            emitter.emit(ParetoFrontSnapshot(
                run_id=self._run_id(), flow=flow, label=label,
                size=len(snap["points"]), points=snap["points"],
            ))
        self._sync_metrics()

    # -- event / metrics bridges ----------------------------------------- #

    def _run_id(self) -> str:
        return f"campaign:{self.name}"

    def _emit_convergence(self) -> None:
        emitter = current_emitter()
        if not emitter.enabled:
            return
        emitter.emit(ConvergenceUpdate(
            run_id=self._run_id(),
            objective=self.best if self.best is not None else 0.0,
            observed=self.observed,
            improvements=self.improvements,
            improvement_rate=self.improvement_rate,
            since_improvement=self.since_improvement,
            stagnated=self.stagnated,
        ))

    def _emit_funnels(self) -> None:
        emitter = current_emitter()
        if not emitter.enabled:
            return
        for funnel in self.phases.values():
            emitter.emit(FunnelSnapshot(
                run_id=self._run_id(), flow=funnel.flow, **funnel.counts(),
            ))

    def _sync_metrics(self) -> None:
        registry = current_metrics()
        if not registry.enabled:
            return
        if self.best is not None:
            registry.gauge(
                "repro_campaign_best_objective",
                "Best objective found by the active search campaign.",
            ).set(self.best)
        registry.gauge(
            "repro_campaign_observed",
            "Scored candidates observed by the active campaign.",
        ).set(float(self.observed))
        registry.gauge(
            "repro_campaign_improvements",
            "Incumbent improvements in the active campaign.",
        ).set(float(self.improvements))
        registry.gauge(
            "repro_campaign_stagnation",
            "Candidates since the incumbent last improved.",
        ).set(float(self.since_improvement))
        registry.gauge(
            "repro_campaign_memoized_searches",
            "Whole-search results served from the engine cache.",
        ).set(float(self.memoized_searches))
        if self.snapshots:
            registry.gauge(
                "repro_campaign_pareto_size",
                "Size of the latest recorded Pareto front.",
            ).set(float(len(self.snapshots[-1]["points"])))
        for bucket, value in self.funnel_totals().items():
            registry.gauge(
                "repro_campaign_funnel",
                "Campaign candidate funnel, by terminal bucket.",
                labels={"bucket": bucket},
            ).set(float(value))

    # -- lifecycle ------------------------------------------------------- #

    def finish(self, partial: bool = False) -> None:
        """Seal the campaign: emit final telemetry. Idempotent."""
        if self._finished:
            return
        self._finished = True
        self.partial = bool(partial)
        self._emit_convergence()
        self._emit_funnels()
        self._sync_metrics()

    def to_records(self) -> List[RunRecord]:
        """The campaign as ledger rows: one summary + one row per phase."""
        now = self._clock()
        sha = git_sha()
        totals = self.funnel_totals()
        extra: Dict[str, Any] = dict(totals)
        extra.update({
            "scored": self.scored,
            "conserved": 1.0 if self.conserved else 0.0,
            "partial": 1.0 if self.partial else 0.0,
            "observed": self.observed,
            "improvements": self.improvements,
            "improvement_rate": self.improvement_rate,
            "since_improvement": self.since_improvement,
            "stagnated": 1.0 if self.stagnated else 0.0,
            "memoized_searches": self.memoized_searches,
            "phases": len(self.phases),
        })
        if self.best is not None:
            extra["best_objective"] = self.best
        # Downsample the trajectory so the summary row stays bounded even
        # for campaigns with thousands of improvements.
        trajectory = list(self.trajectory)
        if len(trajectory) > 256:
            step = len(trajectory) / 255.0
            sampled = [trajectory[int(i * step)] for i in range(255)]
            sampled.append(trajectory[-1])
            trajectory = sampled
        extra["trajectory"] = [[at, obj] for at, obj in trajectory]
        extra["pareto"] = self.snapshots[-8:]
        records = [RunRecord(
            kind="campaign",
            label=self.name,
            campaign=self.name,
            ts=now,
            git_sha=sha,
            total_cycles=self.best if self.best is not None else 0.0,
            wall_time_s=max(0.0, now - self.started_ts),
            extra=extra,
        )]
        for funnel in self.phases.values():
            phase_extra = funnel.as_extra()
            phase_extra["partial"] = 1.0 if self.partial else 0.0
            records.append(RunRecord(
                kind="campaign_phase",
                label=funnel.flow,
                campaign=self.name,
                ts=now,
                git_sha=sha,
                options_fp=str(funnel.context.get("config_fp", "")),
                extra=phase_extra,
            ))
        return records

    def flush_to(self, ledger: Any, partial: bool = False) -> int:
        """Persist the campaign rows to ``ledger``. Idempotent: the second
        and later calls (e.g. the CLI epilogue after a search loop's own
        SIGINT handler already flushed) write nothing and return 0."""
        if self._flushed or not getattr(ledger, "enabled", False):
            return 0
        self.finish(partial=partial)
        self._flushed = True
        records = self.to_records()
        ledger.append_many(records)
        return len(records)

    def summary_line(self) -> str:
        """One human line for CLI epilogues."""
        totals = self.funnel_totals()
        best = f"{self.best:.6g}" if self.best is not None else "n/a"
        state = "partial" if self.partial else "complete"
        return (
            f"campaign '{self.name}' ({state}): best={best} "
            f"enumerated={totals['enumerated']} scored={self.scored} "
            f"improvements={self.improvements}"
        )


class NullCampaign:
    """No-op campaign: the ambient default when none is installed."""

    enabled = False
    name = ""
    partial = False

    _NULL_FUNNEL = _NullFunnel()

    def phase(self, flow: str) -> PhaseFunnel:
        return self._NULL_FUNNEL

    def note_memoized_search(self) -> None:
        pass

    def note_context(self, flow: str, **scalars: Any) -> None:
        pass

    def observe(self, objective: float) -> bool:
        return False

    def pareto_snapshot(
        self, flow: str, points: Sequence[Sequence[float]], label: str = "",
    ) -> None:
        pass

    def finish(self, partial: bool = False) -> None:
        pass

    def flush_to(self, ledger: Any, partial: bool = False) -> int:
        return 0


NULL_CAMPAIGN = NullCampaign()

_current_campaign: contextvars.ContextVar[Any] = contextvars.ContextVar(
    "repro_campaign", default=NULL_CAMPAIGN,
)


def current_campaign() -> Any:
    """The ambient campaign (the NULL no-op unless one is installed)."""
    return _current_campaign.get()


@contextlib.contextmanager
def use_campaign(campaign: Any) -> Iterator[Any]:
    """Install ``campaign`` as the ambient campaign for the duration."""
    token = _current_campaign.set(campaign)
    try:
        yield campaign
    finally:
        _current_campaign.reset(token)


# --------------------------------------------------------------------------- #
# Campaign rows: selection, comparison, and the search-quality gate.
# --------------------------------------------------------------------------- #


def campaign_records(records: Sequence[RunRecord]) -> List[RunRecord]:
    """All ``kind="campaign"`` summary rows, in ledger order."""
    return [r for r in records if r.kind == "campaign"]


def select_campaign(
    records: Sequence[RunRecord], name: Optional[str] = None,
) -> Optional[RunRecord]:
    """The latest campaign summary row (optionally filtered by name)."""
    rows = [
        r for r in campaign_records(records)
        if name is None or r.label == name
    ]
    return rows[-1] if rows else None


def phase_records(
    records: Sequence[RunRecord], name: str,
) -> List[RunRecord]:
    """The per-phase funnel rows belonging to campaign ``name``."""
    return [
        r for r in records
        if r.kind == "campaign_phase" and r.campaign == name
    ]


def _best_of(record: RunRecord) -> Optional[float]:
    value = record.extra.get("best_objective")
    return float(value) if isinstance(value, (int, float)) else None


def _scored_of(record: RunRecord) -> float:
    value = record.extra.get("scored", 0.0)
    return float(value) if isinstance(value, (int, float)) else 0.0


def compare_campaigns(
    baseline: RunRecord, candidate: RunRecord,
) -> List[str]:
    """Human-readable deltas between two campaign summary rows."""
    lines = [
        f"baseline:  {baseline.label!r} ts={baseline.ts:.0f} "
        f"git={baseline.git_sha}",
        f"candidate: {candidate.label!r} ts={candidate.ts:.0f} "
        f"git={candidate.git_sha}",
    ]
    base_best, cand_best = _best_of(baseline), _best_of(candidate)
    if base_best is not None and cand_best is not None:
        rel = (cand_best - base_best) / base_best if base_best else 0.0
        lines.append(
            f"best_objective: {base_best:.6g} -> {cand_best:.6g} "
            f"({rel:+.2%})"
        )
    else:
        lines.append(
            f"best_objective: {base_best} -> {cand_best}"
        )
    for key in (
        "scored", "enumerated", "deduped", "cache_hits", "evaluated",
        "invalid", "dominated", "observed", "improvements",
    ):
        b = baseline.extra.get(key, 0.0)
        c = candidate.extra.get(key, 0.0)
        if isinstance(b, (int, float)) and isinstance(c, (int, float)):
            lines.append(f"{key}: {b:g} -> {c:g} ({c - b:+g})")
    return lines


@dataclasses.dataclass(frozen=True)
class CampaignGateResult:
    """Outcome of the search-quality gate.

    ``code`` follows the ``diff`` convention: 0 clean (or improved),
    1 regression (best objective or coverage), 2 missing campaign row.
    """

    code: int
    lines: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return self.code == 0


def gate_campaigns(
    baseline_records: Sequence[RunRecord],
    candidate_records: Sequence[RunRecord],
    *,
    name: Optional[str] = None,
    rel_tol: float = 0.01,
    coverage_floor: float = 0.5,
) -> CampaignGateResult:
    """Search-quality regression gate between two ledgers.

    Fails (code 1) when the candidate campaign's best-found objective
    regresses more than ``rel_tol`` relative to the baseline campaign,
    or when its scored coverage collapses below ``coverage_floor``
    times the baseline's.  Missing campaign rows on either side are
    code 2 (bad usage / infrastructure drift, not a search regression).
    """
    baseline = select_campaign(baseline_records, name)
    if baseline is None:
        return CampaignGateResult(2, (
            "gate: no baseline campaign row"
            + (f" named {name!r}" if name else ""),
        ))
    candidate = select_campaign(candidate_records, name)
    if candidate is None:
        return CampaignGateResult(2, (
            "gate: no candidate campaign row"
            + (f" named {name!r}" if name else ""),
        ))
    lines = compare_campaigns(baseline, candidate)
    failures = []
    base_best, cand_best = _best_of(baseline), _best_of(candidate)
    if base_best is not None:
        if cand_best is None:
            failures.append("FAIL best_objective: candidate found no incumbent")
        elif cand_best > base_best * (1.0 + rel_tol):
            rel = (cand_best - base_best) / base_best if base_best else 0.0
            failures.append(
                f"FAIL best_objective: {base_best:.6g} -> {cand_best:.6g} "
                f"({rel:+.2%} > +{rel_tol:.2%})"
            )
        elif cand_best < base_best:
            lines.append(
                f"improved: best_objective {base_best:.6g} -> {cand_best:.6g}"
            )
    base_scored, cand_scored = _scored_of(baseline), _scored_of(candidate)
    if base_scored > 0 and cand_scored < coverage_floor * base_scored:
        failures.append(
            f"FAIL coverage: scored {cand_scored:g} < "
            f"{coverage_floor:g} x baseline {base_scored:g}"
        )
    lines.extend(failures)
    if failures:
        return CampaignGateResult(1, tuple(lines))
    lines.append("gate: ok")
    return CampaignGateResult(0, tuple(lines))
