"""Streaming progress telemetry: typed events for long-running searches.

The tracer (PR 2) and ledger (PR 3) are *post-hoc*: spans and rows are
inspected after the run. This module is the **live** side — while a
mapper sweep, architecture DSE or network evaluation is running it
answers "how far along is it, how fast, is anything stuck, what's the
best design so far?" through a typed event stream:

* :class:`RunStarted` / :class:`RunFinished` / :class:`RunInterrupted`
  bracket one logical flow (a mapper search, an arch sweep, a network
  evaluation, a verify run, a CLI invocation);
* :class:`ChunkCompleted` reports a unit of work done — the engine emits
  one per executor chunk, carrying the worker that ran it, its wall
  time, cumulative progress and a rolling evals/sec + ETA estimate;
* :class:`Heartbeat` marks a worker as alive (workers piggyback their
  identity and per-chunk timing on the ChunkOutcome channel back to the
  parent process, which is the sole writer of the stream);
* :class:`BestSoFar` announces an improved incumbent objective;
* :class:`CacheStats` snapshots the engine cache hit rate;
* :class:`WorkerStalled` is a derived warning — a worker silent past a
  threshold (see :class:`HeartbeatMonitor`).

The plumbing mirrors the tracer/metrics/ledger pattern exactly: an
ambient :func:`current_emitter` that defaults to the allocation-free
:data:`NULL_EMITTER`, scoped installation via :func:`use_emitter`, and
emit sites guarded on ``emitter.enabled`` so the disabled path costs one
contextvar read (bounded < 5% of kernel time by
``benchmarks/test_progress_overhead.py`` / ``BENCH_progress.json``).

Sinks are plain subscribers — any callable of one event. The bundled
:class:`JsonlSink` appends one JSON object per line and flushes per
event, so ``repro-latency top --follow events.jsonl`` renders a live
dashboard from a file another process is still writing;
:class:`MetricsSubscriber` mirrors the stream into the ambient
:class:`~repro.observability.metrics.MetricsRegistry` gauges
(evals/sec, cache hit rate, active workers).
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

#: Rolling-throughput window, in seconds of event time.
RATE_WINDOW_S = 30.0

#: Default worker-silence threshold before a stall warning, in seconds.
STALL_THRESHOLD_S = 10.0


def worker_id() -> str:
    """The calling process's worker identity (``"pid:<pid>"``)."""
    return f"pid:{os.getpid()}"


# --------------------------------------------------------------------- #
# Event types
# --------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class RunStarted:
    """A logical flow began (mapper search, arch sweep, CLI command...)."""

    run_id: str
    flow: str
    total_units: Optional[int] = None   # None when the size is unknown
    unit: str = "units"                 # "evals" | "points" | "layers" | ...
    accelerator: str = ""
    layer: str = ""
    ts: float = 0.0


@dataclasses.dataclass(frozen=True)
class ChunkCompleted:
    """One unit of work done: an executor chunk, a design point, a layer.

    ``done_units``/``total_units`` are cumulative for the run;
    ``evals_per_s`` is the rolling rate over :data:`RATE_WINDOW_S` of
    event time and ``eta_s`` the remaining-time estimate it implies
    (``None`` without a known total or a positive rate).
    """

    run_id: str
    index: int = -1                     # chunk/point index, -1 = untracked
    completed: int = 0                  # units finished in this chunk
    errors: int = 0                     # infeasible/violating units
    wall_s: float = 0.0                 # chunk wall time where it ran
    worker: str = ""                    # "pid:<pid>" that ran the chunk
    done_units: int = 0
    total_units: Optional[int] = None
    unit: str = "units"
    evals_per_s: float = 0.0
    eta_s: Optional[float] = None
    note: str = ""                      # free-form (e.g. failing case id)
    ts: float = 0.0


@dataclasses.dataclass(frozen=True)
class Heartbeat:
    """A worker proved liveness (emitted when its chunk timing arrives).

    ``note`` optionally names what the worker is *about to* do (e.g.
    ``"evaluating a1b2c3/d4e5f6 (kernel)"``); the
    :class:`HeartbeatMonitor` remembers it so a later stall warning can
    say what the worker was last occupied with.
    """

    run_id: str
    worker: str
    note: str = ""
    ts: float = 0.0


@dataclasses.dataclass(frozen=True)
class BestSoFar:
    """The incumbent objective improved."""

    run_id: str
    objective: float
    total_cycles: float = 0.0
    utilization: float = 0.0
    label: str = ""
    ts: float = 0.0


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Engine-cache counters at a point in time.

    ``dedup_skipped`` counts mapper candidates dropped as model-equivalent
    before evaluation; ``partial_hits``/``partial_misses`` are the
    partial-result (MUW memo) cache counters of the batch evaluator.
    """

    run_id: str
    hits: int = 0
    misses: int = 0
    hit_rate: float = 0.0
    dedup_skipped: int = 0
    partial_hits: int = 0
    partial_misses: int = 0
    ts: float = 0.0


@dataclasses.dataclass(frozen=True)
class WorkerStalled:
    """A worker has been silent past the heartbeat threshold.

    ``note`` carries what the worker was last reported doing (from its
    most recent :class:`Heartbeat` note) so the warning is actionable —
    which request, which phase — instead of just naming the worker.
    """

    run_id: str
    worker: str
    silent_for_s: float = 0.0
    threshold_s: float = STALL_THRESHOLD_S
    note: str = ""
    ts: float = 0.0


@dataclasses.dataclass(frozen=True)
class RunInterrupted:
    """The flow was cut short (SIGINT); partial results were checkpointed."""

    run_id: str
    done_units: int = 0
    reason: str = ""
    ts: float = 0.0


@dataclasses.dataclass(frozen=True)
class RunFinished:
    """The flow completed normally."""

    run_id: str
    done_units: int = 0
    wall_s: float = 0.0
    best_objective: Optional[float] = None
    ts: float = 0.0


@dataclasses.dataclass(frozen=True)
class ConvergenceUpdate:
    """The campaign incumbent moved (or the search tripped into stagnation).

    Emitted by :class:`repro.observability.campaign.CampaignRecorder` on
    each improvement, so the stream carries the full incumbent
    trajectory without a per-candidate event.
    """

    run_id: str
    objective: float = 0.0
    observed: int = 0
    improvements: int = 0
    improvement_rate: float = 0.0
    since_improvement: int = 0
    stagnated: bool = False
    ts: float = 0.0


@dataclasses.dataclass(frozen=True)
class ParetoFrontSnapshot:
    """The Pareto front of one campaign flow at a point in the search.

    ``points`` is a list of ``[x, y]`` pairs (e.g. array size vs.
    latency for an architecture sweep).
    """

    run_id: str
    flow: str = ""
    label: str = ""
    size: int = 0
    points: List[List[float]] = dataclasses.field(default_factory=list)
    ts: float = 0.0


@dataclasses.dataclass(frozen=True)
class FunnelSnapshot:
    """Terminal funnel counts for one campaign phase (see campaign docs)."""

    run_id: str
    flow: str = ""
    enumerated: int = 0
    deduped: int = 0
    cache_hits: int = 0
    evaluated: int = 0
    invalid: int = 0
    dominated: int = 0
    ts: float = 0.0


ProgressEvent = Union[
    RunStarted,
    ChunkCompleted,
    Heartbeat,
    BestSoFar,
    CacheStats,
    WorkerStalled,
    RunInterrupted,
    RunFinished,
    ConvergenceUpdate,
    ParetoFrontSnapshot,
    FunnelSnapshot,
]

#: Serialization registry: JSONL ``"type"`` field -> event class.
EVENT_TYPES: Dict[str, Type] = {
    cls.__name__: cls
    for cls in (
        RunStarted,
        ChunkCompleted,
        Heartbeat,
        BestSoFar,
        CacheStats,
        WorkerStalled,
        RunInterrupted,
        RunFinished,
        ConvergenceUpdate,
        ParetoFrontSnapshot,
        FunnelSnapshot,
    )
}


def event_to_dict(event: ProgressEvent) -> Dict[str, Any]:
    """One event as a JSON-ready dict carrying its ``"type"``."""
    data: Dict[str, Any] = {"type": type(event).__name__}
    data.update(dataclasses.asdict(event))
    return data


def event_from_dict(data: Dict[str, Any]) -> ProgressEvent:
    """Inverse of :func:`event_to_dict`; tolerant of unknown fields."""
    kind = data.get("type")
    cls = EVENT_TYPES.get(kind or "")
    if cls is None:
        raise ValueError(f"unknown progress event type {kind!r}")
    fields = {f.name for f in dataclasses.fields(cls)}
    return cls(**{k: v for k, v in data.items() if k in fields})


def format_event(event: ProgressEvent) -> str:
    """One human-readable console line per event."""
    rid = event.run_id
    if isinstance(event, RunStarted):
        total = "?" if event.total_units is None else str(event.total_units)
        return f"[{rid}] {event.flow} started ({total} {event.unit})"
    if isinstance(event, ChunkCompleted):
        total = "?" if event.total_units is None else str(event.total_units)
        eta = f" eta {format_duration(event.eta_s)}" if event.eta_s is not None else ""
        note = f" ({event.note})" if event.note else ""
        err = f" [{event.errors} error(s)]" if event.errors else ""
        return (
            f"[{rid}] {event.done_units}/{total} {event.unit} "
            f"{event.evals_per_s:.1f}/s{eta}{err}{note}"
        )
    if isinstance(event, Heartbeat):
        return f"[{rid}] heartbeat {event.worker}"
    if isinstance(event, BestSoFar):
        label = f" {event.label}" if event.label else ""
        return f"[{rid}] best-so-far {event.objective:g}{label}"
    if isinstance(event, CacheStats):
        return (
            f"[{rid}] cache {event.hits} hit(s) / {event.misses} miss(es) "
            f"({event.hit_rate:.1%})"
        )
    if isinstance(event, WorkerStalled):
        doing = f" while {event.note}" if event.note else ""
        return (
            f"[{rid}] STALL {event.worker} silent "
            f"{event.silent_for_s:.1f}s (> {event.threshold_s:g}s){doing}"
        )
    if isinstance(event, RunInterrupted):
        return (
            f"[{rid}] INTERRUPTED after {event.done_units} unit(s)"
            + (f": {event.reason}" if event.reason else "")
        )
    if isinstance(event, RunFinished):
        best = (
            f", best {event.best_objective:g}"
            if event.best_objective is not None
            else ""
        )
        return (
            f"[{rid}] finished: {event.done_units} unit(s) "
            f"in {event.wall_s:.1f}s{best}"
        )
    if isinstance(event, ConvergenceUpdate):
        flag = " STAGNATED" if event.stagnated else ""
        return (
            f"[{rid}] incumbent {event.objective:g} "
            f"({event.improvements} improvement(s) / {event.observed} "
            f"scored, {event.since_improvement} since last){flag}"
        )
    if isinstance(event, ParetoFrontSnapshot):
        label = f" {event.label}" if event.label else ""
        return f"[{rid}] pareto[{event.flow}] {event.size} point(s){label}"
    if isinstance(event, FunnelSnapshot):
        return (
            f"[{rid}] funnel[{event.flow}] enumerated={event.enumerated} "
            f"deduped={event.deduped} cache={event.cache_hits} "
            f"evaluated={event.evaluated} invalid={event.invalid} "
            f"dominated={event.dominated}"
        )
    return f"[{rid}] {type(event).__name__}"


def format_duration(seconds: Optional[float]) -> str:
    """``mm:ss`` (or ``h:mm:ss``) formatting for ETAs; ``"--:--"`` if None."""
    if seconds is None or seconds < 0:
        return "--:--"
    total = int(round(seconds))
    hours, rest = divmod(total, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes:02d}:{secs:02d}"


# --------------------------------------------------------------------- #
# Throughput / ETA estimation
# --------------------------------------------------------------------- #


class EtaEstimator:
    """Rolling evals/sec over a window of event time, and the ETA it implies.

    Feeds on ``(ts, cumulative_done)`` samples; the rate is the slope
    between the oldest in-window sample and the newest. When the window
    has no extent yet (first sample, or a clock that hasn't advanced),
    the instantaneous ``completed / wall_s`` of the last chunk is used.
    """

    def __init__(self, window_s: float = RATE_WINDOW_S) -> None:
        self.window_s = window_s
        self._samples: List[Tuple[float, int]] = []
        self._last_instant = 0.0

    def update(self, ts: float, done: int, completed: int, wall_s: float) -> None:
        self._samples.append((ts, done))
        if wall_s > 0:
            self._last_instant = completed / wall_s
        cutoff = ts - self.window_s
        while len(self._samples) > 2 and self._samples[0][0] < cutoff:
            self._samples.pop(0)

    def rate(self) -> float:
        """Units per second (0.0 until anything is measurable)."""
        if len(self._samples) >= 2:
            (t0, d0), (t1, d1) = self._samples[0], self._samples[-1]
            if t1 > t0:
                return (d1 - d0) / (t1 - t0)
        return self._last_instant

    def eta_s(self, done: int, total: Optional[int]) -> Optional[float]:
        """Seconds to completion, or None without a total / a rate."""
        if total is None:
            return None
        rate = self.rate()
        if rate <= 0:
            return None
        return max(0.0, (total - done) / rate)


# --------------------------------------------------------------------- #
# Run handles
# --------------------------------------------------------------------- #


class RunHandle:
    """Emit-side view of one open run: progress, best, cache, lifecycle.

    Created by :meth:`ProgressEmitter.start_run`; all convenience
    methods stamp events with the emitter's clock and keep the run's
    cumulative counters, incumbent objective and rolling ETA so emit
    sites stay one-liners.
    """

    enabled = True

    def __init__(
        self,
        emitter: "ProgressEmitter",
        run_id: str,
        flow: str,
        total_units: Optional[int],
        unit: str,
    ) -> None:
        self._emitter = emitter
        self.run_id = run_id
        self.flow = flow
        self.total_units = total_units
        self.unit = unit
        self.done_units = 0
        self.errors = 0
        self.best_objective: Optional[float] = None
        self.started_ts = emitter.clock()
        self._estimator = EtaEstimator()
        self._closed = False

    # -- progress -------------------------------------------------------- #

    def advance(
        self,
        completed: int,
        *,
        errors: int = 0,
        wall_s: float = 0.0,
        worker: str = "",
        index: int = -1,
        note: str = "",
    ) -> None:
        """Record ``completed`` done units and emit Heartbeat + ChunkCompleted."""
        now = self._emitter.clock()
        who = worker or worker_id()
        self.done_units += completed
        self.errors += errors
        self._estimator.update(now, self.done_units, completed, wall_s)
        self._emitter.emit(Heartbeat(run_id=self.run_id, worker=who, ts=now))
        self._emitter.emit(
            ChunkCompleted(
                run_id=self.run_id,
                index=index,
                completed=completed,
                errors=errors,
                wall_s=wall_s,
                worker=who,
                done_units=self.done_units,
                total_units=self.total_units,
                unit=self.unit,
                evals_per_s=self._estimator.rate(),
                eta_s=self._estimator.eta_s(self.done_units, self.total_units),
                note=note,
                ts=now,
            )
        )

    def heartbeat(self, worker: str = "", note: str = "") -> None:
        """Emit a bare liveness ping, optionally saying what starts now.

        Unlike :meth:`advance` this marks the *beginning* of a unit of
        work: the server pings with the request's fingerprints before
        handing a kernel to a shard thread, so a subsequent stall
        warning can name the exact request that wedged the worker.
        """
        self._emitter.emit(
            Heartbeat(
                run_id=self.run_id,
                worker=worker or worker_id(),
                note=note,
                ts=self._emitter.clock(),
            )
        )

    def best(
        self,
        objective: float,
        *,
        total_cycles: float = 0.0,
        utilization: float = 0.0,
        label: str = "",
    ) -> bool:
        """Emit :class:`BestSoFar` iff ``objective`` beats the incumbent."""
        if self.best_objective is not None and objective >= self.best_objective:
            return False
        self.best_objective = objective
        self._emitter.emit(
            BestSoFar(
                run_id=self.run_id,
                objective=objective,
                total_cycles=total_cycles,
                utilization=utilization,
                label=label,
                ts=self._emitter.clock(),
            )
        )
        return True

    def cache_stats(
        self,
        hits: int,
        misses: int,
        *,
        dedup_skipped: int = 0,
        partial_hits: int = 0,
        partial_misses: int = 0,
    ) -> None:
        """Snapshot the engine cache counters into the stream."""
        requests = hits + misses
        self._emitter.emit(
            CacheStats(
                run_id=self.run_id,
                hits=hits,
                misses=misses,
                hit_rate=hits / requests if requests else 0.0,
                dedup_skipped=dedup_skipped,
                partial_hits=partial_hits,
                partial_misses=partial_misses,
                ts=self._emitter.clock(),
            )
        )

    # -- lifecycle ------------------------------------------------------- #

    def finish(self) -> None:
        """Close the run normally (idempotent)."""
        if self._closed:
            return
        self._closed = True
        now = self._emitter.clock()
        self._emitter._pop(self)
        self._emitter.emit(
            RunFinished(
                run_id=self.run_id,
                done_units=self.done_units,
                wall_s=now - self.started_ts,
                best_objective=self.best_objective,
                ts=now,
            )
        )

    def interrupt(self, reason: str = "") -> None:
        """Close the run as interrupted (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._emitter._pop(self)
        self._emitter.emit(
            RunInterrupted(
                run_id=self.run_id,
                done_units=self.done_units,
                reason=reason,
                ts=self._emitter.clock(),
            )
        )


class NullRunHandle:
    """The shared do-nothing handle of the disabled path."""

    enabled = False
    run_id = ""
    flow = ""
    unit = ""
    total_units: Optional[int] = None
    done_units = 0
    errors = 0
    best_objective: Optional[float] = None

    def advance(self, completed: int, **kwargs: Any) -> None:
        pass

    def heartbeat(self, worker: str = "", note: str = "") -> None:
        pass

    def best(self, objective: float, **kwargs: Any) -> bool:
        return False

    def cache_stats(self, hits: int, misses: int, **kwargs: Any) -> None:
        pass

    def finish(self) -> None:
        pass

    def interrupt(self, reason: str = "") -> None:
        pass


NULL_RUN = NullRunHandle()


# --------------------------------------------------------------------- #
# Emitters
# --------------------------------------------------------------------- #


class ProgressEmitter:
    """Fan events out to subscribers; tracks the open-run stack.

    ``clock`` is injectable for deterministic tests (defaults to wall
    time, which is what cross-process dashboards need). Subscribers are
    plain callables of one event; exceptions they raise propagate to the
    emit site (telemetry bugs should be loud in this codebase, not
    swallowed).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self.clock = clock
        self._subscribers: List[Callable[[ProgressEvent], None]] = []
        self._run_stack: List[RunHandle] = []
        self._next_run = 1

    # -- subscription ---------------------------------------------------- #

    def subscribe(self, subscriber: Callable[[ProgressEvent], None]) -> None:
        """Register a callable receiving every emitted event."""
        self._subscribers.append(subscriber)

    def emit(self, event: ProgressEvent) -> None:
        """Stamp ``ts`` (when unset) and deliver to every subscriber."""
        if not event.ts:
            event = dataclasses.replace(event, ts=self.clock())
        for subscriber in self._subscribers:
            subscriber(event)

    def close(self) -> None:
        """Close every subscriber that has a ``close()`` (JSONL sinks)."""
        for subscriber in self._subscribers:
            close = getattr(subscriber, "close", None)
            if close is not None:
                close()

    # -- runs ------------------------------------------------------------ #

    def start_run(
        self,
        flow: str,
        *,
        total_units: Optional[int] = None,
        unit: str = "units",
        accelerator: str = "",
        layer: str = "",
    ) -> RunHandle:
        """Open a run: emits :class:`RunStarted`, returns its handle."""
        run_id = f"r{self._next_run}"
        self._next_run += 1
        handle = RunHandle(self, run_id, flow, total_units, unit)
        self._run_stack.append(handle)
        self.emit(
            RunStarted(
                run_id=run_id,
                flow=flow,
                total_units=total_units,
                unit=unit,
                accelerator=accelerator,
                layer=layer,
                ts=handle.started_ts,
            )
        )
        return handle

    def current_run(self, unit: Optional[str] = None) -> Optional[RunHandle]:
        """The innermost open run (optionally only if its unit matches).

        This is how nested emit sites attach to their caller's run: the
        engine's ``evaluate_many`` accrues chunk progress into an
        enclosing mapper-search run instead of opening one run per batch.
        """
        if not self._run_stack:
            return None
        top = self._run_stack[-1]
        if unit is not None and top.unit != unit:
            return None
        return top

    def _pop(self, handle: RunHandle) -> None:
        if handle in self._run_stack:
            self._run_stack.remove(handle)


class NullProgressEmitter:
    """The allocation-free disabled emitter (ambient default)."""

    enabled = False

    @staticmethod
    def clock() -> float:
        return 0.0

    def subscribe(self, subscriber: Callable[[ProgressEvent], None]) -> None:
        pass

    def emit(self, event: ProgressEvent) -> None:
        pass

    def close(self) -> None:
        pass

    def start_run(self, flow: str, **kwargs: Any) -> NullRunHandle:
        return NULL_RUN

    def current_run(self, unit: Optional[str] = None) -> None:
        return None


NULL_EMITTER = NullProgressEmitter()

_current_emitter: ContextVar = ContextVar("repro_progress", default=NULL_EMITTER)


def current_emitter():
    """The ambient emitter (a no-op unless one is installed)."""
    return _current_emitter.get()


@contextmanager
def use_emitter(emitter) -> Iterator[None]:
    """Install ``emitter`` as the ambient event stream for the block."""
    token = _current_emitter.set(emitter)
    try:
        yield
    finally:
        _current_emitter.reset(token)


# --------------------------------------------------------------------- #
# Sinks and sources
# --------------------------------------------------------------------- #


class JsonlSink:
    """Append events to a JSONL file, one flushed line per event.

    Per-event flushing is deliberate: ``repro-latency top --follow``
    tails the file while the producing process is still running, and an
    interrupted run must leave every event it emitted on disk.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle: Optional[IO[str]] = open(self.path, "w")
        self.events_written = 0

    def __call__(self, event: ProgressEvent) -> None:
        if self._handle is None:
            raise ValueError(f"JsonlSink({self.path!r}) is closed")
        self._handle.write(json.dumps(event_to_dict(event), sort_keys=True) + "\n")
        self._handle.flush()
        self.events_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_events(path: str) -> List[ProgressEvent]:
    """Load a recorded events.jsonl (skipping blank/truncated last lines)."""
    out: List[ProgressEvent] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue  # a writer mid-line; the tail will be re-read
            out.append(event_from_dict(data))
    return out


def follow_events(
    path: str,
    poll_s: float = 0.5,
    *,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[List[ProgressEvent]]:
    """Tail a growing events.jsonl, yielding each poll's new events.

    Yields one (possibly empty) batch per poll, forever — the consumer
    decides when to stop (all runs closed, or Ctrl-C). A missing file is
    treated as not-yet-created: the generator waits for it to appear.
    """
    offset = 0
    buffer = ""
    while True:
        batch: List[ProgressEvent] = []
        try:
            with open(path) as handle:
                handle.seek(offset)
                chunk = handle.read()
                offset = handle.tell()
        except FileNotFoundError:
            chunk = ""
        buffer += chunk
        while "\n" in buffer:
            line, buffer = buffer.split("\n", 1)
            line = line.strip()
            if line:
                batch.append(event_from_dict(json.loads(line)))
        yield batch
        sleep(poll_s)


# --------------------------------------------------------------------- #
# Heartbeat-loss detection
# --------------------------------------------------------------------- #


class HeartbeatMonitor:
    """Detect workers that stopped heartbeating past a threshold.

    Feed it events (``emitter.subscribe(monitor.observe)`` or replay a
    recording) and call :meth:`check` periodically: a worker whose last
    :class:`Heartbeat`/:class:`ChunkCompleted` is older than
    ``threshold_s`` yields one :class:`WorkerStalled` warning per stall
    episode (re-armed when the worker revives). The clock is injectable
    so tests can drive stalls without sleeping.
    """

    def __init__(
        self,
        threshold_s: float = STALL_THRESHOLD_S,
        *,
        emitter: Optional[ProgressEmitter] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.threshold_s = threshold_s
        self.clock = clock
        self._emitter = emitter
        self.last_seen: Dict[str, float] = {}
        self._last_run: Dict[str, str] = {}
        self._warned: Dict[str, bool] = {}
        self._busy: Dict[str, str] = {}

    def observe(self, event: ProgressEvent) -> None:
        """Update liveness from one event (usable as a subscriber)."""
        worker = getattr(event, "worker", "")
        if not worker or isinstance(event, WorkerStalled):
            return
        self.last_seen[worker] = event.ts
        self._last_run[worker] = event.run_id
        self._warned[worker] = False
        # What is the worker occupied with? A Heartbeat note announces
        # work starting; a ChunkCompleted means it came back.
        if isinstance(event, Heartbeat) and event.note:
            self._busy[worker] = event.note
        elif isinstance(event, ChunkCompleted):
            self._busy.pop(worker, None)

    def busy_note(self, worker: str) -> str:
        """What ``worker`` last announced it was doing ("" when idle)."""
        return self._busy.get(worker, "")

    def check(self, now: Optional[float] = None) -> List[WorkerStalled]:
        """Return (and emit, when wired) new stall warnings as of ``now``."""
        now = self.clock() if now is None else now
        warnings: List[WorkerStalled] = []
        for worker, seen in sorted(self.last_seen.items()):
            silent = now - seen
            if silent <= self.threshold_s or self._warned.get(worker):
                continue
            self._warned[worker] = True
            warning = WorkerStalled(
                run_id=self._last_run.get(worker, ""),
                worker=worker,
                silent_for_s=silent,
                threshold_s=self.threshold_s,
                note=self._busy.get(worker, ""),
                ts=now,
            )
            warnings.append(warning)
            if self._emitter is not None:
                self._emitter.emit(warning)
        return warnings

    def stalled(self, now: Optional[float] = None) -> List[str]:
        """Workers currently past the threshold (no one-shot arming)."""
        now = self.clock() if now is None else now
        return sorted(
            worker
            for worker, seen in self.last_seen.items()
            if now - seen > self.threshold_s
        )


# --------------------------------------------------------------------- #
# Metrics bridge
# --------------------------------------------------------------------- #


class MetricsSubscriber:
    """Mirror the event stream into a :class:`MetricsRegistry`.

    Exposes the live counters a scrape wants while a search is running:
    ``repro_progress_evals_per_second``, ``repro_progress_cache_hit_rate``,
    ``repro_progress_active_workers`` (workers heard from within the
    stall threshold of the latest event), ``repro_progress_best_objective``
    and the run/unit/error totals. Wired automatically by the CLI when
    both ``--metrics`` and an event stream are active.
    """

    def __init__(
        self, registry, stall_threshold_s: float = STALL_THRESHOLD_S
    ) -> None:
        self._registry = registry
        self._threshold = stall_threshold_s
        self._last_seen: Dict[str, float] = {}

    def __call__(self, event: ProgressEvent) -> None:
        registry = self._registry
        if isinstance(event, (Heartbeat, ChunkCompleted)):
            if event.worker:
                self._last_seen[event.worker] = event.ts
            active = sum(
                1
                for seen in self._last_seen.values()
                if event.ts - seen <= self._threshold
            )
            registry.gauge(
                "repro_progress_active_workers",
                "Workers heard from within the stall threshold.",
            ).set(active)
        if isinstance(event, ChunkCompleted):
            registry.counter(
                "repro_progress_units_total", "Work units completed."
            ).inc(event.completed)
            if event.errors:
                registry.counter(
                    "repro_progress_errors_total",
                    "Infeasible / violating work units.",
                ).inc(event.errors)
            if event.unit == "evals":
                registry.gauge(
                    "repro_progress_evals_per_second",
                    "Rolling evaluation throughput.",
                ).set(event.evals_per_s)
        elif isinstance(event, CacheStats):
            registry.gauge(
                "repro_progress_cache_hit_rate",
                "Engine cache hit rate of the emitting run.",
            ).set(event.hit_rate)
        elif isinstance(event, BestSoFar):
            registry.gauge(
                "repro_progress_best_objective",
                "Incumbent objective of the emitting run.",
            ).set(event.objective)
        elif isinstance(event, RunStarted):
            registry.counter(
                "repro_progress_runs_started_total", "Runs started."
            ).inc()
        elif isinstance(event, RunFinished):
            registry.counter(
                "repro_progress_runs_finished_total", "Runs finished."
            ).inc()
        elif isinstance(event, RunInterrupted):
            registry.counter(
                "repro_progress_runs_interrupted_total", "Runs interrupted."
            ).inc()
        elif isinstance(event, WorkerStalled):
            registry.counter(
                "repro_progress_worker_stalls_total",
                "Heartbeat-loss warnings emitted.",
            ).inc()
        elif isinstance(event, ConvergenceUpdate):
            registry.gauge(
                "repro_campaign_best_objective",
                "Best objective found by the active search campaign.",
            ).set(event.objective)
            registry.gauge(
                "repro_campaign_observed",
                "Scored candidates observed by the active campaign.",
            ).set(float(event.observed))
            registry.gauge(
                "repro_campaign_improvements",
                "Incumbent improvements in the active campaign.",
            ).set(float(event.improvements))
            registry.gauge(
                "repro_campaign_stagnation",
                "Candidates since the incumbent last improved.",
            ).set(float(event.since_improvement))
        elif isinstance(event, ParetoFrontSnapshot):
            registry.gauge(
                "repro_campaign_pareto_size",
                "Size of the latest recorded Pareto front.",
            ).set(float(event.size))
        elif isinstance(event, FunnelSnapshot):
            for bucket in (
                "enumerated", "deduped", "cache_hits",
                "evaluated", "invalid", "dominated",
            ):
                registry.gauge(
                    "repro_campaign_funnel",
                    "Campaign candidate funnel, by terminal bucket.",
                    labels={"bucket": bucket, "flow": event.flow},
                ).set(float(getattr(event, bucket)))


def console_subscriber(
    write: Callable[[str], None] = print, *, verbose: bool = False
) -> Callable[[ProgressEvent], None]:
    """A subscriber printing notable events as console lines.

    By default only lifecycle events, errors, incumbents and stall
    warnings print (what a human watching a long run wants); ``verbose``
    prints every event.
    """

    def _print(event: ProgressEvent) -> None:
        notable = isinstance(
            event,
            (RunStarted, RunFinished, RunInterrupted, BestSoFar, WorkerStalled),
        ) or (isinstance(event, ChunkCompleted) and event.errors > 0)
        if verbose or notable:
            write(format_event(event))

    return _print


__all__ = [
    "BestSoFar",
    "CacheStats",
    "ChunkCompleted",
    "ConvergenceUpdate",
    "EVENT_TYPES",
    "EtaEstimator",
    "FunnelSnapshot",
    "Heartbeat",
    "HeartbeatMonitor",
    "JsonlSink",
    "MetricsSubscriber",
    "NULL_EMITTER",
    "NULL_RUN",
    "NullProgressEmitter",
    "NullRunHandle",
    "ParetoFrontSnapshot",
    "ProgressEmitter",
    "ProgressEvent",
    "RATE_WINDOW_S",
    "RunFinished",
    "RunHandle",
    "RunInterrupted",
    "RunStarted",
    "STALL_THRESHOLD_S",
    "WorkerStalled",
    "console_subscriber",
    "current_emitter",
    "event_from_dict",
    "event_to_dict",
    "follow_events",
    "format_event",
    "format_duration",
    "read_events",
    "use_emitter",
    "worker_id",
]
