"""Span records: the serializable unit of the tracing subsystem.

A :class:`SpanRecord` is one timed, attributed node of the evaluation
tree (network -> layer -> mapping candidate -> step1/2/3 -> per-DTL).
Records are plain mutable dataclasses so they pickle cheaply across
process-pool workers; the hierarchy lives in ``parent_id`` links rather
than object nesting, which is what makes order-preserving merges of
worker-produced records possible (:meth:`repro.observability.Tracer.merge`).

Wall-clock fields (``start_us`` / ``duration_us``) are microseconds from
``time.perf_counter`` — meaningful within one process only. Everything a
test or a report should compare across runs lives in ``name`` and
``attributes`` (the model-domain payload: SS_u, MUW, combine decisions,
scenario classification, ...), which is why :func:`tree_shape` drops the
timestamps.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple


def clean_attribute(value: Any) -> Any:
    """Coerce an attribute value to a JSON-friendly primitive.

    Numbers, booleans and strings pass through; everything else (enums,
    operands, tuples of port keys, ...) is stringified so records stay
    picklable and export byte-identically regardless of origin process.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclasses.dataclass
class SpanRecord:
    """One finished (or in-flight) span.

    Attributes
    ----------
    span_id / parent_id:
        Tracer-local identity links; remapped on merge. ``parent_id`` is
        ``None`` for roots.
    name:
        Taxonomy node name (see ``docs/OBSERVABILITY.md``).
    start_us / duration_us:
        Wall-clock placement, microseconds, process-local.
    attributes:
        Model-domain payload (primitives only — see :func:`clean_attribute`).
    track:
        Export lane: 0 for the main process; merged worker-chunk subtrees
        get the 1-based chunk index so Chrome's viewer shows fan-out on
        separate rows without fabricating cross-process timestamps.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start_us: float
    duration_us: float = 0.0
    attributes: Dict[str, Any] = dataclasses.field(default_factory=dict)
    track: int = 0


@dataclasses.dataclass
class SpanNode:
    """Tree view over a flat record list (built by :func:`span_tree`)."""

    record: SpanRecord
    children: List["SpanNode"] = dataclasses.field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record.name

    @property
    def attributes(self) -> Dict[str, Any]:
        return self.record.attributes

    def find(self, name: str) -> List["SpanNode"]:
        """Every descendant (including self) whose name equals ``name``."""
        out = [self] if self.record.name == name else []
        for child in self.children:
            out.extend(child.find(name))
        return out


def span_tree(records: Sequence[SpanRecord]) -> List[SpanNode]:
    """Reconstruct the span forest from parent links, preserving record order."""
    nodes = {r.span_id: SpanNode(r) for r in records}
    roots: List[SpanNode] = []
    for record in records:
        node = nodes[record.span_id]
        parent = nodes.get(record.parent_id) if record.parent_id is not None else None
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


def tree_shape(records: Sequence[SpanRecord]) -> Tuple:
    """The timestamp-free shape of a span forest.

    Two runs are "the same trace modulo timestamps" iff their shapes are
    equal: same names, same attributes, same child order. This is the
    equality the serial-vs-process-pool tests assert.
    """

    def shape(node: SpanNode) -> Tuple:
        return (
            node.record.name,
            tuple(sorted(node.record.attributes.items())),
            tuple(shape(c) for c in node.children),
        )

    return tuple(shape(root) for root in span_tree(records))
