"""The persistent run ledger: telemetry that survives the process.

PR 2's spans and metrics die with the run; the ledger is the durable
complement — an **append-only, schema-versioned** store of every engine
evaluation and benchmark result, diffable across commits. One row
(:class:`RunRecord`) carries the design-point identity (accelerator /
mapping / options fingerprints), the full CC decomposition of the paper
(``CC_ideal``, spatial stall, ``SS_overall``, preload / offload), the
per-unit-memory ``SS_comb`` map, scenario, utilization, cache provenance,
wall time and the git SHA it was measured at.

Storage is stdlib :mod:`sqlite3` (no new dependencies) with a JSONL
export for snapshots that belong in version control — the CI baseline
ledger is a committed ``.jsonl`` file. Both forms load back through
:func:`load_snapshot`, and :func:`diff_records` compares two snapshots
per metric with configurable tolerances — the regression gate behind
``repro-latency diff``.

Like the tracer and metrics registry, the ledger is ambient and off by
default: :func:`current_ledger` returns a no-op :data:`NULL_LEDGER`
unless :func:`use_ledger` installed a real one, and every emit site
guards on ``ledger.enabled`` so the disabled path allocates nothing::

    from repro.observability import RunLedger, use_ledger

    with RunLedger("runs.sqlite") as ledger, use_ledger(ledger):
        engine.evaluate(mapping)        # row appended automatically
    ledger.export_jsonl("runs.jsonl")   # committable snapshot

or from any CLI subcommand with ``--ledger runs.sqlite``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sqlite3
import subprocess
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Current on-disk schema version (``PRAGMA user_version`` in SQLite, the
#: ``"v"`` field of each JSONL line). v1 predates the ``ss_comb`` map,
#: ``git_sha`` and ``label`` columns; v2 predates the ``backend`` column
#: (which simulator backed a ``kind="verify"`` row); v3 predates the
#: ``campaign`` column (which search campaign a row belongs to).
#: :class:`RunLedger` migrates older files in place on open.
SCHEMA_VERSION = 4

#: Record fields gated by ``repro-latency diff`` (deterministic model
#: outputs). Timing fields (``ts``, ``wall_time_s``) and provenance
#: (``git_sha``) are stored and reported but never fail the gate; the
#: ``extra`` payload of bench records is reported as informational.
GATED_METRICS = (
    "cc_ideal",
    "cc_spatial",
    "spatial_stall",
    "ss_overall",
    "preload",
    "offload",
    "total_cycles",
    "utilization",
    "scenario",
)

#: String-valued fields compared by equality in a diff.
GATED_IDENTITY = ("mapping_fp", "options_fp", "accelerator_fp")


@dataclasses.dataclass
class RunRecord:
    """One ledger row: a single evaluation, simulation or bench result.

    ``kind`` is ``"evaluation"`` (engine latency run), ``"bench"``
    (benchmark artifact routed through :mod:`benchmarks.conftest`), or
    any other caller-defined class. ``label`` disambiguates records
    sharing a kind (the bench name; free-form otherwise). ``backend``
    names the simulator backend a ``kind="verify"`` row ran against
    (``"event"``, ``"rtl"``, ``"both"``; rows written before v3 read
    back as ``"event"``) and stays empty for kinds with no backend
    axis. ``campaign`` names the search campaign a row was written
    under (``kind="campaign"``/``"campaign_phase"`` summary rows and,
    when the plane is active, the evaluation rows it produced; empty
    otherwise — and for all pre-v4 rows). ``ss_comb`` maps unit-memory
    keys (``"W@LB/L0"``) to their Step-2 combined stall; ``extra``
    carries free-form numeric payloads (bench metrics).
    """

    kind: str = "evaluation"
    label: str = ""
    ts: float = 0.0
    git_sha: str = "unknown"
    accelerator: str = ""
    layer: str = ""
    accelerator_fp: str = ""
    mapping_fp: str = ""
    options_fp: str = ""
    scenario: int = 0
    cc_ideal: float = 0.0
    cc_spatial: float = 0.0
    spatial_stall: float = 0.0
    ss_overall: float = 0.0
    preload: float = 0.0
    offload: float = 0.0
    total_cycles: float = 0.0
    utilization: float = 0.0
    cache_hit: Optional[bool] = None
    wall_time_s: float = 0.0
    backend: str = ""
    campaign: str = ""
    ss_comb: Dict[str, float] = dataclasses.field(default_factory=dict)
    extra: Dict[str, float] = dataclasses.field(default_factory=dict)

    def key(self) -> Tuple[str, str, str, str, str]:
        """The identity a diff matches baseline and candidate rows on.

        ``backend`` is part of the key so ``repro-latency diff`` gates
        each verification backend independently — an event-backend
        baseline never masks (or spuriously fails) an rtl-backend run.
        """
        return (
            self.kind, self.label, self.accelerator, self.layer,
            self.backend,
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready flat view (JSONL line sans the version field)."""
        data = dataclasses.asdict(self)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        """Inverse of :meth:`as_dict`; tolerant of missing (v1/v2) fields.

        Verification rows written before the ``backend`` column existed
        were all event-backend runs, so a ``kind="verify"`` row with no
        recorded backend normalizes to ``"event"`` — old baselines keep
        matching new event-backend candidates.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in fields}
        if kwargs.get("ss_comb") is None:
            kwargs["ss_comb"] = {}
        if kwargs.get("extra") is None:
            kwargs["extra"] = {}
        if not kwargs.get("backend"):
            kwargs["backend"] = (
                "event" if kwargs.get("kind") == "verify" else ""
            )
        return cls(**kwargs)


def record_from_report(
    report,
    *,
    kind: str = "evaluation",
    label: str = "",
    accelerator_fp: str = "",
    mapping_fp: str = "",
    options_fp: str = "",
    cache_hit: Optional[bool] = None,
    wall_time_s: float = 0.0,
    git_sha_value: Optional[str] = None,
) -> RunRecord:
    """Build a ledger row from a :class:`~repro.core.report.LatencyReport`.

    Captures the full CC decomposition plus the per-unit-memory
    ``SS_comb`` map from the report's Step-2 ``served_stalls``.
    """
    ss_comb = {
        f"{s.operand}@{s.memory}/L{s.level}": float(s.ss)
        for s in report.served_stalls
    }
    return RunRecord(
        kind=kind,
        label=label,
        ts=time.time(),
        git_sha=git_sha_value if git_sha_value is not None else git_sha(),
        accelerator=report.accelerator_name,
        layer=report.layer_name,
        accelerator_fp=accelerator_fp,
        mapping_fp=mapping_fp,
        options_fp=options_fp,
        scenario=int(report.scenario),
        cc_ideal=float(report.cc_ideal),
        cc_spatial=float(report.cc_spatial),
        spatial_stall=float(report.spatial_stall),
        ss_overall=float(report.ss_overall),
        preload=float(report.preload),
        offload=float(report.offload),
        total_cycles=float(report.total_cycles),
        utilization=float(report.utilization),
        cache_hit=cache_hit,
        wall_time_s=wall_time_s,
        ss_comb=ss_comb,
    )


def record_from_verification(
    *,
    seed: int,
    examples: int,
    cases_checked: int,
    violations: int,
    corpus_cases: int,
    corpus_violations: int,
    shrunk: int,
    wall_time_s: float = 0.0,
    backend: str = "event",
    git_sha_value: Optional[str] = None,
) -> RunRecord:
    """Build a ledger row for one ``repro verify`` run.

    Verification runs share the ledger with evaluations and benches (one
    row per run, ``kind="verify"``), so the run history shows when the
    property suite was last green and how many counterexamples each
    regression hunt produced. ``backend`` names the simulator axis the
    run exercised (``"event"``, ``"rtl"`` or ``"both"``) and is part of
    the diff key.
    """
    return RunRecord(
        kind="verify",
        label=f"seed={seed}",
        ts=time.time(),
        git_sha=git_sha_value if git_sha_value is not None else git_sha(),
        accelerator="generated",
        layer=f"{examples} examples",
        total_cycles=0.0,
        wall_time_s=wall_time_s,
        backend=backend,
        extra={
            "seed": float(seed),
            "examples": float(examples),
            "cases_checked": float(cases_checked),
            "violations": float(violations),
            "corpus_cases": float(corpus_cases),
            "corpus_violations": float(corpus_violations),
            "shrunk": float(shrunk),
        },
    )


def record_interruption(
    *,
    flow: str,
    done_units: int,
    total_units: Optional[int] = None,
    unit: str = "units",
    reason: str = "",
    wall_time_s: float = 0.0,
    git_sha_value: Optional[str] = None,
) -> RunRecord:
    """Build the ledger row a SIGINT'd run leaves behind.

    Interrupted runs used to vanish without a trace; now the partial
    per-evaluation rows are checkpointed as they complete and this one
    ``kind="interrupted"`` marker records how far the flow got, so a
    later session can see the run happened and resume past the covered
    prefix.
    """
    return RunRecord(
        kind="interrupted",
        label=flow,
        ts=time.time(),
        git_sha=git_sha_value if git_sha_value is not None else git_sha(),
        accelerator=reason,
        layer=f"{done_units} {unit}",
        wall_time_s=wall_time_s,
        extra={
            "done_units": float(done_units),
            "total_units": float(total_units if total_units is not None else -1),
        },
    )


def record_slow_request(
    *,
    accelerator_fp: str,
    mapping_fp: str,
    options_fp: str = "",
    source: str = "evaluated",
    shard: Optional[int] = None,
    total_ms: float = 0.0,
    queue_wait_ms: float = 0.0,
    kernel_ms: float = 0.0,
    store_write_ms: float = 0.0,
    coalesce_wait_ms: float = 0.0,
    queue_depth: int = 0,
    threshold_ms: float = 0.0,
    git_sha_value: Optional[str] = None,
) -> RunRecord:
    """Build the ``kind="slow_request"`` row the evaluation daemon writes
    for a request whose server-side wall time exceeded ``--slow-ms``.

    The row carries the request's fingerprints (enough to replay it
    against the store or a fresh engine) and the per-phase breakdown of
    where the time went, so a post-mortem can tell queue pressure from a
    genuinely expensive kernel without re-running anything.
    """
    return RunRecord(
        kind="slow_request",
        label=source,
        ts=time.time(),
        git_sha=git_sha_value if git_sha_value is not None else git_sha(),
        accelerator_fp=accelerator_fp,
        mapping_fp=mapping_fp,
        options_fp=options_fp,
        wall_time_s=total_ms / 1e3,
        extra={
            "total_ms": float(total_ms),
            "queue_wait_ms": float(queue_wait_ms),
            "kernel_ms": float(kernel_ms),
            "store_write_ms": float(store_write_ms),
            "coalesce_wait_ms": float(coalesce_wait_ms),
            "queue_depth": float(queue_depth),
            "threshold_ms": float(threshold_ms),
            "shard": float(shard if shard is not None else -1),
        },
    )


_GIT_SHA_CACHE: Optional[str] = None


def git_sha(short: bool = True) -> str:
    """The repository HEAD SHA, cached per process; ``"unknown"`` off-repo."""
    global _GIT_SHA_CACHE
    if _GIT_SHA_CACHE is None:
        cmd = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
        try:
            out = subprocess.run(
                cmd,
                capture_output=True,
                text=True,
                timeout=5,
                cwd=os.path.dirname(os.path.abspath(__file__)),
            )
            _GIT_SHA_CACHE = out.stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA_CACHE = "unknown"
    return _GIT_SHA_CACHE


# --------------------------------------------------------------------- #
# SQLite store
# --------------------------------------------------------------------- #

_SCALAR_COLUMNS_V1 = (
    # name, SQL type  — the v1 schema (no ss_comb_json / git_sha / label).
    ("kind", "TEXT"),
    ("ts", "REAL"),
    ("accelerator", "TEXT"),
    ("layer", "TEXT"),
    ("accelerator_fp", "TEXT"),
    ("mapping_fp", "TEXT"),
    ("options_fp", "TEXT"),
    ("scenario", "INTEGER"),
    ("cc_ideal", "REAL"),
    ("cc_spatial", "REAL"),
    ("spatial_stall", "REAL"),
    ("ss_overall", "REAL"),
    ("preload", "REAL"),
    ("offload", "REAL"),
    ("total_cycles", "REAL"),
    ("utilization", "REAL"),
    ("cache_hit", "INTEGER"),
    ("wall_time_s", "REAL"),
    ("extra_json", "TEXT"),
)

#: Columns v2 added on top of v1. Migration = ALTER TABLE ADD COLUMN for
#: each, so a v1 file opens in place with defaults for old rows.
_V2_ADDED_COLUMNS = (
    ("label", "TEXT", "''"),
    ("git_sha", "TEXT", "'unknown'"),
    ("ss_comb_json", "TEXT", "'{}'"),
)

#: Columns v3 added on top of v2 (same ALTER TABLE migration pattern).
#: The empty default is what :meth:`RunRecord.from_dict` normalizes to
#: ``"event"`` for pre-v3 verification rows.
_V3_ADDED_COLUMNS = (
    ("backend", "TEXT", "''"),
)

#: Columns v4 added on top of v3: which search campaign a row belongs
#: to. Pre-v4 rows read back with the empty string (no campaign).
_V4_ADDED_COLUMNS = (
    ("campaign", "TEXT", "''"),
)

_ALL_COLUMNS = (
    tuple(n for n, _ in _SCALAR_COLUMNS_V1)
    + tuple(n for n, _, _ in _V2_ADDED_COLUMNS)
    + tuple(n for n, _, _ in _V3_ADDED_COLUMNS)
    + tuple(n for n, _, _ in _V4_ADDED_COLUMNS)
)


def _create_v1(conn: sqlite3.Connection) -> None:
    """Create the historical v1 schema (kept for migration tests)."""
    cols = ", ".join(f"{name} {typ}" for name, typ in _SCALAR_COLUMNS_V1)
    conn.execute(f"CREATE TABLE runs (id INTEGER PRIMARY KEY AUTOINCREMENT, {cols})")
    conn.execute("PRAGMA user_version = 1")
    conn.commit()


_MIGRATION_COLUMNS = {
    # target version -> columns its migration step adds
    2: _V2_ADDED_COLUMNS,
    3: _V3_ADDED_COLUMNS,
    4: _V4_ADDED_COLUMNS,
}


def _migrate(conn: sqlite3.Connection, from_version: int) -> None:
    """Bring an older on-disk schema up to :data:`SCHEMA_VERSION`.

    Migrations chain: a v1 file gets the v2 columns, then the v3
    columns, then the v4 columns — each step a pure ``ALTER TABLE ADD
    COLUMN`` with a default, so old rows read back with the documented
    absent-value semantics.
    """
    if not 1 <= from_version < SCHEMA_VERSION:
        raise LedgerSchemaError(
            f"cannot migrate ledger schema v{from_version} "
            f"(this build reads v1..v{SCHEMA_VERSION})"
        )
    for target in range(from_version + 1, SCHEMA_VERSION + 1):
        for name, typ, default in _MIGRATION_COLUMNS[target]:
            conn.execute(
                f"ALTER TABLE runs ADD COLUMN {name} {typ} DEFAULT {default}"
            )
    conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
    conn.commit()


class LedgerSchemaError(RuntimeError):
    """The on-disk schema is newer than this build or not migratable."""


class RunLedger:
    """Append-only SQLite ledger of :class:`RunRecord` rows.

    Opening a path creates the database (schema v\\ :data:`SCHEMA_VERSION`)
    or migrates an older one in place; a file written by a *newer* build
    raises :class:`LedgerSchemaError` instead of guessing. The public
    surface is insert-and-read only — there is deliberately no update or
    delete, so a ledger can serve as an audit trail.
    """

    enabled = True

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._ensure_schema()

    # -- schema --------------------------------------------------------- #

    @property
    def schema_version(self) -> int:
        return int(self._conn.execute("PRAGMA user_version").fetchone()[0])

    def _ensure_schema(self) -> None:
        version = self.schema_version
        has_table = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='runs'"
        ).fetchone()
        if not has_table:
            _create_v1(self._conn)
            _migrate(self._conn, 1)
            return
        if version == SCHEMA_VERSION:
            return
        if version > SCHEMA_VERSION:
            raise LedgerSchemaError(
                f"ledger {self.path!r} has schema v{version}; this build "
                f"reads at most v{SCHEMA_VERSION} — refusing to write"
            )
        _migrate(self._conn, version)

    # -- writes --------------------------------------------------------- #

    def append(self, record: RunRecord) -> None:
        """Insert one row (never updates existing rows)."""
        self.append_many((record,))

    def append_many(self, records: Sequence[RunRecord]) -> None:
        """Insert a batch of rows in one transaction."""
        if not records:
            return
        rows = [self._row_of(r) for r in records]
        placeholders = ", ".join("?" for _ in _ALL_COLUMNS)
        sql = (
            f"INSERT INTO runs ({', '.join(_ALL_COLUMNS)}) "
            f"VALUES ({placeholders})"
        )
        with self._lock:
            self._conn.executemany(sql, rows)
            self._conn.commit()

    @staticmethod
    def _row_of(record: RunRecord) -> Tuple:
        cache_hit = None if record.cache_hit is None else int(record.cache_hit)
        return (
            record.kind,
            record.ts,
            record.accelerator,
            record.layer,
            record.accelerator_fp,
            record.mapping_fp,
            record.options_fp,
            record.scenario,
            record.cc_ideal,
            record.cc_spatial,
            record.spatial_stall,
            record.ss_overall,
            record.preload,
            record.offload,
            record.total_cycles,
            record.utilization,
            cache_hit,
            record.wall_time_s,
            json.dumps(record.extra, sort_keys=True),
            record.label,
            record.git_sha,
            json.dumps(record.ss_comb, sort_keys=True),
            record.backend,
            record.campaign,
        )

    # -- reads ---------------------------------------------------------- #

    def __len__(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    def records(
        self, kind: Optional[str] = None, sha: Optional[str] = None
    ) -> List[RunRecord]:
        """All rows in insertion order, optionally filtered."""
        sql = f"SELECT {', '.join(_ALL_COLUMNS)} FROM runs"
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if sha is not None:
            clauses.append("git_sha = ?")
            params.append(sha)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY id"
        out: List[RunRecord] = []
        for row in self._conn.execute(sql, params):
            data = dict(zip(_ALL_COLUMNS, row))
            data["extra"] = json.loads(data.pop("extra_json") or "{}")
            data["ss_comb"] = json.loads(data.pop("ss_comb_json") or "{}")
            hit = data.get("cache_hit")
            data["cache_hit"] = None if hit is None else bool(hit)
            out.append(RunRecord.from_dict(data))
        return out

    # -- snapshots ------------------------------------------------------ #

    def export_jsonl(self, path: str) -> int:
        """Write every row as one JSON object per line; returns the count.

        Each line carries ``"v": SCHEMA_VERSION`` so older snapshots stay
        loadable (missing fields default, exactly like the SQLite
        migration).
        """
        records = self.records()
        with open(path, "w") as handle:
            for record in records:
                line = {"v": SCHEMA_VERSION}
                line.update(record.as_dict())
                handle.write(json.dumps(line, sort_keys=True) + "\n")
        return len(records)

    def import_jsonl(self, path: str) -> int:
        """Append every line of a JSONL snapshot; returns the count."""
        records = load_jsonl(path)
        self.append_many(records)
        return len(records)

    # -- lifecycle ------------------------------------------------------ #

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_jsonl(path: str) -> List[RunRecord]:
    """Read a JSONL snapshot (any schema version) into records."""
    out: List[RunRecord] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            version = int(data.pop("v", 1))
            if version > SCHEMA_VERSION:
                raise LedgerSchemaError(
                    f"snapshot {path!r} line has schema v{version}; this "
                    f"build reads at most v{SCHEMA_VERSION}"
                )
            out.append(RunRecord.from_dict(data))
    return out


def load_snapshot(path: str, sha: Optional[str] = None) -> List[RunRecord]:
    """Load a ledger snapshot — SQLite database or JSONL export.

    Dispatches on content, not extension: SQLite files start with the
    16-byte ``"SQLite format 3"`` magic. ``sha`` filters to records of
    one commit (for diffing two SHAs inside one ledger).
    """
    with open(path, "rb") as handle:
        magic = handle.read(16)
    if magic.startswith(b"SQLite format 3"):
        with RunLedger(path) as ledger:
            records = ledger.records(sha=sha)
        return records
    records = load_jsonl(path)
    if sha is not None:
        records = [r for r in records if r.git_sha == sha]
    return records


# --------------------------------------------------------------------- #
# Diff / regression gate
# --------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class MetricDelta:
    """One compared metric of one (kind, label, accelerator, layer,
    backend) key."""

    key: Tuple[str, str, str, str, str]
    metric: str
    baseline: Optional[float]
    candidate: Optional[float]
    drifted: bool
    gated: bool

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.candidate is None:
            return None
        return self.candidate - self.baseline

    @property
    def rel_change(self) -> Optional[float]:
        if self.delta is None:
            return None
        if self.baseline == 0:
            return None  # undefined against a zero baseline
        return self.delta / abs(self.baseline)

    def describe(self) -> str:
        """One aligned line for the diff table."""
        kind, label, accelerator, layer, backend = self.key
        where = "/".join(p for p in (kind, label, layer, backend) if p)
        if self.baseline is None:
            return f"  + {where} {self.metric}: added ({self.candidate})"
        if self.candidate is None:
            return f"  - {where} {self.metric}: removed (was {self.baseline})"
        rel = (
            f" ({self.rel_change:+.3%})" if self.rel_change is not None else ""
        )
        flag = " DRIFT" if self.drifted else ""
        return (
            f"  {where} {self.metric}: {self.baseline:g} -> "
            f"{self.candidate:g}{rel}{flag}"
        )


@dataclasses.dataclass(frozen=True)
class LedgerDiff:
    """The full result of comparing two snapshots."""

    deltas: Tuple[MetricDelta, ...]
    missing_keys: Tuple[Tuple[str, str, str, str, str], ...]
    added_keys: Tuple[Tuple[str, str, str, str, str], ...]

    @property
    def drifted(self) -> Tuple[MetricDelta, ...]:
        return tuple(d for d in self.deltas if d.drifted)

    @property
    def clean(self) -> bool:
        return not self.drifted

    def describe(self, changed_only: bool = True) -> str:
        """Human-readable diff report."""
        lines: List[str] = []
        shown = [
            d
            for d in self.deltas
            if not changed_only or d.drifted or (d.delta not in (0.0, None))
        ]
        for delta in shown:
            lines.append(delta.describe())
        for key in self.missing_keys:
            lines.append(f"  - key missing from candidate: {key}")
        for key in self.added_keys:
            lines.append(f"  + key only in candidate: {key}")
        if not lines:
            lines.append("  (no changes)")
        verdict = (
            "clean" if self.clean else f"{len(self.drifted)} metric(s) drifted"
        )
        lines.append(f"diff: {verdict}")
        return "\n".join(lines)


def _last_per_key(records: Sequence[RunRecord]) -> Dict[Tuple, RunRecord]:
    """Collapse a snapshot to the most recent record of each key."""
    out: Dict[Tuple, RunRecord] = {}
    for record in records:
        out[record.key()] = record
    return out


def _metrics_of(record: RunRecord) -> Dict[str, Tuple[float, bool]]:
    """Flat ``{metric: (value, gated)}`` view of one record."""
    out: Dict[str, Tuple[float, bool]] = {}
    for name in GATED_METRICS:
        out[name] = (float(getattr(record, name)), True)
    for key, value in record.ss_comb.items():
        out[f"ss_comb.{key}"] = (float(value), True)
    for key, value in record.extra.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[f"extra.{key}"] = (float(value), False)
    out["wall_time_s"] = (float(record.wall_time_s), False)
    return out


def diff_records(
    baseline: Sequence[RunRecord],
    candidate: Sequence[RunRecord],
    *,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-6,
    strict_keys: bool = False,
) -> LedgerDiff:
    """Compare two snapshots per metric; the CI regression gate.

    Records are matched on :meth:`RunRecord.key` (latest record per key
    on both sides). A *gated* metric drifts when
    ``|candidate - baseline| > abs_tol + rel_tol * |baseline|`` — the
    ``abs_tol`` term keeps zero-baseline metrics (a stall-free preset's
    ``SS_overall``) from tripping on float noise while still catching a
    real regression. Fingerprints compare by equality. Non-gated metrics
    (wall times, bench ``extra`` payloads) are reported but never drift.

    Keys present on only one side are listed in ``missing_keys`` /
    ``added_keys``; with ``strict_keys`` a key missing from the candidate
    becomes a drifted delta (a disappeared measurement fails the gate).
    Metrics missing on one side of a matched key are reported as
    added/removed and never drift — new metrics appear routinely as the
    model grows.
    """
    base = _last_per_key(baseline)
    cand = _last_per_key(candidate)
    deltas: List[MetricDelta] = []
    missing = tuple(sorted(k for k in base if k not in cand))
    added = tuple(sorted(k for k in cand if k not in base))
    if strict_keys:
        for key in missing:
            deltas.append(
                MetricDelta(key, "<record>", 1.0, None, drifted=True, gated=True)
            )
    for key in sorted(base):
        if key not in cand:
            continue
        b_rec, c_rec = base[key], cand[key]
        b_metrics, c_metrics = _metrics_of(b_rec), _metrics_of(c_rec)
        for metric in sorted(set(b_metrics) | set(c_metrics)):
            b_val = b_metrics.get(metric)
            c_val = c_metrics.get(metric)
            if b_val is None or c_val is None:
                deltas.append(
                    MetricDelta(
                        key,
                        metric,
                        None if b_val is None else b_val[0],
                        None if c_val is None else c_val[0],
                        drifted=False,
                        gated=False,
                    )
                )
                continue
            value_b, gated = b_val
            value_c = c_val[0]
            drifted = gated and (
                abs(value_c - value_b) > abs_tol + rel_tol * abs(value_b)
            )
            deltas.append(
                MetricDelta(key, metric, value_b, value_c, drifted, gated)
            )
        for field in GATED_IDENTITY:
            value_b, value_c = getattr(b_rec, field), getattr(c_rec, field)
            if value_b and value_c and value_b != value_c:
                deltas.append(
                    MetricDelta(key, field, None, None, drifted=True, gated=True)
                )
    return LedgerDiff(tuple(deltas), missing, added)


# --------------------------------------------------------------------- #
# Ambient ledger
# --------------------------------------------------------------------- #


class NullLedger:
    """The no-op ambient default; accepts and drops everything."""

    enabled = False
    path = None

    def append(self, record: RunRecord) -> None:
        pass

    def append_many(self, records: Sequence[RunRecord]) -> None:
        pass

    def records(self, kind: Optional[str] = None, sha: Optional[str] = None) -> List[RunRecord]:
        return []

    def __len__(self) -> int:
        return 0

    def close(self) -> None:
        pass


NULL_LEDGER = NullLedger()

_current_ledger: ContextVar = ContextVar("repro_ledger", default=NULL_LEDGER)


def current_ledger():
    """The ambient ledger (a :class:`NullLedger` unless one is installed)."""
    return _current_ledger.get()


@contextmanager
def use_ledger(ledger) -> Iterator[None]:
    """Install ``ledger`` as the ambient run ledger for the enclosed block."""
    token = _current_ledger.set(ledger)
    try:
        yield
    finally:
        _current_ledger.reset(token)


__all__ = [
    "GATED_METRICS",
    "LedgerDiff",
    "LedgerSchemaError",
    "MetricDelta",
    "NULL_LEDGER",
    "NullLedger",
    "RunLedger",
    "RunRecord",
    "SCHEMA_VERSION",
    "current_ledger",
    "diff_records",
    "git_sha",
    "load_jsonl",
    "load_snapshot",
    "record_from_report",
    "record_from_verification",
    "record_interruption",
    "record_slow_request",
    "use_ledger",
]
