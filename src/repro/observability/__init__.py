"""repro.observability — hierarchical tracing, metrics, stall
attribution and a persistent run ledger for the whole evaluation path.

Zero-dependency substrate with four pieces (see ``docs/OBSERVABILITY.md``):

* :class:`Tracer` — hierarchical spans over the evaluation tree
  (network -> layer -> mapping candidate -> step1/2/3 -> per-DTL) carrying
  wall time *and* model-domain attributes (SS_u, MUW parameters, the
  Eq. (1)/(2) combine decision, scenario classification). Spans survive
  process-pool fan-out: workers ship serializable
  :class:`~repro.observability.span.SpanRecord` lists home and the engine
  merges them order-preserving, so serial and parallel runs produce the
  same tree modulo timestamps.
* :class:`MetricsRegistry` — counters / gauges / histograms (cache hit
  ratio, evaluations per second, mapper samples, per-phase latency
  percentiles) with JSON and Prometheus-text exporters.
* exporters — Chrome trace-event JSON (:func:`chrome_trace` /
  :func:`write_chrome_trace`), span-level reconciliation
  (:func:`reconcile_ss_overall`), and self-contained HTML run reports
  (:func:`render_report` — stall waterfall, CC breakdown, ledger
  trajectory).
* :class:`RunLedger` — append-only, schema-versioned SQLite store of
  every evaluation and bench result (fingerprints, CC decomposition,
  per-unit-memory ``SS_comb``, git SHA), with JSONL snapshots and
  :func:`diff_records` as a CI regression gate. Ambient like the
  tracer: :func:`use_ledger` / :func:`current_ledger`, no-op default.
* :class:`ProgressEmitter` — the *live* side: a typed event stream
  (:class:`RunStarted`, :class:`ChunkCompleted`, :class:`Heartbeat`,
  :class:`BestSoFar`, :class:`CacheStats`, :class:`RunInterrupted`,
  :class:`RunFinished`) every long-running flow emits into while it
  runs, with a :class:`JsonlSink` the ``repro-latency top`` dashboard
  (:func:`run_top`) follows. Ambient like the rest:
  :func:`use_emitter` / :func:`current_emitter`, no-op default.

Everything is off by default: the ambient tracer and registry are no-op
singletons, and the disabled path allocates nothing (the tracing-overhead
benchmark holds it under 5% of kernel time). Enable per scope::

    from repro.observability import Tracer, use_tracer, write_chrome_trace

    tracer = Tracer()
    with use_tracer(tracer):
        report = engine.evaluate(mapping)
    write_chrome_trace(tracer.records, "trace.json")

or from the CLI with ``--trace --trace-out trace.json`` / ``--metrics``.
"""

from repro.observability.campaign import (
    CampaignGateResult,
    CampaignRecorder,
    FUNNEL_BUCKETS,
    NULL_CAMPAIGN,
    NullCampaign,
    PROVENANCE_BUCKETS,
    PhaseFunnel,
    campaign_records,
    compare_campaigns,
    current_campaign,
    gate_campaigns,
    phase_records,
    select_campaign,
    use_campaign,
)
from repro.observability.distributed import (
    FlightRecorder,
    TraceContext,
    extract_trace,
    inject_trace,
    server_span_records,
    span_from_dict,
    span_to_dict,
    spans_from_wire,
    spans_to_wire,
)
from repro.observability.export import (
    chrome_trace,
    find_spans,
    load_chrome_trace,
    per_dtl_stalls,
    reconcile_ss_overall,
    write_chrome_trace,
)
from repro.observability.ledger import (
    LedgerDiff,
    LedgerSchemaError,
    MetricDelta,
    NULL_LEDGER,
    NullLedger,
    RunLedger,
    RunRecord,
    SCHEMA_VERSION,
    current_ledger,
    diff_records,
    git_sha,
    load_snapshot,
    record_from_report,
    use_ledger,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    current_metrics,
    use_metrics,
)
from repro.observability.progress import (
    BestSoFar,
    CacheStats,
    ChunkCompleted,
    ConvergenceUpdate,
    FunnelSnapshot,
    Heartbeat,
    HeartbeatMonitor,
    JsonlSink,
    MetricsSubscriber,
    NULL_EMITTER,
    NullProgressEmitter,
    ParetoFrontSnapshot,
    ProgressEmitter,
    RunFinished,
    RunHandle,
    RunInterrupted,
    RunStarted,
    WorkerStalled,
    current_emitter,
    event_from_dict,
    event_to_dict,
    follow_events,
    format_event,
    read_events,
    use_emitter,
)
from repro.observability.span import (
    SpanNode,
    SpanRecord,
    span_tree,
    tree_shape,
)
from repro.observability.top import DashboardState, render, run_top
from repro.observability.report import (
    read_campaign_report_data,
    render_campaign_report,
    render_report,
    stall_waterfall,
    write_campaign_report,
    write_report,
)
from repro.observability.stats import EngineStats
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "BestSoFar",
    "CacheStats",
    "CampaignGateResult",
    "CampaignRecorder",
    "ChunkCompleted",
    "ConvergenceUpdate",
    "Counter",
    "DashboardState",
    "EngineStats",
    "FUNNEL_BUCKETS",
    "FlightRecorder",
    "FunnelSnapshot",
    "Gauge",
    "Heartbeat",
    "HeartbeatMonitor",
    "Histogram",
    "JsonlSink",
    "LedgerDiff",
    "LedgerSchemaError",
    "MetricDelta",
    "MetricsRegistry",
    "MetricsSubscriber",
    "NULL_CAMPAIGN",
    "NULL_EMITTER",
    "NULL_LEDGER",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullCampaign",
    "NullLedger",
    "NullMetricsRegistry",
    "NullProgressEmitter",
    "NullTracer",
    "PROVENANCE_BUCKETS",
    "ParetoFrontSnapshot",
    "PhaseFunnel",
    "ProgressEmitter",
    "RunFinished",
    "RunHandle",
    "RunInterrupted",
    "RunLedger",
    "RunRecord",
    "RunStarted",
    "SCHEMA_VERSION",
    "Span",
    "SpanNode",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "WorkerStalled",
    "campaign_records",
    "chrome_trace",
    "compare_campaigns",
    "extract_trace",
    "current_campaign",
    "current_emitter",
    "current_ledger",
    "current_metrics",
    "current_tracer",
    "diff_records",
    "event_from_dict",
    "event_to_dict",
    "find_spans",
    "follow_events",
    "format_event",
    "gate_campaigns",
    "git_sha",
    "inject_trace",
    "load_chrome_trace",
    "load_snapshot",
    "per_dtl_stalls",
    "phase_records",
    "read_campaign_report_data",
    "read_events",
    "reconcile_ss_overall",
    "record_from_report",
    "render",
    "render_campaign_report",
    "render_report",
    "run_top",
    "select_campaign",
    "server_span_records",
    "span_from_dict",
    "span_to_dict",
    "span_tree",
    "spans_from_wire",
    "spans_to_wire",
    "stall_waterfall",
    "tree_shape",
    "use_campaign",
    "use_emitter",
    "use_ledger",
    "use_metrics",
    "use_tracer",
    "write_campaign_report",
    "write_chrome_trace",
    "write_report",
]
