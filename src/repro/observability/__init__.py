"""repro.observability — hierarchical tracing, metrics, and stall
attribution for the whole evaluation path.

Zero-dependency substrate with three pieces (see ``docs/OBSERVABILITY.md``):

* :class:`Tracer` — hierarchical spans over the evaluation tree
  (network -> layer -> mapping candidate -> step1/2/3 -> per-DTL) carrying
  wall time *and* model-domain attributes (SS_u, MUW parameters, the
  Eq. (1)/(2) combine decision, scenario classification). Spans survive
  process-pool fan-out: workers ship serializable
  :class:`~repro.observability.span.SpanRecord` lists home and the engine
  merges them order-preserving, so serial and parallel runs produce the
  same tree modulo timestamps.
* :class:`MetricsRegistry` — counters / gauges / histograms (cache hit
  ratio, evaluations per second, mapper samples, per-phase latency
  percentiles) with JSON and Prometheus-text exporters.
* exporters — Chrome trace-event JSON (:func:`chrome_trace` /
  :func:`write_chrome_trace`) and span-level reconciliation
  (:func:`reconcile_ss_overall`).

Everything is off by default: the ambient tracer and registry are no-op
singletons, and the disabled path allocates nothing (the tracing-overhead
benchmark holds it under 5% of kernel time). Enable per scope::

    from repro.observability import Tracer, use_tracer, write_chrome_trace

    tracer = Tracer()
    with use_tracer(tracer):
        report = engine.evaluate(mapping)
    write_chrome_trace(tracer.records, "trace.json")

or from the CLI with ``--trace --trace-out trace.json`` / ``--metrics``.
"""

from repro.observability.export import (
    chrome_trace,
    find_spans,
    load_chrome_trace,
    per_dtl_stalls,
    reconcile_ss_overall,
    write_chrome_trace,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    current_metrics,
    use_metrics,
)
from repro.observability.span import (
    SpanNode,
    SpanRecord,
    span_tree,
    tree_shape,
)
from repro.observability.stats import EngineStats
from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "Counter",
    "EngineStats",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "Span",
    "SpanNode",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "current_metrics",
    "current_tracer",
    "find_spans",
    "load_chrome_trace",
    "per_dtl_stalls",
    "reconcile_ss_overall",
    "span_tree",
    "tree_shape",
    "use_metrics",
    "use_tracer",
    "write_chrome_trace",
]
