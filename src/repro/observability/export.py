"""Trace exporters and span-level reconciliation helpers.

:func:`chrome_trace` turns span records into the Chrome trace-event JSON
format (``chrome://tracing`` / Perfetto's legacy loader): one complete
(``"ph": "X"``) event per span, model-domain attributes in ``args``,
worker-chunk subtrees on their own ``tid`` lane.

:func:`reconcile_ss_overall` re-derives ``SS_overall`` purely from span
attributes — the per-group stalls emitted by Step 3 — so a trace file can
be cross-checked against the printed :class:`~repro.core.report.
LatencyReport` without re-running the model (the CLI's ``--trace`` path
and the span-taxonomy tests both do).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.observability.span import SpanNode, SpanRecord, span_tree


def chrome_trace(records: Sequence[SpanRecord], process_name: str = "repro") -> Dict:
    """Span records as a Chrome trace-event JSON document (as a dict)."""
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for record in records:
        events.append(
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": record.start_us,
                "dur": max(record.duration_us, 0.0),
                "pid": 0,
                "tid": record.track,
                "args": record.attributes,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    records: Sequence[SpanRecord], path: str, process_name: str = "repro"
) -> None:
    """Write :func:`chrome_trace` output to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(records, process_name), handle, indent=1)


def load_chrome_trace(path: str) -> List[SpanRecord]:
    """Read a file written by :func:`write_chrome_trace` back into records.

    Parent links cannot be recovered from the event list (Chrome's format
    encodes nesting by time), so the records come back flat — enough for
    attribute-level checks like :func:`reconcile_ss_overall`.
    """
    with open(path) as handle:
        doc = json.load(handle)
    records: List[SpanRecord] = []
    for index, event in enumerate(doc["traceEvents"]):
        if event.get("ph") != "X":
            continue
        records.append(
            SpanRecord(
                span_id=index + 1,
                parent_id=None,
                name=event["name"],
                start_us=float(event.get("ts", 0.0)),
                duration_us=float(event.get("dur", 0.0)),
                attributes=dict(event.get("args", {})),
                track=int(event.get("tid", 0)),
            )
        )
    return records


# --------------------------------------------------------------------- #
# Reconciliation
# --------------------------------------------------------------------- #

def reconcile_ss_overall(records: Sequence[SpanRecord]) -> Optional[float]:
    """Recompute ``SS_overall`` from Step-3 group spans.

    Step 3 sums the clamped per-group stalls (``ss_group`` attributes on
    ``step3.group`` spans) and clamps the total at zero; this helper
    replays exactly that from the trace. Returns ``None`` when the trace
    holds no ``model.step3`` span. With several ``model.evaluate`` spans
    in the trace, the *last* one's integration is used (the CLI traces
    its final report evaluation last).
    """
    step3 = [r for r in records if r.name == "model.step3"]
    if not step3:
        return None
    groups = _groups_of(records, step3[-1])
    return max(0.0, sum(max(0.0, ss) for ss in groups))


def _groups_of(records: Sequence[SpanRecord], step3: SpanRecord) -> List[float]:
    """The ``ss_group_raw`` values belonging to one ``model.step3`` span.

    Uses parent links when present (native tracer records); falls back to
    record-order adjacency for flat records re-read from a Chrome trace
    file. Records are written in append order — children directly follow
    their span, merged worker subtrees stay contiguous — so adjacency is
    reliable where timestamps are not (merged subtrees are time-shifted).
    """
    if any(r.parent_id is not None for r in records):
        for root in span_tree(records):
            for node in root.find("model.step3"):
                if node.record is step3:
                    return [
                        float(child.record.attributes["ss_group_raw"])
                        for child in node.children
                        if child.record.name == "step3.group"
                    ]
        return []
    ordered = list(records)
    at = ordered.index(step3)
    groups: List[float] = []
    for record in ordered[at + 1:]:
        if record.name == "step3.group":
            groups.append(float(record.attributes["ss_group_raw"]))
        elif record.name in ("model.step3", "model.evaluate"):
            break
        elif not record.name.startswith("step3."):
            break
    return groups


def per_dtl_stalls(records: Sequence[SpanRecord]) -> List[float]:
    """Every per-DTL ``ss_u`` attribute in the trace (pre-combination)."""
    return [
        float(r.attributes["ss_u"])
        for r in records
        if r.name == "step1.dtl" and "ss_u" in r.attributes
    ]


def find_spans(records: Sequence[SpanRecord], name: str) -> List[SpanRecord]:
    """Flat name filter over a record list."""
    return [r for r in records if r.name == name]


__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "reconcile_ss_overall",
    "per_dtl_stalls",
    "find_spans",
]
