"""Distributed observability: trace propagation + the flight recorder.

The in-process tracer (:mod:`repro.observability.tracer`) dies at the
socket: a :class:`~repro.serve.client.RemoteEngine` caller's trace used
to end at "wrote request, read response", with the daemon's queue-wait /
shard / kernel time invisible. This module is the bridge:

* **Context propagation** — :func:`inject_trace` captures the ambient
  tracer's identity (``trace_id``, the currently open ``span_id``, a
  sampling bit) as a small dict the wire protocol carries in the
  optional ``trace`` field of an evaluate request; :func:`extract_trace`
  is the tolerant inverse on the server (absent / malformed / unknown
  payloads yield ``None``, never an error — old clients keep working).
  When no tracer is active :func:`inject_trace` returns ``None`` without
  allocating anything, so the hot path of an untraced client is
  unchanged.
* **Span serde** — :func:`span_to_dict` / :func:`span_from_dict` move
  :class:`~repro.observability.span.SpanRecord` lists across the wire as
  plain JSON (same tolerance rules). The server ships its finished
  request subtree back in the response; the client grafts it under its
  transport span with :meth:`~repro.observability.Tracer.merge`, so the
  Chrome export shows client -> daemon -> shard in one timeline.
* **Server span assembly** — :func:`server_span_records` builds the
  per-request server subtree (``serve.request`` with queue-wait /
  coalesce-wait / shard / store-write children, the kernel's own
  stall-attribution spans re-rooted under the shard span) from the
  phase timestamps the server collects anyway. Spans are assembled
  after the fact from timings rather than opened live because the
  request crosses the event loop, a queue, and an executor thread —
  there is no single stack to nest them on.
* **Flight recorder** — :class:`FlightRecorder`, an always-on bounded
  ring of compact per-request records that dumps to JSONL on SIGQUIT,
  on ``/statusz?dump=1``, and automatically on drain/error, so
  post-mortems need no pre-enabled tracing.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.observability.span import SpanRecord
from repro.observability.tracer import current_tracer

__all__ = [
    "FlightRecorder",
    "TraceContext",
    "extract_trace",
    "inject_trace",
    "server_span_records",
    "span_from_dict",
    "span_to_dict",
    "spans_from_wire",
    "spans_to_wire",
]


# --------------------------------------------------------------------- #
# Trace-context propagation
# --------------------------------------------------------------------- #

@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The portable identity of one client-side trace position.

    ``trace_id`` names the client's whole trace; ``span_id`` is the
    client span that was open when the request left (the transport
    span), i.e. the node the server's subtree conceptually hangs off;
    ``sampled`` says whether the server should bother building and
    shipping spans at all.
    """

    trace_id: str
    span_id: int
    sampled: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }


def inject_trace() -> Optional[Dict[str, Any]]:
    """Capture the ambient tracer's context for the wire, or ``None``.

    The disabled path is the common one and must stay allocation-free:
    with the ambient :class:`~repro.observability.tracer.NullTracer`
    this is one contextvar read and one attribute check.
    """
    tracer = current_tracer()
    if not tracer.enabled:
        return None
    return {
        "trace_id": tracer.trace_id,
        "span_id": tracer.current_span_id() or 0,
        "sampled": True,
    }


def extract_trace(data: Any) -> Optional[TraceContext]:
    """Tolerant inverse of :func:`inject_trace`.

    Absent (``None``), non-dict, or field-incomplete payloads — e.g.
    from an old client that never sends ``trace``, or a newer one with
    fields we don't know — all yield ``None``. Unknown keys are ignored.
    """
    if not isinstance(data, dict):
        return None
    trace_id = data.get("trace_id")
    span_id = data.get("span_id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    if not isinstance(span_id, int) or isinstance(span_id, bool):
        return None
    return TraceContext(
        trace_id=trace_id,
        span_id=span_id,
        sampled=bool(data.get("sampled", True)),
    )


# --------------------------------------------------------------------- #
# Span wire serde
# --------------------------------------------------------------------- #

def span_to_dict(record: SpanRecord) -> Dict[str, Any]:
    """One span record as a plain JSON-ready dict (field names spelled out)."""
    return {
        "span_id": record.span_id,
        "parent_id": record.parent_id,
        "name": record.name,
        "start_us": record.start_us,
        "duration_us": record.duration_us,
        "attributes": record.attributes,
        "track": record.track,
    }


def span_from_dict(data: Dict[str, Any]) -> SpanRecord:
    """Inverse of :func:`span_to_dict`; unknown keys are ignored."""
    parent = data.get("parent_id")
    return SpanRecord(
        span_id=int(data["span_id"]),
        parent_id=int(parent) if parent is not None else None,
        name=str(data["name"]),
        start_us=float(data.get("start_us", 0.0)),
        duration_us=float(data.get("duration_us", 0.0)),
        attributes=dict(data.get("attributes") or {}),
        track=int(data.get("track", 0)),
    )


def spans_to_wire(records: Sequence[SpanRecord]) -> List[Dict[str, Any]]:
    """A record list as its wire form (empty list stays empty)."""
    return [span_to_dict(r) for r in records]


def spans_from_wire(data: Optional[Iterable[Any]]) -> List[SpanRecord]:
    """Tolerant inverse of :func:`spans_to_wire`.

    ``None`` (old server: no ``spans`` field) and malformed entries are
    dropped silently — a client must never fail an evaluation over a
    bad observability payload.
    """
    if not data:
        return []
    records: List[SpanRecord] = []
    for item in data:
        if not isinstance(item, dict):
            continue
        try:
            records.append(span_from_dict(item))
        except (KeyError, TypeError, ValueError):
            continue
    return records


# --------------------------------------------------------------------- #
# Server-side request subtree
# --------------------------------------------------------------------- #

def server_span_records(
    *,
    context: TraceContext,
    start_us: float,
    end_us: float,
    shard: Optional[int] = None,
    queue_wait_us: float = 0.0,
    coalesce_wait_us: float = 0.0,
    kernel_us: float = 0.0,
    store_write_us: float = 0.0,
    kernel_records: Sequence[SpanRecord] = (),
    source: str = "evaluated",
    **attrs: Any,
) -> List[SpanRecord]:
    """Assemble the server-side subtree for one finished request.

    Returns a well-formed flat record list rooted at ``serve.request``
    (negative span ids, so remapping on the client side can never
    collide with the kernel records' positive ids):

    - ``serve.request`` — the whole server wall time, stamped with the
      propagated ``trace_id`` / client ``span_id`` and the provenance
      (``source``: evaluated / store / warm / coalesced).
    - ``serve.queue_wait`` — admission to shard pickup (absent when the
      request never queued: store/warm hits).
    - ``serve.coalesce_wait`` — time spent attached to another
      request's in-flight evaluation.
    - ``serve.shard`` — executor occupancy on shard *k*; the kernel's
      own ``engine.evaluate`` -> ``model.step*`` stall-attribution
      subtree (PR 2) is re-rooted beneath it.
    - ``serve.store_write`` — result-store write-through.
    """
    root = SpanRecord(
        span_id=-1,
        parent_id=None,
        name="serve.request",
        start_us=start_us,
        duration_us=max(0.0, end_us - start_us),
        attributes={
            "trace_id": context.trace_id,
            "client_span_id": context.span_id,
            "source": source,
            **{k: v for k, v in attrs.items() if v is not None},
        },
    )
    records = [root]
    cursor = start_us
    next_id = -2

    def child(name: str, duration_us: float, **attributes: Any) -> SpanRecord:
        nonlocal cursor, next_id
        record = SpanRecord(
            span_id=next_id,
            parent_id=-1,
            name=name,
            start_us=cursor,
            duration_us=max(0.0, duration_us),
            attributes={k: v for k, v in attributes.items() if v is not None},
        )
        next_id -= 1
        cursor += record.duration_us
        records.append(record)
        return record

    if queue_wait_us > 0.0:
        child("serve.queue_wait", queue_wait_us)
    if coalesce_wait_us > 0.0:
        child("serve.coalesce_wait", coalesce_wait_us)
    if shard is not None:
        shard_span = child("serve.shard", kernel_us, shard=shard)
        if kernel_records:
            # Re-root the kernel's stall-attribution records under the
            # shard span, keeping their own (positive) ids and links —
            # the id spaces are disjoint by construction.
            shard_id = shard_span.span_id
            base = min(r.start_us for r in kernel_records)
            offset = shard_span.start_us - base
            for r in kernel_records:
                records.append(
                    SpanRecord(
                        span_id=r.span_id,
                        parent_id=r.parent_id if r.parent_id is not None else shard_id,
                        name=r.name,
                        start_us=r.start_us + offset,
                        duration_us=r.duration_us,
                        attributes=dict(r.attributes),
                        track=r.track,
                    )
                )
    if store_write_us > 0.0:
        child("serve.store_write", store_write_us)
    return records


# --------------------------------------------------------------------- #
# Flight recorder
# --------------------------------------------------------------------- #

class FlightRecorder:
    """Always-on bounded ring buffer of compact per-request records.

    The black box: every request — hit, miss, coalesced, failed —
    appends one small dict (ids, timings, outcome). The ring holds the
    last ``capacity`` of them at O(1) cost per request and dumps to
    JSONL on demand (SIGQUIT, ``/statusz?dump=1``, drain, first server
    error), so a post-mortem needs no pre-enabled tracing.

    Thread-safe: the server's event loop, the admin HTTP thread, and
    signal handlers all touch it.
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self.dumps = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def record(self, **fields: Any) -> None:
        """Append one record, stamped with a sequence number and unix time."""
        with self._lock:
            self._seq += 1
            entry = {"seq": self._seq, "ts": time.time()}
            entry.update(fields)
            self._ring.append(entry)

    def snapshot(self) -> List[Dict[str, Any]]:
        """The ring's contents, oldest first (records are copied)."""
        with self._lock:
            return [dict(entry) for entry in self._ring]

    def last(self) -> Optional[Dict[str, Any]]:
        """The most recent record, or ``None`` when empty."""
        with self._lock:
            return dict(self._ring[-1]) if self._ring else None

    def to_jsonl(self) -> str:
        """The ring as JSONL text (one record per line, oldest first)."""
        return "".join(
            json.dumps(entry, sort_keys=True, default=str) + "\n"
            for entry in self.snapshot()
        )

    def dump(self, path) -> int:
        """Write the ring to ``path`` as JSONL; returns the record count.

        Each dump is a complete, self-consistent file (truncate, not
        append) — the newest dump is the one that matters in a
        post-mortem, and repeated SIGQUITs must not interleave.
        """
        entries = self.snapshot()
        target = Path(path)
        if target.parent and not target.parent.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(json.dumps(entry, sort_keys=True, default=str) + "\n")
        with self._lock:
            self.dumps += 1
        return len(entries)
