"""``repro-latency top``: a terminal dashboard over a progress stream.

Renders the live state of a long-running search — per-run progress bars
with throughput and ETA, per-worker liveness (with stall flags), best
incumbent objective and engine-cache stats — from an ``events.jsonl``
written by a :class:`~repro.observability.progress.JsonlSink`:

* **replay** (default): read a finished (or partial) recording, render
  the final state once and exit — deterministic, which is how the
  committed snapshot test pins the output byte for byte;
* **follow** (``--follow``): tail a file another process is still
  writing, redrawing in place until every run has closed (or Ctrl-C).

All time arithmetic uses *event* timestamps, never the wall clock — the
"now" of a rendering is the newest event's ``ts`` — so replaying the
same file always renders the same text.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, Iterable, List, Optional

from repro.observability.progress import (
    BestSoFar,
    CacheStats,
    ChunkCompleted,
    Heartbeat,
    ProgressEvent,
    RunFinished,
    RunInterrupted,
    RunStarted,
    STALL_THRESHOLD_S,
    WorkerStalled,
    follow_events,
    format_duration,
    read_events,
)

#: ANSI sequence that repaints the screen in follow mode.
_CLEAR = "\x1b[2J\x1b[H"


@dataclasses.dataclass
class RunRow:
    """Everything the dashboard shows about one run."""

    run_id: str
    flow: str = ""
    unit: str = "units"
    total_units: Optional[int] = None
    done_units: int = 0
    errors: int = 0
    rate: float = 0.0
    eta_s: Optional[float] = None
    best: Optional[float] = None
    status: str = "active"          # "active" | "done" | "interrupted"
    started_ts: float = 0.0
    wall_s: float = 0.0
    note: str = ""


class DashboardState:
    """Fold a progress-event stream into the dashboard's model."""

    def __init__(self, stall_threshold_s: float = STALL_THRESHOLD_S) -> None:
        self.stall_threshold_s = stall_threshold_s
        self.runs: Dict[str, RunRow] = {}        # insertion-ordered
        self.worker_seen: Dict[str, float] = {}
        self.cache: Optional[CacheStats] = None
        self.stalls: List[WorkerStalled] = []
        self.events_seen = 0
        self.last_ts = 0.0

    def apply(self, event: ProgressEvent) -> None:
        """Consume one event (usable directly as an emitter subscriber)."""
        self.events_seen += 1
        self.last_ts = max(self.last_ts, event.ts)
        run = self.runs.get(event.run_id)
        if isinstance(event, RunStarted):
            self.runs[event.run_id] = RunRow(
                run_id=event.run_id,
                flow=event.flow,
                unit=event.unit,
                total_units=event.total_units,
                started_ts=event.ts,
            )
            return
        if isinstance(event, (Heartbeat, ChunkCompleted)) and event.worker:
            self.worker_seen[event.worker] = event.ts
        if run is None:
            return  # event for a run whose start predates the recording
        if isinstance(event, ChunkCompleted):
            run.done_units = event.done_units
            run.errors += event.errors
            run.rate = event.evals_per_s
            run.eta_s = event.eta_s
            if event.note:
                run.note = event.note
        elif isinstance(event, BestSoFar):
            run.best = event.objective
        elif isinstance(event, CacheStats):
            self.cache = event
        elif isinstance(event, WorkerStalled):
            self.stalls.append(event)
        elif isinstance(event, RunInterrupted):
            run.status = "interrupted"
            run.done_units = max(run.done_units, event.done_units)
            run.wall_s = event.ts - run.started_ts
            run.eta_s = None
        elif isinstance(event, RunFinished):
            run.status = "done"
            run.done_units = max(run.done_units, event.done_units)
            run.wall_s = event.wall_s
            run.eta_s = None
            if event.best_objective is not None:
                run.best = event.best_objective

    def apply_all(self, events: Iterable[ProgressEvent]) -> None:
        for event in events:
            self.apply(event)

    @property
    def all_closed(self) -> bool:
        """True when every seen run has finished or been interrupted."""
        return bool(self.runs) and all(
            row.status != "active" for row in self.runs.values()
        )


def _bar(done: int, total: Optional[int], width: int = 20) -> str:
    """A fixed-width progress bar; indeterminate without a total."""
    if total is None or total <= 0:
        return "[" + "." * width + "]"
    filled = min(width, int(width * min(done, total) / total))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render(state: DashboardState, *, width: int = 78, footer: str = "") -> str:
    """The dashboard as deterministic plain text.

    Liveness ("Ns ago") is relative to ``state.last_ts``, so rendering a
    recording is a pure function of its events.
    """
    now = state.last_ts
    rule = "=" * width
    lines = [rule, "repro-latency top".center(width).rstrip(), rule]

    lines.append("runs:")
    if not state.runs:
        lines.append("  (none)")
    for row in state.runs.values():
        total = "?" if row.total_units is None else str(row.total_units)
        progress = f"{row.done_units}/{total} {row.unit}"
        err = f"  {row.errors} err" if row.errors else ""
        if row.status == "active":
            rate = f"{row.rate:.1f}/s" if row.rate else "-"
            eta = (
                f"eta {format_duration(row.eta_s)}"
                if row.eta_s is not None
                else "eta --:--"
            )
            tail = f"{rate}  {eta}"
        else:
            tail = f"{row.status} in {row.wall_s:.1f}s"
        best = f"  best {row.best:g}" if row.best is not None else ""
        lines.append(
            f"  {row.run_id:<4} {row.flow:<20} "
            f"{_bar(row.done_units, row.total_units)} "
            f"{progress:<18} {tail}{best}{err}"
        )

    lines.append("workers:")
    if not state.worker_seen:
        lines.append("  (none)")
    for worker in sorted(state.worker_seen):
        ago = now - state.worker_seen[worker]
        flag = "STALLED" if ago > state.stall_threshold_s else "ok"
        lines.append(f"  {worker:<12} last seen {ago:6.1f}s ago  {flag}")

    if state.cache is not None:
        cache = state.cache
        lines.append(
            f"cache: {cache.hits} hit(s), {cache.misses} miss(es), "
            f"{cache.hit_rate:.1%} hit rate"
        )
    if state.stalls:
        lines.append(f"stall warnings: {len(state.stalls)}")
    lines.append(f"events: {state.events_seen}")
    if footer:
        lines.append(footer)
    return "\n".join(lines)


def run_top(
    events_path: str,
    *,
    follow: bool = False,
    plain: bool = True,
    poll_s: float = 0.5,
    max_polls: Optional[int] = None,
    write: Callable[[str], None] = print,
    sleep: Callable[[float], None] = time.sleep,
    footer: Optional[Callable[[], str]] = None,
) -> int:
    """Drive the dashboard; the body of ``repro-latency top``.

    Replay mode reads the whole recording and writes one final snapshot.
    Follow mode redraws after each poll that brought new events (with an
    ANSI repaint unless ``plain``) and returns once every run has closed;
    ``max_polls`` bounds the tail for tests and smoke runs. ``footer``
    (e.g. a live :meth:`RemoteEngine.remote_stats` summary, via ``top
    --engine URL``) is re-queried for each redraw and appended as the
    last line. Returns a shell exit code (2 when the recording is
    missing/empty and not followed).
    """
    state = DashboardState()
    if not follow:
        try:
            events = read_events(events_path)
        except FileNotFoundError:
            write(f"top: no events file at {events_path}")
            return 2
        if not events:
            write(f"top: {events_path} holds no events yet")
            return 2
        state.apply_all(events)
        write(render(state, footer=footer() if footer else ""))
        return 0

    polls = 0
    try:
        for batch in follow_events(events_path, poll_s, sleep=sleep):
            state.apply_all(batch)
            if batch:
                write(
                    ("" if plain else _CLEAR)
                    + render(state, footer=footer() if footer else "")
                )
            if state.all_closed:
                break
            polls += 1
            if max_polls is not None and polls >= max_polls:
                break
    except KeyboardInterrupt:
        pass  # detaching from a live run is not an error
    if state.events_seen == 0:
        write(f"top: {events_path} holds no events yet")
        return 2
    return 0


__all__ = ["DashboardState", "RunRow", "render", "run_top"]
