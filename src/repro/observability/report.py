"""Self-contained HTML run reports: stall attribution + ledger trajectory.

:func:`render_report` turns one run's span records plus the run ledger
into a single dependency-free HTML file (inline CSS bars and inline SVG
sparklines — nothing to fetch, nothing to install):

* **stall waterfall** — per-unit-memory ``SS_comb`` bars grouped by
  Step-3 overlap group, derived from the *last* ``model.evaluate`` span's
  subtree exactly like :func:`~repro.observability.export.
  reconcile_ss_overall`, so the waterfall total always reconciles with
  the printed ``SS_overall``;
* **CC breakdown** — the Fig. 7(b)-style preload / ideal / spatial /
  temporal / offload stack;
* **utilization table** — ``U``, ``U_spatial``, ``U_temp``;
* **bench trajectory** — sparklines of ``total_cycles`` / ``ss_overall``
  (and bench ``extra`` metrics) across ledger entries, the perf
  trajectory per commit;
* **simulator cross-check** — shown when the trace holds
  ``simulator.run`` spans (the simulator subsystem is instrumented too).

The numeric payload is embedded as ``<script type="application/json"
id="repro-report-data">`` so tests (and downstream tooling) can read the
exact numbers back out of the HTML without scraping markup.
"""

from __future__ import annotations

import dataclasses
import html
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.observability.export import find_spans, reconcile_ss_overall
from repro.observability.ledger import RunRecord
from repro.observability.span import SpanRecord, span_tree

#: The HTML id of the embedded JSON payload.
DATA_ELEMENT_ID = "repro-report-data"


@dataclasses.dataclass(frozen=True)
class WaterfallRow:
    """One unit memory's Step-2 stall, placed in its Step-3 group."""

    group: int
    operand: str
    memory: str
    level: int
    ss: float
    dominant: bool

    @property
    def label(self) -> str:
        return f"{self.operand}@{self.memory}/L{self.level}"


@dataclasses.dataclass(frozen=True)
class Waterfall:
    """The per-level stall waterfall of one evaluation.

    ``group_contributions`` are the clamped Step-3 per-group stalls; by
    Step 3's construction their sum equals ``ss_overall`` — the same
    identity :func:`~repro.observability.export.reconcile_ss_overall`
    replays, which is what makes the rendered waterfall checkable
    against the trace it came from.
    """

    rows: Tuple[WaterfallRow, ...]
    group_contributions: Tuple[Tuple[int, float], ...]
    ss_overall: float

    @property
    def total(self) -> float:
        return sum(ss for _, ss in self.group_contributions)


def stall_waterfall(records: Sequence[SpanRecord]) -> Optional[Waterfall]:
    """Build the waterfall from the last ``model.evaluate`` span's subtree.

    Uses parent links when present (live tracer records) and falls back
    to record-order adjacency for flat records re-read from a Chrome
    trace file — the same dual path as ``reconcile_ss_overall``, and the
    two agree by construction: both read the last ``model.step3`` span's
    groups.
    """
    step3_spans = find_spans(records, "model.step3")
    if not step3_spans:
        return None
    step3 = step3_spans[-1]
    groups: List[Tuple[int, float]] = []
    dominant_of: Dict[int, str] = {}
    group_of_memory: Dict[str, int] = {}
    for record in _children_of(records, step3, "step3.group"):
        gid = int(record.attributes["group"])
        groups.append((gid, float(record.attributes["ss_group"])))
        dominant_of[gid] = str(record.attributes.get("dominant_memory", ""))
        for memory in str(record.attributes.get("member_memories", "")).split(","):
            if memory:
                group_of_memory[memory] = gid
        group_of_memory.setdefault(dominant_of[gid], gid)
    served = _served_spans_of(records, step3)
    rows: List[WaterfallRow] = []
    for record in served:
        memory = str(record.attributes["memory"])
        gid = group_of_memory.get(memory, -1)
        rows.append(
            WaterfallRow(
                group=gid,
                operand=str(record.attributes["operand"]),
                memory=memory,
                level=int(record.attributes["level"]),
                ss=float(record.attributes["ss"]),
                dominant=(dominant_of.get(gid) == memory),
            )
        )
    ss_overall = float(step3.attributes.get("ss_overall", sum(s for _, s in groups)))
    return Waterfall(tuple(rows), tuple(groups), ss_overall)


def _children_of(
    records: Sequence[SpanRecord], parent: SpanRecord, name: str
) -> List[SpanRecord]:
    """``name``-children of ``parent``: parent links or flat adjacency."""
    if any(r.parent_id is not None for r in records):
        return [
            r
            for r in records
            if r.name == name and r.parent_id == parent.span_id
        ]
    ordered = list(records)
    at = ordered.index(parent)
    out: List[SpanRecord] = []
    for record in ordered[at + 1 :]:
        if record.name == name:
            out.append(record)
        elif not record.name.startswith(name.split(".")[0] + "."):
            break
    return out


def _served_spans_of(
    records: Sequence[SpanRecord], step3: SpanRecord
) -> List[SpanRecord]:
    """The ``step2.served`` spans of the same evaluation as ``step3``.

    With parent links, walk up to the enclosing ``model.evaluate`` and
    collect its subtree; flat records scan backwards from the step3 span
    to the previous ``model.evaluate`` boundary.
    """
    if any(r.parent_id is not None for r in records):
        by_id = {r.span_id: r for r in records}
        node = step3
        while node.parent_id is not None and node.name != "model.evaluate":
            node = by_id[node.parent_id]
        for root in span_tree(records):
            for candidate in root.find("model.evaluate"):
                if candidate.record is node:
                    return [
                        n.record for n in candidate.find("step2.served")
                    ]
        return [r for r in records if r.name == "step2.served"]
    ordered = list(records)
    at = ordered.index(step3)
    start = 0
    for i in range(at, -1, -1):
        if ordered[i].name == "model.evaluate":
            start = i
            break
    return [r for r in ordered[start:at] if r.name == "step2.served"]


# --------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------- #

_CSS = """
body { font: 14px/1.45 -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 60rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0; }
td, th { padding: .25rem .7rem; border-bottom: 1px solid #e0e0ea;
         text-align: right; }
td:first-child, th:first-child { text-align: left; }
.bar { height: .85rem; background: #5b8dd9; display: inline-block;
       border-radius: 2px; vertical-align: middle; }
.bar.dominant { background: #d97b5b; }
.bar.zero { background: #c9cfdd; }
.seg { height: 1.1rem; display: inline-block; }
.muted { color: #777f92; font-size: .85rem; }
.mono { font-family: ui-monospace, monospace; font-size: .85rem; }
svg.spark { vertical-align: middle; }
"""

_CC_SEGMENTS = (
    ("preload", "#8fa8c9"),
    ("ideal", "#5b8dd9"),
    ("spatial_stall", "#e0b25b"),
    ("temporal_stall", "#d97b5b"),
    ("offload", "#9b8fc9"),
)


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _sparkline(values: Sequence[float], width: int = 220, height: int = 36) -> str:
    """An inline SVG polyline over ``values`` (min-max normalized)."""
    if not values:
        return "<span class='muted'>no entries</span>"
    if len(values) == 1:
        values = list(values) * 2
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = width / (len(values) - 1)
    points = " ".join(
        f"{i * step:.1f},{height - 4 - (v - lo) / span * (height - 8):.1f}"
        for i, v in enumerate(values)
    )
    last = values[-1]
    return (
        f"<svg class='spark' width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}'>"
        f"<polyline fill='none' stroke='#5b8dd9' stroke-width='1.5' "
        f"points='{points}'/></svg> "
        f"<span class='mono'>{last:g}</span>"
    )


def _waterfall_html(waterfall: Waterfall) -> str:
    peak = max((abs(r.ss) for r in waterfall.rows), default=0.0) or 1.0
    rows: List[str] = []
    for row in sorted(waterfall.rows, key=lambda r: (r.group, -r.ss)):
        width = max(2, int(abs(max(row.ss, 0.0)) / peak * 260))
        cls = "bar dominant" if row.dominant else ("bar" if row.ss > 0 else "bar zero")
        rows.append(
            f"<tr><td>{_esc(row.label)}</td><td>g{row.group}</td>"
            f"<td>{row.ss:,.1f}</td>"
            f"<td style='text-align:left'><span class='{cls}' "
            f"style='width:{width}px'></span></td></tr>"
        )
    groups = ", ".join(
        f"g{gid}: {ss:,.1f}" for gid, ss in waterfall.group_contributions
    )
    return (
        "<table><tr><th>unit memory</th><th>group</th><th>SS_comb (cc)</th>"
        "<th style='text-align:left'>stall</th></tr>"
        + "".join(rows)
        + "</table>"
        + f"<p class='muted'>group contributions (clamped): {groups or '—'} "
        f"&nbsp;→&nbsp; SS_overall = {waterfall.ss_overall:,.1f} cc</p>"
    )


def _cc_breakdown_html(summary: Dict[str, float]) -> str:
    total = sum(max(0.0, summary.get(name, 0.0)) for name, _ in _CC_SEGMENTS) or 1.0
    segments, legend = [], []
    for name, color in _CC_SEGMENTS:
        value = max(0.0, summary.get(name, 0.0))
        width = value / total * 560
        if width >= 0.5:
            segments.append(
                f"<span class='seg' title='{_esc(name)}: {value:,.1f}' "
                f"style='width:{width:.1f}px;background:{color}'></span>"
            )
        legend.append(
            f"<td>{_esc(name)}</td><td>{value:,.1f}</td>"
            f"<td>{value / total:.1%}</td>"
        )
    rows = "".join(f"<tr>{cells}</tr>" for cells in legend)
    return (
        f"<div>{''.join(segments)}</div>"
        f"<table><tr><th>component</th><th>cycles</th><th>share</th></tr>"
        f"{rows}</table>"
    )


def _evaluation_summary(records: Sequence[SpanRecord]) -> Dict[str, float]:
    """Model-domain numbers of the last ``model.evaluate`` span."""
    evaluates = find_spans(records, "model.evaluate")
    if not evaluates:
        return {}
    attrs = dict(evaluates[-1].attributes)
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        out[key] = value
    if "cc_spatial" in out and "cc_ideal" in out:
        out["spatial_stall"] = float(out["cc_spatial"]) - float(out["cc_ideal"])
    if "ss_overall" in out:
        out["temporal_stall"] = float(out["ss_overall"])
    if "cc_ideal" in out:
        out["ideal"] = float(out["cc_ideal"])
    return out


def _simulator_html(records: Sequence[SpanRecord]) -> str:
    runs = find_spans(records, "simulator.run")
    if not runs:
        return ""
    rows = []
    for run in runs:
        a = run.attributes
        rows.append(
            "<tr>"
            + "".join(
                f"<td>{_esc(a.get(k, '—'))}</td>"
                for k in (
                    "total_cycles",
                    "compute_cycles",
                    "preload_cycles",
                    "stall_cycles",
                    "drain_tail_cycles",
                    "jobs_completed",
                    "events",
                )
            )
            + "</tr>"
        )
    return (
        "<h2>Simulator cross-check</h2>"
        "<table><tr><th>total</th><th>compute</th><th>preload</th>"
        "<th>stall</th><th>drain tail</th><th>jobs</th><th>events</th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _trajectory_html(entries: Sequence[RunRecord]) -> str:
    if not entries:
        return "<p class='muted'>ledger empty — run with --ledger to accumulate history</p>"
    blocks: List[str] = []
    evaluations = [e for e in entries if e.kind == "evaluation"]
    if evaluations:
        for metric in ("total_cycles", "ss_overall", "utilization"):
            values = [float(getattr(e, metric)) for e in evaluations]
            blocks.append(
                f"<tr><td>{metric}</td><td style='text-align:left'>"
                f"{_sparkline(values)}</td><td>{len(values)}</td></tr>"
            )
    benches = [e for e in entries if e.kind == "bench"]
    series: Dict[str, List[float]] = {}
    for bench in benches:
        for key, value in bench.extra.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                series.setdefault(f"{bench.label}:{key}", []).append(float(value))
    for name in sorted(series):
        blocks.append(
            f"<tr><td>{_esc(name)}</td><td style='text-align:left'>"
            f"{_sparkline(series[name])}</td><td>{len(series[name])}</td></tr>"
        )
    return (
        "<table><tr><th>metric</th><th style='text-align:left'>trajectory"
        "</th><th>entries</th></tr>" + "".join(blocks) + "</table>"
    )


def render_report(
    records: Sequence[SpanRecord],
    ledger_entries: Sequence[RunRecord] = (),
    *,
    title: str = "repro run report",
) -> str:
    """One self-contained HTML document for a traced run + its ledger.

    ``records`` is a span list (live tracer records or a re-read Chrome
    trace); ``ledger_entries`` the history to chart. The embedded JSON
    payload (id ``repro-report-data``) carries the waterfall rows, group
    contributions, the reconciled ``ss_overall`` and the CC summary.
    """
    waterfall = stall_waterfall(records)
    summary = _evaluation_summary(records)
    reconciled = reconcile_ss_overall(records)
    payload: Dict[str, Any] = {
        "title": title,
        "summary": summary,
        "reconciled_ss_overall": reconciled,
        "ledger_entries": len(ledger_entries),
        "waterfall": None,
    }
    if waterfall is not None:
        payload["waterfall"] = {
            "rows": [dataclasses.asdict(r) for r in waterfall.rows],
            "group_contributions": list(waterfall.group_contributions),
            "ss_overall": waterfall.ss_overall,
            "total": waterfall.total,
        }

    parts: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    if summary:
        parts.append(
            "<p class='muted'>layer "
            f"<span class='mono'>{_esc(summary.get('layer', '?'))}</span> on "
            f"<span class='mono'>{_esc(summary.get('accelerator', '?'))}</span>"
            f", scenario {_esc(summary.get('scenario', '?'))}</p>"
        )
        parts.append("<h2>CC breakdown</h2>")
        parts.append(_cc_breakdown_html(summary))
        parts.append("<h2>Utilization</h2><table>")
        parts.append("<tr><th>U</th><th>U_spatial</th><th>U_temporal</th></tr>")
        u = float(summary.get("utilization", 0.0))
        cc_ideal = float(summary.get("cc_ideal", 0.0))
        cc_spatial = float(summary.get("cc_spatial", 0.0)) or 1.0
        ss = float(summary.get("ss_overall", 0.0))
        u_spatial = cc_ideal / cc_spatial
        u_temporal = cc_spatial / (cc_spatial + ss)
        parts.append(
            f"<tr><td>{u:.1%}</td><td>{u_spatial:.1%}</td>"
            f"<td>{u_temporal:.1%}</td></tr></table>"
        )
    if waterfall is not None:
        parts.append("<h2>Stall waterfall (per unit memory)</h2>")
        parts.append(_waterfall_html(waterfall))
        if reconciled is not None:
            ok = abs(waterfall.total - reconciled) < 1e-6
            parts.append(
                f"<p class='muted'>reconcile_ss_overall(trace) = "
                f"{reconciled:,.1f} cc — "
                f"{'matches the waterfall total' if ok else 'MISMATCH'}</p>"
            )
    parts.append(_simulator_html(records))
    parts.append("<h2>Ledger trajectory</h2>")
    parts.append(_trajectory_html(ledger_entries))
    parts.append(
        f"<script type='application/json' id='{DATA_ELEMENT_ID}'>"
        + json.dumps(payload)
        + "</script>"
    )
    parts.append("</body></html>")
    return "".join(parts)


def write_report(
    path: str,
    records: Sequence[SpanRecord],
    ledger_entries: Sequence[RunRecord] = (),
    *,
    title: str = "repro run report",
) -> None:
    """Write :func:`render_report` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(render_report(records, ledger_entries, title=title))


def read_report_data(path: str) -> Dict[str, Any]:
    """Read the embedded JSON payload back out of a written report.

    The round-trip tests (and any downstream tooling) use this instead
    of scraping markup.
    """
    with open(path) as handle:
        text = handle.read()
    marker = f"id='{DATA_ELEMENT_ID}'>"
    start = text.index(marker) + len(marker)
    end = text.index("</script>", start)
    return json.loads(text[start:end])


# --------------------------------------------------------------------- #
# Campaign reports
# --------------------------------------------------------------------- #

#: The HTML id of the campaign report's embedded JSON payload.
CAMPAIGN_DATA_ELEMENT_ID = "repro-campaign-data"

_FUNNEL_SEGMENTS = (
    ("cache_hits", "#5b8dd9"),
    ("evaluated", "#8fa8c9"),
    ("dominated", "#e0b25b"),
    ("invalid", "#d97b5b"),
    ("deduped", "#c9cfdd"),
)


def _campaign_funnel_html(
    totals: Dict[str, float], phases: Sequence[RunRecord]
) -> str:
    """Stacked funnel bar over the totals plus a per-phase table."""
    enumerated = max(1.0, float(totals.get("enumerated", 0.0)))
    segments, legend = [], []
    for name, color in _FUNNEL_SEGMENTS:
        value = float(totals.get(name, 0.0))
        width = value / enumerated * 560
        if width >= 0.5:
            segments.append(
                f"<span class='seg' title='{_esc(name)}: {value:g}' "
                f"style='width:{width:.1f}px;background:{color}'></span>"
            )
        legend.append(
            f"<td>{_esc(name)}</td><td>{value:g}</td>"
            f"<td>{value / enumerated:.1%}</td>"
        )
    rows = "".join(f"<tr>{cells}</tr>" for cells in legend)
    parts = [
        f"<div>{''.join(segments)}</div>",
        "<table><tr><th>bucket</th><th>candidates</th><th>share</th></tr>",
        rows,
        "</table>",
    ]
    if phases:
        parts.append(
            "<table><tr><th>phase</th><th>enumerated</th><th>deduped</th>"
            "<th>cache</th><th>evaluated</th><th>invalid</th>"
            "<th>dominated</th><th>conserved</th></tr>"
        )
        for phase in phases:
            e = phase.extra
            parts.append(
                f"<tr><td>{_esc(phase.label)}</td>"
                f"<td>{e.get('enumerated', 0):g}</td>"
                f"<td>{e.get('deduped', 0):g}</td>"
                f"<td>{e.get('cache_hits', 0):g}</td>"
                f"<td>{e.get('evaluated', 0):g}</td>"
                f"<td>{e.get('invalid', 0):g}</td>"
                f"<td>{e.get('dominated', 0):g}</td>"
                f"<td>{'✓' if e.get('conserved') else '✗'}</td></tr>"
            )
        parts.append("</table>")
        tags: List[str] = []
        for phase in phases:
            for key in sorted(phase.extra):
                if key.startswith("tag."):
                    tags.append(
                        f"{_esc(phase.label)}/{_esc(key[4:])}: "
                        f"{phase.extra[key]:g}"
                    )
        if tags:
            parts.append(
                "<p class='muted'>discard provenance — "
                + ", ".join(tags) + "</p>"
            )
    return "".join(parts)


def _campaign_convergence_html(extra: Dict[str, Any]) -> str:
    """Incumbent-trajectory sparkline plus convergence statistics."""
    trajectory = extra.get("trajectory") or []
    values = [float(point[1]) for point in trajectory]
    stats = (
        ("observed", f"{extra.get('observed', 0):g}"),
        ("improvements", f"{extra.get('improvements', 0):g}"),
        ("improvement rate", f"{float(extra.get('improvement_rate', 0.0)):.2%}"),
        ("since improvement", f"{extra.get('since_improvement', 0):g}"),
        ("stagnated", "yes" if extra.get("stagnated") else "no"),
    )
    rows = "".join(f"<tr><td>{k}</td><td>{v}</td></tr>" for k, v in stats)
    return (
        "<p>incumbent trajectory: "
        f"{_sparkline(values, width=420, height=48)}</p>"
        f"<table><tr><th>statistic</th><th>value</th></tr>{rows}</table>"
    )


def _campaign_pareto_html(snapshots: Sequence[Dict[str, Any]]) -> str:
    """Scatter of the Pareto-front evolution: late snapshots darker."""
    points_of = [snap.get("points") or [] for snap in snapshots]
    everything = [p for points in points_of for p in points]
    if not everything:
        return "<p class='muted'>no Pareto snapshots recorded</p>"
    xs = [float(p[0]) for p in everything]
    ys = [float(p[1]) for p in everything]
    lo_x, hi_x = min(xs), max(xs)
    lo_y, hi_y = min(ys), max(ys)
    span_x = (hi_x - lo_x) or 1.0
    span_y = (hi_y - lo_y) or 1.0
    width, height, pad = 560, 240, 12
    parts = [
        f"<svg width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}'>"
    ]
    last = len(snapshots) - 1
    for index, points in enumerate(points_of):
        color = "#d97b5b" if index == last else "#5b8dd9"
        opacity = 0.25 + 0.75 * (index + 1) / len(snapshots)
        for p in points:
            cx = pad + (float(p[0]) - lo_x) / span_x * (width - 2 * pad)
            cy = height - pad - (float(p[1]) - lo_y) / span_y * (height - 2 * pad)
            parts.append(
                f"<circle cx='{cx:.1f}' cy='{cy:.1f}' r='3' "
                f"fill='{color}' fill-opacity='{opacity:.2f}'/>"
            )
    parts.append("</svg>")
    legend = "".join(
        f"<tr><td>{_esc(snap.get('label', '') or index)}</td>"
        f"<td>{_esc(snap.get('flow', ''))}</td>"
        f"<td>{snap.get('at', 0):g}</td>"
        f"<td>{len(points_of[index])}</td></tr>"
        for index, snap in enumerate(snapshots)
    )
    return (
        "".join(parts)
        + "<table><tr><th>snapshot</th><th>flow</th><th>at (scored)</th>"
        f"<th>front size</th></tr>{legend}</table>"
    )


def render_campaign_report(
    summary: RunRecord,
    phases: Sequence[RunRecord] = (),
    *,
    title: Optional[str] = None,
) -> str:
    """One self-contained HTML document for a search campaign.

    ``summary`` is the ``kind="campaign"`` ledger row, ``phases`` its
    ``kind="campaign_phase"`` rows. The output is a pure function of the
    records (no wall clock), so a fixed record set renders byte-stable —
    which is how the golden test pins it. The embedded JSON payload (id
    ``repro-campaign-data``) carries the funnel, trajectory and Pareto
    numbers for round-trip reads.
    """
    extra = summary.extra
    title = title or f"campaign report: {summary.label}"
    totals = {
        name: float(extra.get(name, 0.0))
        for name in (
            "enumerated", "deduped", "cache_hits",
            "evaluated", "invalid", "dominated",
        )
    }
    snapshots = extra.get("pareto") or []
    payload: Dict[str, Any] = {
        "title": title,
        "campaign": summary.label,
        "git_sha": summary.git_sha,
        "partial": bool(extra.get("partial")),
        "best_objective": extra.get("best_objective"),
        "funnel": totals,
        "scored": extra.get("scored", 0),
        "conserved": bool(extra.get("conserved")),
        "observed": extra.get("observed", 0),
        "improvements": extra.get("improvements", 0),
        "trajectory": extra.get("trajectory") or [],
        "pareto": snapshots,
        "phases": [
            {"flow": p.label, "extra": p.extra, "options_fp": p.options_fp}
            for p in phases
        ],
    }
    best = extra.get("best_objective")
    state = "partial (interrupted)" if extra.get("partial") else "complete"
    parts: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        "<p class='muted'>"
        f"campaign <span class='mono'>{_esc(summary.label)}</span>, "
        f"{state}, git <span class='mono'>{_esc(summary.git_sha)}</span>, "
        "best objective "
        f"<span class='mono'>{best:g}</span></p>"
        if isinstance(best, (int, float))
        else "<p class='muted'>"
        f"campaign <span class='mono'>{_esc(summary.label)}</span>, "
        f"{state}, git <span class='mono'>{_esc(summary.git_sha)}</span>, "
        "no incumbent found</p>",
        "<h2>Candidate funnel</h2>",
        _campaign_funnel_html(totals, phases),
        "<h2>Convergence</h2>",
        _campaign_convergence_html(extra),
        "<h2>Pareto evolution</h2>",
        _campaign_pareto_html(snapshots),
        f"<script type='application/json' id='{CAMPAIGN_DATA_ELEMENT_ID}'>"
        + json.dumps(payload, sort_keys=True)
        + "</script>",
        "</body></html>",
    ]
    return "".join(parts)


def write_campaign_report(
    path: str,
    summary: RunRecord,
    phases: Sequence[RunRecord] = (),
    *,
    title: Optional[str] = None,
) -> None:
    """Write :func:`render_campaign_report` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(render_campaign_report(summary, phases, title=title))


def read_campaign_report_data(path: str) -> Dict[str, Any]:
    """Read the embedded JSON payload back out of a campaign report."""
    with open(path) as handle:
        text = handle.read()
    marker = f"id='{CAMPAIGN_DATA_ELEMENT_ID}'>"
    start = text.index(marker) + len(marker)
    end = text.index("</script>", start)
    return json.loads(text[start:end])


__all__ = [
    "CAMPAIGN_DATA_ELEMENT_ID",
    "DATA_ELEMENT_ID",
    "Waterfall",
    "WaterfallRow",
    "read_campaign_report_data",
    "read_report_data",
    "render_campaign_report",
    "render_report",
    "stall_waterfall",
    "write_campaign_report",
    "write_report",
]
