"""Engine instrumentation counters (canonical home since the
observability redesign; also re-exported by ``repro.engine``)."""

from __future__ import annotations

import dataclasses
import time
from contextlib import contextmanager
from typing import Dict, Iterator


@dataclasses.dataclass
class EngineStats:
    """Counters and phase timings accumulated by an evaluation engine.

    One instance can be shared by several engines (``engine.derive(...)``
    does so), which is how a whole DSE sweep reports a single evaluation
    budget: evaluations actually run, hits and misses on the shared cache,
    and wall time per phase (``"evaluate"``, ``"energy"``, ``"batch"``).

    For counters with history, percentiles, and Prometheus export, feed a
    :class:`~repro.observability.metrics.MetricsRegistry` with
    ``registry.ingest("repro_engine", stats.snapshot())``.
    """

    evaluations: int = 0          # latency-model kernels actually run
    energy_evaluations: int = 0   # energy-model kernels actually run
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0              # evaluate_many calls
    errors: int = 0               # mappings that raised MappingError in a batch
    batched_evaluations: int = 0  # evaluations served by the SoA batch core
    dedup_skipped: int = 0        # mapper candidates dropped as model-equivalent
    partial_hits: int = 0         # partial-result (MUW memo) cache hits
    partial_misses: int = 0       # partial-result (MUW memo) cache misses
    phase_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------ #

    @property
    def requests(self) -> int:
        """Cache lookups performed (hits + misses)."""
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of cache lookups answered from the cache."""
        return self.cache_hits / self.requests if self.requests else 0.0

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate wall time of the enclosed block under ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    def reset(self) -> None:
        """Zero every counter and timing."""
        self.evaluations = 0
        self.energy_evaluations = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.errors = 0
        self.batched_evaluations = 0
        self.dedup_skipped = 0
        self.partial_hits = 0
        self.partial_misses = 0
        self.phase_seconds = {}

    def snapshot(self) -> Dict[str, float]:
        """Flat numeric view for JSON/CSV export."""
        data: Dict[str, float] = {
            "evaluations": float(self.evaluations),
            "energy_evaluations": float(self.energy_evaluations),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "hit_rate": self.hit_rate,
            "batches": float(self.batches),
            "errors": float(self.errors),
            "batched_evaluations": float(self.batched_evaluations),
            "dedup_skipped": float(self.dedup_skipped),
            "partial_hits": float(self.partial_hits),
            "partial_misses": float(self.partial_misses),
        }
        for name, seconds in sorted(self.phase_seconds.items()):
            data[f"seconds_{name}"] = seconds
        return data

    def summary(self) -> str:
        """One-line human-readable summary."""
        phases = ", ".join(
            f"{name} {seconds * 1e3:.1f} ms"
            for name, seconds in sorted(self.phase_seconds.items())
        )
        return (
            f"engine: {self.evaluations} evaluations, "
            f"{self.cache_hits}/{self.requests} cache hits "
            f"({self.hit_rate:.1%}){'; ' + phases if phases else ''}"
        )
