"""Hierarchical tracing: the :class:`Tracer`, its no-op twin, and the
ambient-tracer plumbing that threads spans through the whole evaluation
path without changing a single kernel signature.

Design rules:

* **Disabled is the default and costs (almost) nothing.** The ambient
  tracer is a process-wide :class:`NullTracer` singleton; instrumented
  code does ``current_tracer()`` (one contextvar read) and enters a
  shared no-op span. No record, no dict, no timestamps are allocated.
  Attribute-heavy instrumentation must guard on ``tracer.enabled``.
* **Spans are flat records, not nested objects.** The tree lives in
  parent links (:mod:`repro.observability.span`), so worker processes can
  ship their records home and :meth:`Tracer.merge` grafts them — in chunk
  order — under the caller's current span. Serial and process-pool runs
  therefore produce the *same tree modulo timestamps* by construction.
* **Activation is scoped.** ``with use_tracer(tracer): ...`` installs a
  tracer for the dynamic extent of a block (and the contextvar keeps
  concurrent asyncio/thread users isolated).
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.observability.span import (
    SpanNode,
    SpanRecord,
    clean_attribute,
    span_tree,
    tree_shape,
)


def _now_us() -> float:
    return time.perf_counter() * 1e6


class Span:
    """Handle for one live span: a context manager with ``set(key, value)``."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def set(self, key: str, value: Any) -> "Span":
        """Attach one model-domain attribute (coerced to a primitive)."""
        self._record.attributes[key] = clean_attribute(value)
        return self

    def set_many(self, **attributes: Any) -> "Span":
        """Attach several attributes at once."""
        for key, value in attributes.items():
            self._record.attributes[key] = clean_attribute(value)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self._tracer._close(self._record)


class NullSpan:
    """The shared do-nothing span handle of the disabled path."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> "NullSpan":
        return self

    def set_many(self, **attributes: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = NullSpan()


class Tracer:
    """Collects hierarchical spans for one evaluation flow.

    Use :func:`use_tracer` (or the CLI's ``--trace``) to make a tracer
    ambient; instrumented code picks it up via :func:`current_tracer`.
    Finished records accumulate in :attr:`records` in *start* order,
    which keeps sibling order deterministic.
    """

    enabled = True

    def __init__(self, trace_id: Optional[str] = None) -> None:
        #: Process-unique identity of this trace, carried across the wire
        #: by :mod:`repro.observability.distributed` so a remote server
        #: can link its spans back to this tracer's tree.
        self.trace_id = trace_id if trace_id else uuid.uuid4().hex[:16]
        self.records: List[SpanRecord] = []
        self._stack: List[int] = []
        self._next_id = 1

    # -- span lifecycle ------------------------------------------------- #

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a child span of the current span (enter to activate)."""
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            start_us=_now_us(),
        )
        if attributes:
            record.attributes = {
                k: clean_attribute(v) for k, v in attributes.items()
            }
        self._next_id += 1
        self.records.append(record)
        self._stack.append(record.span_id)
        return Span(self, record)

    def event(self, name: str, **attributes: Any) -> None:
        """A zero-duration child span (per-DTL / per-port attributions)."""
        with self.span(name, **attributes):
            pass

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span (``None`` outside any span)."""
        return self._stack[-1] if self._stack else None

    def _close(self, record: SpanRecord) -> None:
        record.duration_us = _now_us() - record.start_us
        # Close any abandoned descendants too (exception unwinding).
        while self._stack and self._stack[-1] != record.span_id:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    # -- cross-process merge -------------------------------------------- #

    def merge(self, records: Sequence[SpanRecord], track: int = 0) -> None:
        """Graft foreign (worker-produced) records under the current span.

        Ids are remapped into this tracer's sequence and the subtree is
        re-rooted at the currently open span; record order — and with it
        sibling order — is preserved, so merging chunk results in chunk
        order yields the same tree the serial backend builds in place.
        Timestamps are shifted so the grafted subtree starts where the
        merge happens (worker clocks are not comparable to ours);
        ``track`` labels the subtree's export lane.
        """
        if not records:
            return
        offset = _now_us() - min(r.start_us for r in records)
        remap: Dict[int, int] = {}
        parent = self._stack[-1] if self._stack else None
        for record in records:
            remap[record.span_id] = self._next_id
            self.records.append(
                SpanRecord(
                    span_id=self._next_id,
                    parent_id=(
                        remap[record.parent_id]
                        if record.parent_id in remap
                        else parent
                    ),
                    name=record.name,
                    start_us=record.start_us + offset,
                    duration_us=record.duration_us,
                    attributes=dict(record.attributes),
                    track=track if track else record.track,
                )
            )
            self._next_id += 1

    # -- views ----------------------------------------------------------- #

    def roots(self) -> List[SpanNode]:
        """Tree view of everything recorded so far."""
        return span_tree(self.records)

    def shape(self) -> Tuple:
        """Timestamp-free shape (see :func:`~repro.observability.span.tree_shape`)."""
        return tree_shape(self.records)

    def clear(self) -> None:
        """Drop all records (open spans keep their stack positions)."""
        self.records = []


class NullTracer:
    """The allocation-free disabled tracer (ambient default)."""

    enabled = False
    trace_id = ""

    def span(self, name: str, **attributes: Any) -> NullSpan:
        return _NULL_SPAN

    def current_span_id(self) -> None:
        return None

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def merge(self, records: Sequence[SpanRecord], track: int = 0) -> None:
        pass

    def roots(self) -> List[SpanNode]:
        return []

    def shape(self) -> Tuple:
        return ()

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()

_current_tracer: ContextVar = ContextVar("repro_tracer", default=NULL_TRACER)


def current_tracer():
    """The ambient tracer (a :class:`NullTracer` unless one is installed)."""
    return _current_tracer.get()


@contextmanager
def use_tracer(tracer) -> Iterator[None]:
    """Install ``tracer`` as the ambient tracer for the enclosed block."""
    token = _current_tracer.set(tracer)
    try:
        yield
    finally:
        _current_tracer.reset(token)
