"""The metrics registry: counters, gauges and histograms with JSON and
Prometheus-text exporters — zero dependencies, process-local.

Like the tracer, metrics have an ambient instance (:func:`current_metrics`)
that defaults to a no-op registry, so the instrumented hot path pays one
contextvar read and a no-op method call when metrics are off. Install a
real registry with :func:`use_metrics` (the CLI's ``--metrics`` does).

Instrument names follow Prometheus conventions (``repro_engine_
evaluations_total``, ``repro_engine_evaluate_seconds``); the text
exporter emits standard ``# HELP``/``# TYPE`` framing with cumulative
histogram buckets, and the JSON exporter adds the percentile view
(p50/p90/p99) a dashboard wants.
"""

from __future__ import annotations

import bisect
import json
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds, in seconds: 1 us .. 30 s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: increment must be >= 0")
        self.value += amount


class Gauge:
    """A value that goes up and down."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Observation distribution with cumulative buckets and percentiles."""

    __slots__ = ("name", "help", "buckets", "bucket_counts", "count", "sum",
                 "_observations")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        self._observations: List[float] = []

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        index = bisect.bisect_left(self.buckets, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1
        self._observations.append(value)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) of all observations, 0.0 if empty."""
        if not self._observations:
            return 0.0
        ordered = sorted(self._observations)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``le`` buckets (cumulative, +Inf last)."""
        out: List[Tuple[float, int]] = []
        running = 0
        for upper, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((upper, running))
        out.append((float("inf"), self.count))
        return out


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    One registry typically covers a whole run (the CLI creates one per
    invocation); names are unique across kinds, and re-requesting a name
    returns the existing instrument so call sites need no coordination.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments ----------------------------------------------------- #

    def counter(self, name: str, help: str = "") -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name, help)
        return inst

    def gauge(self, name: str, help: str = "") -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name, help)
        return inst

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name, help, buckets)
        return inst

    def ingest(self, prefix: str, values: Mapping[str, float]) -> None:
        """Set one gauge per entry of a flat numeric snapshot.

        The bridge from legacy snapshot surfaces —
        ``registry.ingest("repro_engine", engine.stats.snapshot())`` turns
        every :class:`~repro.observability.stats.EngineStats` field into a
        ``<prefix>_<field>`` gauge.
        """
        for key, value in values.items():
            self.gauge(f"{prefix}_{key}").set(float(value))

    # -- exporters ------------------------------------------------------- #

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Nested plain-dict view (the JSON exporter's payload)."""
        data: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for name in sorted(self._counters):
            data["counters"][name] = self._counters[name].value
        for name in sorted(self._gauges):
            data["gauges"][name] = self._gauges[name].value
        for name in sorted(self._histograms):
            h = self._histograms[name]
            data["histograms"][name] = {
                "count": h.count,
                "sum": h.sum,
                "p50": h.percentile(50),
                "p90": h.percentile(90),
                "p99": h.percentile(99),
            }
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The registry as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._counters):
            c = self._counters[name]
            if c.help:
                lines.append(f"# HELP {name} {c.help}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(c.value)}")
        for name in sorted(self._gauges):
            g = self._gauges[name]
            if g.help:
                lines.append(f"# HELP {name} {g.help}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(g.value)}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            if h.help:
                lines.append(f"# HELP {name} {h.help}")
            lines.append(f"# TYPE {name} histogram")
            for upper, cumulative in h.cumulative_buckets():
                le = "+Inf" if upper == float("inf") else _fmt(upper)
                lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{name}_sum {_fmt(h.sum)}")
            lines.append(f"{name}_count {h.count}")
        return "\n".join(lines) + "\n"


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The disabled registry: every instrument is a shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS):
        return _NULL_INSTRUMENT

    def ingest(self, prefix: str, values: Mapping[str, float]) -> None:
        pass

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        return "\n"


def _fmt(value: float) -> str:
    """Prometheus number formatting: integers without a trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


NULL_METRICS = NullMetricsRegistry()

_current_metrics: ContextVar = ContextVar("repro_metrics", default=NULL_METRICS)


def current_metrics():
    """The ambient registry (a no-op unless one is installed)."""
    return _current_metrics.get()


@contextmanager
def use_metrics(registry) -> Iterator[None]:
    """Install ``registry`` as the ambient metrics sink for the block."""
    token = _current_metrics.set(registry)
    try:
        yield
    finally:
        _current_metrics.reset(token)
