"""The metrics registry: counters, gauges and histograms with JSON and
Prometheus-text exporters — zero dependencies, process-local.

Like the tracer, metrics have an ambient instance (:func:`current_metrics`)
that defaults to a no-op registry, so the instrumented hot path pays one
contextvar read and a no-op method call when metrics are off. Install a
real registry with :func:`use_metrics` (the CLI's ``--metrics`` does).

Instrument names follow Prometheus conventions (``repro_engine_
evaluations_total``, ``repro_engine_evaluate_seconds``); the text
exporter emits standard ``# HELP``/``# TYPE`` framing with cumulative
histogram buckets, and the JSON exporter adds the percentile view
(p50/p90/p99) a dashboard wants.
"""

from __future__ import annotations

import bisect
import json
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds, in seconds: 1 us .. 30 s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)


def _render_labels(labels: Optional[Mapping[str, str]]) -> str:
    """Sorted ``k="v"`` pairs (no braces), or ``""`` for the bare series."""
    if not labels:
        return ""
    return ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))


def _series_key(name: str, labels: Optional[Mapping[str, str]]) -> str:
    """Registry key for one (name, labels) series."""
    rendered = _render_labels(labels)
    return f"{name}{{{rendered}}}" if rendered else name


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value", "labels")

    def __init__(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.labels = dict(labels) if labels else {}

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: increment must be >= 0")
        self.value += amount


class Gauge:
    """A value that goes up and down."""

    __slots__ = ("name", "help", "value", "labels")

    def __init__(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.labels = dict(labels) if labels else {}

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Observation distribution with cumulative buckets and percentiles."""

    __slots__ = ("name", "help", "buckets", "bucket_counts", "count", "sum",
                 "_observations", "labels")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0
        self._observations: List[float] = []
        self.labels = dict(labels) if labels else {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        index = bisect.bisect_left(self.buckets, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1
        self._observations.append(value)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) of all observations, 0.0 if empty."""
        if not self._observations:
            return 0.0
        ordered = sorted(self._observations)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``le`` buckets (cumulative, +Inf last)."""
        out: List[Tuple[float, int]] = []
        running = 0
        for upper, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((upper, running))
        out.append((float("inf"), self.count))
        return out


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    One registry typically covers a whole run (the CLI creates one per
    invocation); names are unique across kinds, and re-requesting a name
    returns the existing instrument so call sites need no coordination.

    Instruments may carry Prometheus labels (``labels={"shard": "0"}``):
    each distinct (name, labels) pair is its own series, and the text
    exporter groups a name's series under one ``# HELP``/``# TYPE``
    header. Unlabeled instruments export exactly as before.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instruments ----------------------------------------------------- #

    def counter(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        key = _series_key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, help, labels)
        return inst

    def gauge(
        self, name: str, help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        key = _series_key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, help, labels)
        return inst

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        key = _series_key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(name, help, buckets, labels)
        return inst

    def ingest(self, prefix: str, values: Mapping[str, float]) -> None:
        """Set one gauge per entry of a flat numeric snapshot.

        The bridge from legacy snapshot surfaces —
        ``registry.ingest("repro_engine", engine.stats.snapshot())`` turns
        every :class:`~repro.observability.stats.EngineStats` field into a
        ``<prefix>_<field>`` gauge.
        """
        for key, value in values.items():
            self.gauge(f"{prefix}_{key}").set(float(value))

    # -- exporters ------------------------------------------------------- #

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Nested plain-dict view (the JSON exporter's payload)."""
        data: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for name in sorted(self._counters):
            data["counters"][name] = self._counters[name].value
        for name in sorted(self._gauges):
            data["gauges"][name] = self._gauges[name].value
        for name in sorted(self._histograms):
            h = self._histograms[name]
            data["histograms"][name] = {
                "count": h.count,
                "sum": h.sum,
                "p50": h.percentile(50),
                "p90": h.percentile(90),
                "p99": h.percentile(99),
            }
        return data

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The registry as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Series of one name are grouped (sorted by label set) under a
        single ``# HELP``/``# TYPE`` header; the unlabeled-only output
        is byte-identical to the pre-label exporter.
        """
        lines: List[str] = []

        def ordered(insts):
            return sorted(
                insts.values(), key=lambda i: (i.name, _render_labels(i.labels))
            )

        def header(inst, kind: str, seen: set, helps: Dict[str, str]) -> None:
            if inst.name in seen:
                return
            seen.add(inst.name)
            help_text = helps.get(inst.name, "")
            if help_text:
                lines.append(f"# HELP {inst.name} {help_text}")
            lines.append(f"# TYPE {inst.name} {kind}")

        def help_by_name(insts) -> Dict[str, str]:
            # Help may have been supplied on any one series of a name;
            # the single group header uses whichever series carried it.
            helps: Dict[str, str] = {}
            for inst in insts.values():
                if inst.help and not helps.get(inst.name):
                    helps[inst.name] = inst.help
            return helps

        seen: set = set()
        helps = help_by_name(self._counters)
        for c in ordered(self._counters):
            header(c, "counter", seen, helps)
            lines.append(f"{_series_key(c.name, c.labels)} {_fmt(c.value)}")
        seen = set()
        helps = help_by_name(self._gauges)
        for g in ordered(self._gauges):
            header(g, "gauge", seen, helps)
            lines.append(f"{_series_key(g.name, g.labels)} {_fmt(g.value)}")
        seen = set()
        helps = help_by_name(self._histograms)
        for h in ordered(self._histograms):
            header(h, "histogram", seen, helps)
            rendered = _render_labels(h.labels)
            prefix = f"{rendered}," if rendered else ""
            for upper, cumulative in h.cumulative_buckets():
                le = "+Inf" if upper == float("inf") else _fmt(upper)
                lines.append(
                    f'{h.name}_bucket{{{prefix}le="{le}"}} {cumulative}'
                )
            lines.append(f"{_series_key(h.name + '_sum', h.labels)} {_fmt(h.sum)}")
            lines.append(f"{_series_key(h.name + '_count', h.labels)} {h.count}")
        return "\n".join(lines) + "\n"


class _NullInstrument:
    """Accepts every instrument method and does nothing."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, p: float) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """The disabled registry: every instrument is a shared no-op."""

    enabled = False

    def counter(self, name: str, help: str = "", labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS,
                  labels=None):
        return _NULL_INSTRUMENT

    def ingest(self, prefix: str, values: Mapping[str, float]) -> None:
        pass

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        return "\n"


def _fmt(value: float) -> str:
    """Prometheus number formatting: integers without a trailing ``.0``."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


NULL_METRICS = NullMetricsRegistry()

_current_metrics: ContextVar = ContextVar("repro_metrics", default=NULL_METRICS)


def current_metrics():
    """The ambient registry (a no-op unless one is installed)."""
    return _current_metrics.get()


@contextmanager
def use_metrics(registry) -> Iterator[None]:
    """Install ``registry`` as the ambient metrics sink for the block."""
    token = _current_metrics.set(registry)
    try:
        yield
    finally:
        _current_metrics.reset(token)
