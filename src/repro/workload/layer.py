"""A single DNN layer as a 7-D nested loop with operand metadata."""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import Dict, Mapping, Optional

from repro.workload.dims import ALL_DIMS, LoopDim, relevance_of
from repro.workload.operand import Operand


class LayerType(str, enum.Enum):
    """The dense layer types covered by the paper (Section II-A-1)."""

    CONV2D = "Conv2D"
    DEPTHWISE = "Depthwise"
    POINTWISE = "Pointwise"
    DENSE = "Dense"

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class Precision:
    """Bit widths of the three operands.

    The validation chip (Section IV) uses INT8 weights and inputs with a
    24-bit output register per PE, so those are the defaults. ``o_partial``
    is the in-flight partial-sum precision; ``o_final`` the precision of a
    finished output element (often re-quantized, here kept at accumulator
    width unless overridden).
    """

    w: int = 8
    i: int = 8
    o_final: int = 24
    o_partial: int = 24

    def of(self, operand: Operand, partial: bool = False) -> int:
        """Bit width of ``operand`` (``partial`` selects psum precision)."""
        if operand is Operand.W:
            return self.w
        if operand is Operand.I:
            return self.i
        return self.o_partial if partial else self.o_final

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"precision {field.name} must be a positive int, got {value!r}")


@dataclasses.dataclass(frozen=True)
class LayerSpec:
    """A DNN layer: loop bounds plus stride / dilation / precision metadata.

    Loop bounds default to 1, so a Dense (matmul) layer is simply
    ``LayerSpec(LayerType.DENSE, {B: ..., K: ..., C: ...})``.

    For :class:`LayerType.DEPTHWISE` layers, ``K`` is the channel dimension
    (one input channel per output channel) and ``C`` must stay 1; the input
    operand then treats K as relevant, which :meth:`relevance` reports.
    """

    layer_type: LayerType
    dims: Mapping[LoopDim, int]
    stride_x: int = 1
    stride_y: int = 1
    dilation_x: int = 1
    dilation_y: int = 1
    precision: Precision = dataclasses.field(default_factory=Precision)
    name: Optional[str] = None

    #: The label is reporting metadata, not part of the design point:
    #: repeated shapes under different names share evaluation-cache entries.
    __fingerprint_exclude__ = ("name",)

    def __post_init__(self) -> None:
        full: Dict[LoopDim, int] = {dim: 1 for dim in ALL_DIMS}
        for dim, size in dict(self.dims).items():
            if not isinstance(dim, LoopDim):
                dim = LoopDim(dim)
            if not isinstance(size, int) or size < 1:
                raise ValueError(f"loop bound {dim} must be a positive int, got {size!r}")
            full[dim] = size
        object.__setattr__(self, "dims", full)
        for attr in ("stride_x", "stride_y", "dilation_x", "dilation_y"):
            if getattr(self, attr) < 1:
                raise ValueError(f"{attr} must be >= 1")
        self._check_type_constraints()

    def _check_type_constraints(self) -> None:
        if self.layer_type is LayerType.DENSE:
            for dim in (LoopDim.OX, LoopDim.OY, LoopDim.FX, LoopDim.FY):
                if self.dims[dim] != 1:
                    raise ValueError(f"Dense layer must have {dim} == 1, got {self.dims[dim]}")
        if self.layer_type is LayerType.POINTWISE:
            for dim in (LoopDim.FX, LoopDim.FY):
                if self.dims[dim] != 1:
                    raise ValueError(f"Pointwise layer must have {dim} == 1")
        if self.layer_type is LayerType.DEPTHWISE and self.dims[LoopDim.C] != 1:
            raise ValueError("Depthwise layer uses K as the channel dim; C must be 1")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    def size(self, dim: LoopDim) -> int:
        """Loop bound of ``dim`` (1 when the dimension is absent)."""
        return self.dims[dim]

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulate operations of the layer."""
        return math.prod(self.dims.values())

    def relevance(self, operand: Operand, dim: LoopDim, pr_as_r: bool = False) -> str:
        """Layer-type-aware r/ir/pr classification of ``dim`` for ``operand``.

        Identical to :func:`repro.workload.dims.relevance_of` except for
        depthwise layers, where the input operand shares the channel loop K
        with the output (so K is relevant, not irrelevant, for I).
        """
        if (
            self.layer_type is LayerType.DEPTHWISE
            and operand is Operand.I
            and dim is LoopDim.K
        ):
            return "r"
        return relevance_of(operand, dim, pr_as_r=pr_as_r)

    def input_extent_x(self, ox: int, fx: int) -> int:
        """Input-x elements covered by ``ox`` outputs and ``fx`` filter taps."""
        if ox < 1 or fx < 1:
            raise ValueError("extents must be >= 1")
        return (ox - 1) * self.stride_x + (fx - 1) * self.dilation_x + 1

    def input_extent_y(self, oy: int, fy: int) -> int:
        """Input-y elements covered by ``oy`` outputs and ``fy`` filter taps."""
        if oy < 1 or fy < 1:
            raise ValueError("extents must be >= 1")
        return (oy - 1) * self.stride_y + (fy - 1) * self.dilation_y + 1

    def operand_elements(self, operand: Operand) -> int:
        """Total number of elements of ``operand`` touched by the layer."""
        d = self.dims
        if operand is Operand.W:
            channels = d[LoopDim.C] if self.layer_type is not LayerType.DEPTHWISE else 1
            return d[LoopDim.K] * channels * d[LoopDim.FX] * d[LoopDim.FY]
        if operand is Operand.O:
            return d[LoopDim.B] * d[LoopDim.K] * d[LoopDim.OX] * d[LoopDim.OY]
        # Input: sliding-window extents in x/y.
        ix = self.input_extent_x(d[LoopDim.OX], d[LoopDim.FX])
        iy = self.input_extent_y(d[LoopDim.OY], d[LoopDim.FY])
        channels = d[LoopDim.C] if self.layer_type is not LayerType.DEPTHWISE else d[LoopDim.K]
        return d[LoopDim.B] * channels * ix * iy

    def operand_bits(self, operand: Operand) -> int:
        """Total data size of ``operand`` in bits (final output precision)."""
        return self.operand_elements(operand) * self.precision.of(operand)

    @property
    def total_data_bits(self) -> int:
        """Sum of all three operands' data sizes in bits."""
        return sum(self.operand_bits(op) for op in Operand)

    def with_dims(self, **overrides: int) -> "LayerSpec":
        """Copy of this layer with some loop bounds replaced (by dim name)."""
        dims = {dim: size for dim, size in self.dims.items()}
        for key, value in overrides.items():
            dims[LoopDim(key)] = value
        return dataclasses.replace(self, dims=dims)

    def describe(self) -> str:
        """One-line human-readable summary of the layer."""
        parts = [f"{dim}={size}" for dim, size in self.dims.items() if size > 1]
        label = self.name or self.layer_type.value
        return f"{label}({', '.join(parts) or 'scalar'}) macs={self.total_macs}"
