"""Workload representation: DNN layers as 7-D nested loops.

This package provides the algorithm ("A") corner of the
algorithm-hardware-mapping (AHM) design space of the paper:

* :class:`~repro.workload.dims.LoopDim` — the seven canonical loop
  dimensions (B, K, C, OX, OY, FX, FY) and per-operand relevance tables.
* :class:`~repro.workload.operand.Operand` — the three major operands
  (W / I / O) and their precisions.
* :class:`~repro.workload.layer.LayerSpec` — a single DNN layer with its
  loop bounds, strides and precisions, plus derived quantities (MAC count,
  operand sizes, input sliding-window extents).
* :func:`~repro.workload.im2col.im2col` — the Im2Col lowering used by the
  paper's validation chip (convolution unrolled to matrix multiplication).
* :mod:`~repro.workload.networks` — realistic layer tables, including an
  SSD-MobileNetV1-style stand-in for the hand-tracking workload [19].
* :mod:`~repro.workload.generator` — synthetic layer sweeps (Case study 2)
  and random layers for property-based testing.
"""

from repro.workload.dims import (
    ALL_DIMS,
    IR_DIMS,
    PR_DIMS,
    R_DIMS,
    LoopDim,
    relevance_of,
)
from repro.workload.layer import LayerSpec, LayerType, Precision
from repro.workload.operand import Operand
from repro.workload.im2col import im2col, im2col_tiled
from repro.workload.importer import (
    layer_from_dict,
    layers_from_json,
    layers_to_json,
    load_layers,
)
from repro.workload.generator import (
    bkc_sweep,
    dense_layer,
    random_dense_layer,
    scale_layer,
)
from repro.workload import networks

__all__ = [
    "ALL_DIMS",
    "IR_DIMS",
    "LayerSpec",
    "LayerType",
    "LoopDim",
    "Operand",
    "PR_DIMS",
    "Precision",
    "R_DIMS",
    "bkc_sweep",
    "dense_layer",
    "im2col",
    "im2col_tiled",
    "layer_from_dict",
    "layers_from_json",
    "layers_to_json",
    "load_layers",
    "networks",
    "random_dense_layer",
    "relevance_of",
    "scale_layer",
]
