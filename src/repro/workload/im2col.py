"""Im2Col lowering: convolution unrolled into matrix-matrix multiplication.

The validation accelerator (Section IV) performs Im2Col on a RISC-V core
before the layer reaches the PE array, and "Im2Col layer transfer is applied
to all the case studies" (Section V). The lowering maps a Conv2D with loop
bounds (B, K, C, OX, OY, FX, FY) onto a Dense (GEMM) layer with

* ``B' = B * OX * OY``  (every output pixel becomes a GEMM row),
* ``K' = K``            (output channels are GEMM columns),
* ``C' = C * FX * FY``  (the unrolled patch is the reduction dim).

The MAC count is preserved exactly. The *input* data volume grows by the
patch-overlap factor — the well-known Im2Col blow-up — which the lowered
layer's Dense footprint reflects, matching what the real chip streams.
"""

from __future__ import annotations

import math
from typing import List

from repro.workload.dims import LoopDim
from repro.workload.layer import LayerSpec, LayerType
from repro.workload.operand import Operand


def im2col(layer: LayerSpec) -> LayerSpec:
    """Lower ``layer`` to an equivalent Dense (GEMM) layer.

    Dense layers pass through unchanged. Depthwise layers cannot be lowered
    to a single GEMM (each output channel sees one input channel); they are
    lowered per-channel into a batched GEMM with ``C' = FX * FY`` and the
    channel loop folded into K.

    Returns
    -------
    LayerSpec
        A :class:`~repro.workload.layer.LayerType.DENSE` layer with the same
        total MAC count.
    """
    if layer.layer_type is LayerType.DENSE:
        return layer

    d = layer.dims
    name = f"{layer.name or layer.layer_type.value}@im2col"
    if layer.layer_type is LayerType.DEPTHWISE:
        lowered = LayerSpec(
            LayerType.DENSE,
            {
                LoopDim.B: d[LoopDim.B] * d[LoopDim.OX] * d[LoopDim.OY],
                LoopDim.K: d[LoopDim.K],
                LoopDim.C: d[LoopDim.FX] * d[LoopDim.FY],
            },
            precision=layer.precision,
            name=name,
        )
    else:
        lowered = LayerSpec(
            LayerType.DENSE,
            {
                LoopDim.B: d[LoopDim.B] * d[LoopDim.OX] * d[LoopDim.OY],
                LoopDim.K: d[LoopDim.K],
                LoopDim.C: d[LoopDim.C] * d[LoopDim.FX] * d[LoopDim.FY],
            },
            precision=layer.precision,
            name=name,
        )
    assert lowered.total_macs == layer.total_macs
    return lowered


def im2col_tiled(layer: LayerSpec, max_working_set_bits: int) -> List[LayerSpec]:
    """Im2Col with GEMM-row tiling for bounded on-chip working sets.

    The validation chip's RISC-V core materializes Im2Col patches into the
    1 MB global buffer; for layers whose full GEMM does not fit (early
    high-resolution convolutions), the real system processes the GEMM in
    row (B') chunks, re-staging weights for each chunk. This helper splits
    the lowered GEMM into the fewest equal-ish B'-tiles whose working set
    (weights + one input chunk + one output chunk) fits
    ``max_working_set_bits``. MAC count is preserved across the tiles.
    """
    if max_working_set_bits <= 0:
        raise ValueError("max_working_set_bits must be positive")
    lowered = im2col(layer)
    total = lowered.total_data_bits
    if total <= max_working_set_bits:
        return [lowered]

    b_full = lowered.size(LoopDim.B)
    weights_bits = lowered.operand_bits(Operand.W)
    per_row_bits = (
        lowered.size(LoopDim.C) * lowered.precision.i
        + lowered.size(LoopDim.K) * lowered.precision.o_final
    )
    budget = max_working_set_bits - weights_bits
    if budget <= 0 or budget < per_row_bits:
        raise ValueError(
            f"weights alone ({weights_bits} b) plus one GEMM row "
            f"({per_row_bits} b) exceed the working-set budget "
            f"({max_working_set_bits} b)"
        )
    rows_per_tile = max(1, budget // per_row_bits)
    num_tiles = math.ceil(b_full / rows_per_tile)
    base = b_full // num_tiles
    remainder = b_full - base * num_tiles
    tiles: List[LayerSpec] = []
    for index in range(num_tiles):
        rows = base + (1 if index < remainder else 0)
        tiles.append(
            LayerSpec(
                LayerType.DENSE,
                {
                    LoopDim.B: rows,
                    LoopDim.K: lowered.size(LoopDim.K),
                    LoopDim.C: lowered.size(LoopDim.C),
                },
                precision=lowered.precision,
                name=f"{lowered.name or 'gemm'}[{index}/{num_tiles}]",
            )
        )
    assert sum(t.total_macs for t in tiles) == layer.total_macs
    return tiles
