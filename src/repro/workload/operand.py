"""The three major DNN layer operands: Weight, Input, Output."""

from __future__ import annotations

import enum


class Operand(str, enum.Enum):
    """A DNN layer operand.

    The paper models exactly three operands per layer (Section II-B):
    weights (W), inputs (I) and outputs (O). Outputs are special in two
    ways that the latency model must capture:

    * they flow *up* the memory hierarchy (from the MAC array towards the
      global buffer) instead of down;
    * a tile leaving a level before its accumulation (over C/FX/FY) is
      finished is a *partial sum*: it is stored at higher precision and must
      later be read back for further accumulation.
    """

    W = "W"
    I = "I"  # noqa: E741 - paper nomenclature
    O = "O"  # noqa: E741 - paper nomenclature

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Operand.{self.value}"

    def __str__(self) -> str:
        return self.value


#: Operands in canonical (W, I, O) order.
ALL_OPERANDS = (Operand.W, Operand.I, Operand.O)
