"""Import layer tables from JSON (the lingua franca of model exporters).

Schema — a list of layer objects::

    [
      {"name": "conv1", "type": "Conv2D",
       "dims": {"B": 1, "K": 64, "C": 3, "OX": 112, "OY": 112,
                 "FX": 7, "FY": 7},
       "stride": 2,                      # or "stride_x"/"stride_y"
       "dilation": 1,
       "precision": {"w": 8, "i": 8, "o_final": 24, "o_partial": 24}},
      {"name": "fc", "type": "Dense", "dims": {"B": 1, "K": 10, "C": 512}}
    ]

Unknown dims raise; missing dims default to 1; precision defaults to the
INT8/24-bit profile of the validation chip.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.workload.dims import LoopDim
from repro.workload.layer import LayerSpec, LayerType, Precision


class ImportError_(ValueError):
    """Malformed layer table."""


_TYPE_ALIASES = {
    "conv": LayerType.CONV2D,
    "conv2d": LayerType.CONV2D,
    "convolution": LayerType.CONV2D,
    "depthwise": LayerType.DEPTHWISE,
    "dwconv": LayerType.DEPTHWISE,
    "pointwise": LayerType.POINTWISE,
    "pwconv": LayerType.POINTWISE,
    "conv1x1": LayerType.POINTWISE,
    "dense": LayerType.DENSE,
    "fc": LayerType.DENSE,
    "gemm": LayerType.DENSE,
    "matmul": LayerType.DENSE,
    "linear": LayerType.DENSE,
}


def _layer_type(raw: str) -> LayerType:
    key = str(raw).strip().lower()
    if key not in _TYPE_ALIASES:
        raise ImportError_(
            f"unknown layer type {raw!r}; expected one of "
            f"{sorted(set(_TYPE_ALIASES))}"
        )
    return _TYPE_ALIASES[key]


def layer_from_dict(data: Dict[str, Any]) -> LayerSpec:
    """Build one :class:`LayerSpec` from a JSON-style dict."""
    if "type" not in data or "dims" not in data:
        raise ImportError_(f"layer entry needs 'type' and 'dims': {data!r}")
    layer_type = _layer_type(data["type"])
    dims: Dict[LoopDim, int] = {}
    for key, value in dict(data["dims"]).items():
        try:
            dims[LoopDim(str(key).upper())] = int(value)
        except ValueError as exc:
            raise ImportError_(f"unknown loop dim {key!r}") from exc

    stride = int(data.get("stride", 1))
    dilation = int(data.get("dilation", 1))
    precision_spec = data.get("precision")
    precision = (
        Precision(**{k: int(v) for k, v in precision_spec.items()})
        if precision_spec
        else Precision()
    )
    try:
        return LayerSpec(
            layer_type,
            dims,
            stride_x=int(data.get("stride_x", stride)),
            stride_y=int(data.get("stride_y", stride)),
            dilation_x=int(data.get("dilation_x", dilation)),
            dilation_y=int(data.get("dilation_y", dilation)),
            precision=precision,
            name=data.get("name"),
        )
    except (TypeError, ValueError) as exc:
        raise ImportError_(f"bad layer {data.get('name', '?')!r}: {exc}") from exc


def layers_from_list(entries: Sequence[Dict[str, Any]]) -> List[LayerSpec]:
    """Build a layer table from a list of dicts."""
    return [layer_from_dict(entry) for entry in entries]


def layers_from_json(text: str) -> List[LayerSpec]:
    """Parse a JSON layer table."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ImportError_(f"invalid JSON: {exc}") from exc
    if not isinstance(data, list):
        raise ImportError_("layer table must be a JSON list")
    return layers_from_list(data)


def load_layers(path: str) -> List[LayerSpec]:
    """Load a layer table from a JSON file."""
    with open(path) as handle:
        return layers_from_json(handle.read())


def layers_to_json(layers: Sequence[LayerSpec], indent: int = 2) -> str:
    """Serialize a layer table back to JSON."""
    entries = []
    for layer in layers:
        entries.append(
            {
                "name": layer.name,
                "type": layer.layer_type.value,
                "dims": {d.value: s for d, s in layer.dims.items() if s > 1},
                "stride_x": layer.stride_x,
                "stride_y": layer.stride_y,
                "dilation_x": layer.dilation_x,
                "dilation_y": layer.dilation_y,
                "precision": {
                    "w": layer.precision.w,
                    "i": layer.precision.i,
                    "o_final": layer.precision.o_final,
                    "o_partial": layer.precision.o_partial,
                },
            }
        )
    return json.dumps(entries, indent=indent)
