"""JSON (de)serialization of layer specifications.

Promoted out of the verify corpus in PR 7 so the wire protocol of
:mod:`repro.serve`, the regression corpus and any future config surface
share one schema (the corpus delegates here). The shape mirrors
:class:`~repro.workload.layer.LayerSpec`::

    {"layer_type": "fc", "dims": {"B": 64, "K": 128, "C": 1200},
     "stride_x": 1, "stride_y": 1, "dilation_x": 1, "dilation_y": 1,
     "precision": {"w": 8, "i": 8, "o_final": 24, "o_partial": 24},
     "name": "fc1"}

Size-1 dimensions are elided on write and default on read, so the dict
is minimal and the round trip preserves :func:`stable_fingerprint`
identity (``LayerSpec.name`` is carried but excluded from fingerprints).
"""

from __future__ import annotations

from typing import Dict

from repro.workload.dims import LoopDim
from repro.workload.layer import LayerSpec, LayerType, Precision


def layer_to_dict(layer: LayerSpec) -> Dict:
    """Serialize a layer to a JSON-compatible dict."""
    return {
        "layer_type": layer.layer_type.value,
        "dims": {dim.value: size for dim, size in layer.dims.items() if size > 1},
        "stride_x": layer.stride_x,
        "stride_y": layer.stride_y,
        "dilation_x": layer.dilation_x,
        "dilation_y": layer.dilation_y,
        "precision": {
            "w": layer.precision.w,
            "i": layer.precision.i,
            "o_final": layer.precision.o_final,
            "o_partial": layer.precision.o_partial,
        },
        "name": layer.name,
    }


def layer_from_dict(data: Dict) -> LayerSpec:
    """Inverse of :func:`layer_to_dict` (tolerant of omitted defaults)."""
    return LayerSpec(
        layer_type=LayerType(data["layer_type"]),
        dims={LoopDim(d): int(s) for d, s in data["dims"].items()},
        stride_x=int(data.get("stride_x", 1)),
        stride_y=int(data.get("stride_y", 1)),
        dilation_x=int(data.get("dilation_x", 1)),
        dilation_y=int(data.get("dilation_y", 1)),
        precision=Precision(**data["precision"]),
        name=data.get("name"),
    )


__all__ = ["layer_from_dict", "layer_to_dict"]
