"""Realistic layer tables used by the validation and case studies.

The paper validates against NN layers "of a hand-tracking workload [19]".
Reference [19] is Victor Dibia's *handtrack* model, an SSD detector with a
MobileNetV1 feature extractor. The exact per-layer table of the authors'
deployment is not published, so :func:`hand_tracking_layers` provides the
standard SSD-MobileNetV1 layer shapes at the 320x240-ish input resolution a
hand tracker runs at, which reproduces the layer-size *distribution* the
validation sweeps over (alternating pointwise / depthwise / conv layers from
a few K MACs to tens of M MACs).
"""

from __future__ import annotations

from typing import List, Optional

from repro.workload.dims import LoopDim
from repro.workload.layer import LayerSpec, LayerType, Precision

_B = LoopDim.B
_K = LoopDim.K
_C = LoopDim.C
_OX = LoopDim.OX
_OY = LoopDim.OY
_FX = LoopDim.FX
_FY = LoopDim.FY


def _conv(name: str, k: int, c: int, ox: int, oy: int, f: int, stride: int = 1) -> LayerSpec:
    return LayerSpec(
        LayerType.CONV2D,
        {_B: 1, _K: k, _C: c, _OX: ox, _OY: oy, _FX: f, _FY: f},
        stride_x=stride,
        stride_y=stride,
        name=name,
    )


def _dw(name: str, k: int, ox: int, oy: int, stride: int = 1) -> LayerSpec:
    return LayerSpec(
        LayerType.DEPTHWISE,
        {_B: 1, _K: k, _C: 1, _OX: ox, _OY: oy, _FX: 3, _FY: 3},
        stride_x=stride,
        stride_y=stride,
        name=name,
    )


def _pw(name: str, k: int, c: int, ox: int, oy: int) -> LayerSpec:
    return LayerSpec(
        LayerType.POINTWISE,
        {_B: 1, _K: k, _C: c, _OX: ox, _OY: oy, _FX: 1, _FY: 1},
        name=name,
    )


def hand_tracking_layers(limit: Optional[int] = None) -> List[LayerSpec]:
    """SSD-MobileNetV1 layer table (hand-tracking workload stand-in).

    Returns the feature-extractor backbone at 224x224 input resolution:
    the initial strided 3x3 convolution followed by the thirteen
    depthwise-separable blocks of MobileNetV1 (depthwise 3x3 + pointwise
    1x1 each). ``limit`` truncates the list (useful for quick tests).
    """
    layers: List[LayerSpec] = [_conv("conv0", 32, 3, 112, 112, 3, stride=2)]
    # (channels_out, spatial, stride_of_dw) per separable block.
    blocks = [
        (64, 112, 1),
        (128, 56, 2),
        (128, 56, 1),
        (256, 28, 2),
        (256, 28, 1),
        (512, 14, 2),
    ] + [(512, 14, 1)] * 5 + [
        (1024, 7, 2),
        (1024, 7, 1),
    ]
    c_in = 32
    for index, (k, spatial, stride) in enumerate(blocks, start=1):
        dw_out = spatial if stride == 1 else spatial
        layers.append(_dw(f"dw{index}", c_in, dw_out, dw_out, stride=stride))
        layers.append(_pw(f"pw{index}", k, c_in, spatial, spatial))
        c_in = k
    if limit is not None:
        layers = layers[:limit]
    return layers


def mlp_layers(batch: int = 8) -> List[LayerSpec]:
    """A small MLP head (Dense layers), e.g. a keypoint regressor."""
    shapes = [(1024, 512), (512, 512), (512, 63)]
    return [
        LayerSpec(
            LayerType.DENSE,
            {_B: batch, _K: k, _C: c},
            name=f"fc{i}",
        )
        for i, (c, k) in enumerate(shapes)
    ]


def validation_layers() -> List[LayerSpec]:
    """The layer set used for the Fig. 5(c) validation experiment.

    A mix of small and large conv / depthwise / pointwise / dense layers
    spanning three orders of magnitude in MAC count, mirroring the spread of
    the paper's hand-tracking validation sweep. Conv layers are expected to
    be Im2Col-lowered before reaching the accelerator, exactly like the
    RISC-V core does in the real system.
    """
    picks = hand_tracking_layers()
    # conv0 plus a representative subset across depths (small to large).
    chosen = [picks[0], picks[1], picks[2], picks[5], picks[6], picks[11], picks[12], picks[21], picks[25]]
    chosen += mlp_layers(batch=4)
    return chosen


def int8_precision() -> Precision:
    """Precision of the validation chip: INT8 W/I, 24-bit outputs."""
    return Precision(w=8, i=8, o_final=24, o_partial=24)


def resnet18_layers(batch: int = 1) -> List[LayerSpec]:
    """ResNet-18 backbone convolutions at 224x224 (a second realistic mix).

    Includes the strided 7x7 stem, the four residual stages (two 3x3 conv
    pairs each) and the 1x1 projection shortcuts — a heavier-compute,
    larger-kernel contrast to the depthwise-separable hand-tracking net.
    """
    layers: List[LayerSpec] = [
        LayerSpec(
            LayerType.CONV2D,
            {_B: batch, _K: 64, _C: 3, _OX: 112, _OY: 112, _FX: 7, _FY: 7},
            stride_x=2, stride_y=2, name="stem7x7",
        )
    ]
    stages = [
        (64, 56, 1),
        (128, 28, 2),
        (256, 14, 2),
        (512, 7, 2),
    ]
    c_in = 64
    for index, (k, spatial, stride) in enumerate(stages, start=1):
        layers.append(
            LayerSpec(
                LayerType.CONV2D,
                {_B: batch, _K: k, _C: c_in, _OX: spatial, _OY: spatial,
                 _FX: 3, _FY: 3},
                stride_x=stride, stride_y=stride,
                name=f"res{index}a_conv1",
            )
        )
        layers.append(
            LayerSpec(
                LayerType.CONV2D,
                {_B: batch, _K: k, _C: k, _OX: spatial, _OY: spatial,
                 _FX: 3, _FY: 3},
                name=f"res{index}a_conv2",
            )
        )
        if stride != 1 or c_in != k:
            layers.append(
                LayerSpec(
                    LayerType.POINTWISE,
                    {_B: batch, _K: k, _C: c_in, _OX: spatial, _OY: spatial},
                    name=f"res{index}_proj",
                )
            )
        c_in = k
    return layers


def transformer_gemm_layers(
    seq_len: int = 128,
    d_model: int = 256,
    d_ff: Optional[int] = None,
    heads: int = 4,
) -> List[LayerSpec]:
    """One transformer encoder block as Dense (GEMM) layers.

    Attention projections (Q/K/V/O), the attention score and context
    matmuls (per head, folded into the batch dim), and the two FFN GEMMs —
    the GEMM-only workload an accelerator sees after graph lowering.
    """
    d_ff = d_ff or 4 * d_model
    d_head = d_model // heads
    layers = [
        LayerSpec(LayerType.DENSE, {_B: seq_len, _K: d_model, _C: d_model},
                  name="attn_q"),
        LayerSpec(LayerType.DENSE, {_B: seq_len, _K: d_model, _C: d_model},
                  name="attn_k"),
        LayerSpec(LayerType.DENSE, {_B: seq_len, _K: d_model, _C: d_model},
                  name="attn_v"),
        # scores: (heads x seq) x seq x d_head, folded per head into B.
        LayerSpec(LayerType.DENSE, {_B: heads * seq_len, _K: seq_len, _C: d_head},
                  name="attn_scores"),
        # context: (heads x seq) x d_head x seq.
        LayerSpec(LayerType.DENSE, {_B: heads * seq_len, _K: d_head, _C: seq_len},
                  name="attn_context"),
        LayerSpec(LayerType.DENSE, {_B: seq_len, _K: d_model, _C: d_model},
                  name="attn_out"),
        LayerSpec(LayerType.DENSE, {_B: seq_len, _K: d_ff, _C: d_model},
                  name="ffn_up"),
        LayerSpec(LayerType.DENSE, {_B: seq_len, _K: d_model, _C: d_ff},
                  name="ffn_down"),
    ]
    return layers
