"""Synthetic workload generators: sweeps for Case study 2 and random layers.

Case study 2 (Fig. 7) varies the Dense layer dimensions B/K/C between 8 and
512 on a fixed accelerator and inspects the latency breakdown.
:func:`bkc_sweep` regenerates the swept layer list; :func:`dense_layer` is
the one-liner used throughout examples and tests.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.workload.dims import LoopDim
from repro.workload.layer import LayerSpec, LayerType, Precision


def dense_layer(
    b: int,
    k: int,
    c: int,
    precision: Optional[Precision] = None,
    name: Optional[str] = None,
) -> LayerSpec:
    """A Dense (GEMM) layer with bounds B=b, K=k, C=c."""
    return LayerSpec(
        LayerType.DENSE,
        {LoopDim.B: b, LoopDim.K: k, LoopDim.C: c},
        precision=precision or Precision(),
        name=name or f"dense({b},{k},{c})",
    )


def bkc_sweep(
    values: Sequence[int] = (8, 32, 128, 512),
    precision: Optional[Precision] = None,
) -> List[LayerSpec]:
    """The Case-study-2 workload sweep: Dense layers over a (B, K, C) grid.

    The paper sweeps B/K/C from 8 to 512 and highlights Output-dominant
    corners such as (128, 128, 8) and (512, 512, 8). The full cube is large;
    following the figure, we sweep the diagonal-heavy subset: all triples
    where at least two of the three dims share a value from ``values``.
    """
    triples: List[Tuple[int, int, int]] = []
    for v in values:
        for w in values:
            triples.append((v, v, w))  # B=K plane (the figure's main axis)
            if w != v:
                triples.append((v, w, v))
                triples.append((w, v, v))
    seen = set()
    layers = []
    for b, k, c in triples:
        if (b, k, c) in seen:
            continue
        seen.add((b, k, c))
        layers.append(dense_layer(b, k, c, precision=precision))
    return layers


def scale_layer(layer: LayerSpec, factor: int) -> LayerSpec:
    """Scale every non-unit loop bound of ``layer`` by ``factor``."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    overrides = {
        dim.value: size * factor for dim, size in layer.dims.items() if size > 1
    }
    return layer.with_dims(**overrides)


def random_dense_layer(
    rng: random.Random,
    max_size: int = 256,
    pow2: bool = False,
) -> LayerSpec:
    """A random Dense layer, used by property-based tests.

    ``pow2`` restricts bounds to powers of two (the friendly case for
    spatial mappings); otherwise bounds are arbitrary in [1, max_size].
    """
    def draw() -> int:
        if pow2:
            return 2 ** rng.randint(0, max(0, max_size.bit_length() - 1))
        return rng.randint(1, max_size)

    return dense_layer(draw(), draw(), draw())


def layers_from_triples(triples: Iterable[Tuple[int, int, int]]) -> List[LayerSpec]:
    """Dense layers from explicit (B, K, C) triples (paper-figure corners)."""
    return [dense_layer(b, k, c) for b, k, c in triples]
