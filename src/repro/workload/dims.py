"""The seven canonical DNN loop dimensions and operand relevance.

Following the ZigZag loop characterization adopted by the paper
(Section III-A), a dense DNN layer is a 7-dimensional nested for-loop:

====  =========================================
B     batch
K     output channel
C     input channel
OX    output feature-map x
OY    output feature-map y
FX    filter (kernel) x
FY    filter (kernel) y
====  =========================================

Each operand classifies every dimension as:

* ``r`` (relevant) — iterating it walks to *new* data of the operand, so
  r-loop sizes multiply into the operand's data footprint;
* ``ir`` (irrelevant) — iterating it *reuses* the same data;
* ``pr`` (partially relevant) — only the input operand has these: OX/OY and
  FX/FY slide a window over the input, so the footprint follows
  ``ix = (ox - 1) * stride + (fx - 1) * dilation + 1`` rather than a plain
  product.

For scheduling questions ("does iterating this loop change the data the
memory must hold?") pr behaves like r, which is what
:func:`relevance_of` reports with ``pr_as_r=True``.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet

from repro.workload.operand import Operand


class LoopDim(str, enum.Enum):
    """One of the seven canonical nested-loop dimensions of a DNN layer."""

    B = "B"
    K = "K"
    C = "C"
    OX = "OX"
    OY = "OY"
    FX = "FX"
    FY = "FY"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LoopDim.{self.value}"

    def __str__(self) -> str:
        return self.value


#: All seven dimensions, in canonical order.
ALL_DIMS = (
    LoopDim.B,
    LoopDim.K,
    LoopDim.C,
    LoopDim.OX,
    LoopDim.OY,
    LoopDim.FX,
    LoopDim.FY,
)

#: Relevant (r) loops per operand — these multiply into the data footprint.
R_DIMS: Dict[Operand, FrozenSet[LoopDim]] = {
    Operand.W: frozenset({LoopDim.K, LoopDim.C, LoopDim.FX, LoopDim.FY}),
    Operand.I: frozenset({LoopDim.B, LoopDim.C}),
    Operand.O: frozenset({LoopDim.B, LoopDim.K, LoopDim.OX, LoopDim.OY}),
}

#: Partially-relevant (pr) loops per operand (input sliding window only).
PR_DIMS: Dict[Operand, FrozenSet[LoopDim]] = {
    Operand.W: frozenset(),
    Operand.I: frozenset({LoopDim.OX, LoopDim.OY, LoopDim.FX, LoopDim.FY}),
    Operand.O: frozenset(),
}

#: Irrelevant (ir) loops per operand — iterating these reuses the data.
IR_DIMS: Dict[Operand, FrozenSet[LoopDim]] = {
    op: frozenset(set(ALL_DIMS) - R_DIMS[op] - PR_DIMS[op]) for op in Operand
}


def relevance_of(operand: Operand, dim: LoopDim, pr_as_r: bool = False) -> str:
    """Classify ``dim`` for ``operand`` as ``"r"``, ``"ir"`` or ``"pr"``.

    Parameters
    ----------
    operand:
        The operand (W / I / O) whose point of view is taken.
    dim:
        The loop dimension to classify.
    pr_as_r:
        If true, partially-relevant dimensions are reported as ``"r"``.
        This is the right lens for reuse / scheduling questions: iterating a
        pr loop *does* change (part of) the data the operand needs, so for
        the keep-out-zone analysis of Table I it counts as relevant.

    Returns
    -------
    str
        ``"r"``, ``"ir"`` or ``"pr"``.
    """
    if dim in R_DIMS[operand]:
        return "r"
    if dim in PR_DIMS[operand]:
        return "r" if pr_as_r else "pr"
    return "ir"


def is_irrelevant(operand: Operand, dim: LoopDim) -> bool:
    """True when iterating ``dim`` fully reuses ``operand``'s data."""
    return dim in IR_DIMS[operand]
