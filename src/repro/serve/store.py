"""The server's persistent, content-addressed result store.

The in-process engine's cache dies with the process; the serve daemon's
does not. The store is a fingerprint-keyed index
``(accelerator_fp, options_fp, mapping_fp) -> RunRecord`` layered on the
PR 3 run ledger:

* **warm start** — on boot, any number of prior ledger snapshots
  (SQLite databases *or* committed JSONL exports such as
  ``benchmarks/baseline_ledger.jsonl``) are loaded through
  :func:`~repro.observability.ledger.load_snapshot` and indexed. A
  request whose fingerprints match a warm row is answered without
  running the kernel — a restarted daemon keeps yesterday's work.
* **write-through** — every evaluation the server runs is appended to
  its own :class:`~repro.observability.RunLedger` (when configured) *and*
  indexed live, so the next boot warm-starts from it.

Ledger rows store the full CC decomposition plus the per-unit-memory
``SS_comb`` map, which is exactly the slim-report surface the wire
protocol ships — so a warm hit reconstructs a
:class:`~repro.core.report.LatencyReport` that is bit-identical on every
gated metric to the one the kernel produced (floats round-trip exactly
through both SQLite and JSON). What a row does **not** keep is the
limiting-port attribution inside ``ss_comb`` keys, so warm reports carry
``("", "")`` there — outside the parity surface, and absent from slim
batch-core reports too.

Only latency results are stored; energy requests carry full access-count
anatomy and always go through a shard engine (which caches them for the
lifetime of the daemon).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.report import LatencyReport
from repro.core.step2 import ServedMemoryStall
from repro.observability.ledger import (
    RunRecord,
    load_snapshot,
    record_from_report,
)
from repro.workload.operand import Operand

#: The content address of one latency result.
StoreKey = Tuple[str, str, str]  # (accelerator_fp, options_fp, mapping_fp)


def record_to_report(record: RunRecord) -> LatencyReport:
    """Rebuild a slim latency report from one ledger row.

    Inverse of :func:`~repro.observability.ledger.record_from_report` up
    to the slim-report surface: all gated metrics and the per-unit-memory
    stall map, with empty DTL/port anatomy (like the batch core's slim
    reports, which the engine transparently re-materializes on demand).
    """
    stalls: List[ServedMemoryStall] = []
    for key, ss in sorted(record.ss_comb.items()):
        # Keys are formatted "W@LB/L0" by record_from_report.
        operand, __, rest = key.partition("@")
        memory, __, level = rest.rpartition("/L")
        stalls.append(
            ServedMemoryStall(
                operand=Operand(operand),
                level=int(level),
                memory=memory,
                ss=float(ss),
                limiting_port=("", ""),
            )
        )
    return LatencyReport(
        layer_name=record.layer,
        accelerator_name=record.accelerator,
        cc_ideal=float(record.cc_ideal),
        cc_spatial=int(record.cc_spatial),
        ss_overall=float(record.ss_overall),
        preload=float(record.preload),
        offload=float(record.offload),
        scenario=int(record.scenario),
        dtls=(),
        port_combinations={},
        served_stalls=tuple(stalls),
        integration=None,
    )


class ResultStore:
    """Fingerprint-indexed latency results, persisted via the run ledger.

    Thread-safe for the server's mixed access pattern (lookups on the
    event loop, warm-start on boot, puts from shard completions); the
    index itself is a plain dict guarded by one lock — lookups are a
    hash probe, never a kernel.
    """

    def __init__(self, ledger=None) -> None:
        self._ledger = ledger
        self._lock = threading.Lock()
        #: key -> (record, warm) — ``warm`` marks rows inherited from a
        #: prior ledger rather than evaluated this boot.
        self._index: Dict[StoreKey, Tuple[RunRecord, bool]] = {}
        self.warm_rows = 0      # indexable rows loaded at boot
        self.warm_hits = 0      # requests answered from a warm row
        self.store_hits = 0     # requests answered from a this-boot row

    def __len__(self) -> int:
        return len(self._index)

    # -- boot ----------------------------------------------------------- #

    def warm_start(self, paths: Iterable[str]) -> int:
        """Index every evaluation row of the given ledger snapshots.

        Accepts SQLite ledgers and JSONL exports alike (dispatch is by
        content); missing files are skipped silently so a default
        warm-start list can include not-yet-created paths. Rows without
        the full fingerprint triple (bench rows, interruption markers,
        pre-fingerprint records) are not indexable and are ignored.
        Later paths win on key collisions, like a cache overwrite.
        """
        loaded = 0
        for path in paths:
            try:
                records = load_snapshot(str(path))
            except (OSError, ValueError):
                continue
            for record in records:
                if record.kind != "evaluation":
                    continue
                if not (record.accelerator_fp and record.options_fp
                        and record.mapping_fp):
                    continue
                key = (record.accelerator_fp, record.options_fp, record.mapping_fp)
                with self._lock:
                    self._index[key] = (record, True)
                loaded += 1
        self.warm_rows = loaded
        return loaded

    # -- lookups / writes ----------------------------------------------- #

    def get(self, key: StoreKey) -> Optional[Tuple[LatencyReport, bool]]:
        """The stored report for ``key`` plus its warm-ness, or ``None``."""
        with self._lock:
            entry = self._index.get(key)
        if entry is None:
            return None
        record, warm = entry
        if warm:
            self.warm_hits += 1
        else:
            self.store_hits += 1
        return record_to_report(record), warm

    def put(
        self,
        key: StoreKey,
        report: LatencyReport,
        *,
        wall_time_s: float = 0.0,
    ) -> RunRecord:
        """Index an evaluated report and append it to the backing ledger."""
        accelerator_fp, options_fp, mapping_fp = key
        record = record_from_report(
            report,
            accelerator_fp=accelerator_fp,
            mapping_fp=mapping_fp,
            options_fp=options_fp,
            cache_hit=False,
            wall_time_s=wall_time_s,
        )
        with self._lock:
            self._index[key] = (record, False)
        if self._ledger is not None and self._ledger.enabled:
            self._ledger.append(record)
        return record


__all__ = ["ResultStore", "StoreKey", "record_to_report"]
