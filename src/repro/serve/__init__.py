"""Evaluation-as-a-service: the daemon, its wire protocol, and the client.

``repro-latency serve`` boots an :class:`EvaluationServer` (sharded
asyncio daemon with a persistent, warm-startable result store);
:func:`connect` / :class:`RemoteEngine` give any process a blocking
:class:`~repro.engine.Evaluator` backed by it. ``repro.api`` accepts
``engine="serve://host:port"`` / ``engine="unix:///path.sock"`` and
coerces to a :class:`RemoteEngine` transparently. See
``docs/SERVICE.md`` for the protocol spec and an ops runbook.
"""

from repro.serve.admin import AdminServer
from repro.serve.client import (
    RemoteEngine,
    RemoteEvaluationError,
    RemoteStats,
    connect,
    parse_url,
)
from repro.serve.protocol import PROTOCOL_MINOR, PROTOCOL_VERSION, ProtocolError
from repro.serve.server import (
    EvaluationServer,
    ServerConfig,
    ServerDraining,
    ServerStats,
)
from repro.serve.store import ResultStore, StoreKey, record_to_report

__all__ = [
    "AdminServer",
    "PROTOCOL_MINOR",
    "PROTOCOL_VERSION",
    "EvaluationServer",
    "ProtocolError",
    "RemoteEngine",
    "RemoteEvaluationError",
    "RemoteStats",
    "ResultStore",
    "ServerConfig",
    "ServerDraining",
    "ServerStats",
    "StoreKey",
    "connect",
    "parse_url",
    "record_to_report",
]
