"""The blocking client: a remote :class:`~repro.engine.Evaluator`.

:class:`RemoteEngine` speaks the :mod:`repro.serve.protocol` wire format
to an :class:`~repro.serve.server.EvaluationServer` and presents the
exact :class:`~repro.engine.Evaluator` surface of the in-process
:class:`~repro.engine.EvaluationEngine` — accelerator, options, cache,
stats, ``evaluate`` / ``evaluate_many`` / ``evaluate_energy`` /
``derive`` — so every consumer in the repo (``repro.api``, the temporal
mapper, the architecture search, ``analysis/network``) runs against a
daemon unchanged.

The handshake downloads the server's preset (accelerator + native
spatial unrolling) and model options, so ``connect(url)`` alone yields a
fully configured engine; ``derive()`` returns views that carry their own
accelerator/options payload per request, letting one connection serve an
entire architecture sweep against a single daemon.

Design notes:

* **Pipelining** — ``evaluate_many`` writes every request frame before
  reading any response, then collects replies by id; the server shards
  and coalesces, so responses arrive out of order and the id-keyed
  collection is what keeps the result list parallel to the input.
* **Local cache** — the client keeps its own fingerprint-keyed
  :class:`~repro.engine.EvaluationCache` (same key scheme as the
  in-process engine), so repeated design points never touch the socket;
  the mapper's whole-search memoization uses the same cache object.
* **Errors** — the server ships the exception *kind*;
  ``"MappingError"`` is re-raised as a real
  :class:`~repro.mapping.mapping.MappingError` (and becomes ``None`` in
  batch results, like the in-process engine); protocol-version refusals
  re-raise as :class:`~repro.serve.protocol.ProtocolError`; everything
  else surfaces as :class:`RemoteEvaluationError`.

Thread-safety: one transport serializes round trips under a lock.
Concurrent *coalescing* load (many clients hammering one fingerprint)
needs one connection per thread — connections are cheap; the server's
store and coalescing map are shared across all of them.
"""

from __future__ import annotations

import dataclasses
import itertools
import socket
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.model import LatencyModel
from repro.core.report import LatencyReport
from repro.core.step1 import ModelOptions
from repro.energy.energy_model import EnergyReport
from repro.engine import EvaluationCache
from repro.engine.evaluation import Evaluation
from repro.fingerprint import stable_fingerprint
from repro.hardware.accelerator import Accelerator
from repro.hardware.serde import accelerator_to_dict, preset_from_dict
from repro.mapping.mapping import Mapping, MappingError
from repro.mapping.serde import mapping_to_dict
from repro.observability.distributed import inject_trace, spans_from_wire
from repro.observability.stats import EngineStats
from repro.observability.tracer import current_tracer
from repro.serve import protocol
from repro.serve.protocol import (
    ErrorResponse,
    EvaluateRequest,
    HelloRequest,
    HelloResponse,
    ProtocolError,
    ShutdownRequest,
    StatsRequest,
)
from repro.workload.serde import layer_to_dict


class RemoteEvaluationError(RuntimeError):
    """The server answered with an error the client cannot translate.

    Carries the server-side exception kind in :attr:`kind` (e.g.
    ``"ServerDraining"``, ``"SerdeError"``) for programmatic dispatch.
    """

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


@dataclasses.dataclass(frozen=True)
class RemoteStats:
    """Client- and server-side counters of one remote engine, together.

    ``client`` is the local :class:`EngineStats` snapshot (LRU hits,
    round trips, phase seconds); ``server`` is the daemon's live
    ``stats_snapshot()`` (coalesced, warm hits, queue high-water, per
    PR 7). One round trip per call — built by
    :meth:`RemoteEngine.remote_stats`.
    """

    client: Dict[str, float]
    server: Dict[str, float]

    @property
    def coalesced(self) -> int:
        """Server-side requests attached to an in-flight evaluation."""
        return int(self.server.get("coalesced", 0))

    @property
    def warm_hits(self) -> int:
        """Server answers served from a prior boot's ledger rows."""
        return int(self.server.get("warm_hits", 0))

    @property
    def queue_highwater(self) -> int:
        """Deepest any server shard queue has been this boot."""
        return int(self.server.get("queue_highwater", 0))

    @property
    def client_cache_hits(self) -> int:
        """Answers served from the client's local LRU (no socket)."""
        return int(self.client.get("cache_hits", 0))

    def summary(self) -> str:
        """One line for dashboards: the counters an operator scans first."""
        server_evals = int(self.server.get("evaluations", 0))
        return (
            f"remote: {server_evals} server eval(s), "
            f"{self.coalesced} coalesced, {self.warm_hits} warm, "
            f"queue hw {self.queue_highwater}, "
            f"{self.client_cache_hits} client LRU hit(s)"
        )


def parse_url(url: str) -> Tuple[str, ...]:
    """Split an engine URL into a transport address.

    ``serve://host:port`` → ``("tcp", host, port)``;
    ``unix:///path/to.sock`` → ``("unix", path)``.
    """
    if url.startswith("unix://"):
        path = url[len("unix://"):]
        if not path:
            raise ValueError(f"empty socket path in engine URL {url!r}")
        return ("unix", path)
    if url.startswith("serve://"):
        rest = url[len("serve://"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise ValueError(
                f"bad engine URL {url!r}: expected serve://host:port"
            )
        return ("tcp", host, int(port))
    raise ValueError(
        f"unrecognized engine URL {url!r}: expected serve://host:port "
        "or unix:///path/to.sock"
    )


class _Transport:
    """One socket speaking line-framed protocol messages, id-matched.

    A single lock is held across each full round trip, so one transport
    serializes its callers; responses inside a pipelined burst are
    matched by id (the server replies out of order).
    """

    def __init__(self, address: Tuple, timeout: Optional[float] = None) -> None:
        if address[0] == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(address[1])
        else:
            self._sock = socket.create_connection(
                (address[1], address[2]), timeout=timeout
            )
        self._sock.settimeout(None)  # round trips block until answered
        self._reader = self._sock.makefile("rb")
        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._pending: Dict[int, object] = {}
        self._closed = False

    def next_id(self) -> int:
        return next(self._ids)

    def _read_frame(self):
        line = self._reader.readline()
        if not line:
            raise RemoteEvaluationError(
                "ConnectionClosed", "server closed the connection"
            )
        return protocol.decode(line)

    def request(self, message) -> object:
        """One round trip; stray responses are parked for their waiters."""
        with self._lock:
            self._sock.sendall(protocol.encode(message))
            while True:
                parked = self._pending.pop(message.id, None)
                if parked is not None:
                    return parked
                response = self._read_frame()
                if getattr(response, "id", None) == message.id:
                    return response
                self._pending[response.id] = response

    def request_many(self, messages: List) -> List[object]:
        """Pipeline a burst: write every frame, then collect by id."""
        with self._lock:
            payload = b"".join(protocol.encode(m) for m in messages)
            self._sock.sendall(payload)
            wanted = {m.id for m in messages}
            got: Dict[int, object] = {}
            for message_id in list(wanted):
                parked = self._pending.pop(message_id, None)
                if parked is not None:
                    got[message_id] = parked
            while len(got) < len(wanted):
                response = self._read_frame()
                response_id = getattr(response, "id", None)
                if response_id in wanted:
                    got[response_id] = response
                else:
                    self._pending[response_id] = response
            return [got[m.id] for m in messages]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._reader.close()
        except OSError:  # pragma: no cover
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass


def _raise_remote(error: ErrorResponse) -> None:
    """Translate an error frame into the matching local exception."""
    if error.error == "MappingError":
        raise MappingError(error.message)
    if error.error == "ProtocolError":
        raise ProtocolError(error.message)
    raise RemoteEvaluationError(error.error, error.message)


class RemoteEngine:
    """A server-backed engine with the in-process engine's exact surface.

    Build one with :func:`connect` (or ``repro.evaluate(...,
    engine="serve://host:port")``, which does). The constructor performs
    the handshake and adopts the server's machine and options;
    :meth:`derive` returns views onto other machines that ship their
    accelerator per request over the same connection.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: Optional[float] = None,
        use_cache: bool = True,
        cache: Optional[EvaluationCache] = None,
        stats: Optional[EngineStats] = None,
    ) -> None:
        self.url = url
        self._transport = _Transport(parse_url(url), timeout=timeout)
        self.use_cache = use_cache
        self.cache = cache if cache is not None else EvaluationCache()
        self.stats = stats if stats is not None else EngineStats()
        hello = self._transport.request(
            HelloRequest(id=self._transport.next_id())
        )
        if isinstance(hello, ErrorResponse):
            _raise_remote(hello)
        if not isinstance(hello, HelloResponse):
            raise ProtocolError(
                f"handshake expected hello_ok, got {type(hello).__name__}"
            )
        self.server_name = hello.server
        self.server_protocol = hello.protocol
        self.admin_url: Optional[str] = hello.admin
        preset = preset_from_dict(hello.preset)
        self.accelerator: Accelerator = preset.accelerator
        self.spatial_unrolling = dict(
            getattr(preset, "spatial_unrolling", None) or {}
        )
        self.options: ModelOptions = protocol.options_from_dict(hello.options)
        # None payloads mean "the server's own machine" on the wire —
        # the common case, and cheaper for the server to resolve.
        self._accel_payload: Optional[dict] = None
        self._options_payload: Optional[dict] = None
        self._accel_fp: Optional[str] = None
        self._options_fp: Optional[str] = None
        self._model: Optional[LatencyModel] = None

    # ------------------------------------------------------------------ #
    # Evaluator surface: identity
    # ------------------------------------------------------------------ #

    @property
    def accelerator_fingerprint(self) -> str:
        """Fingerprint of the engine's accelerator (serde-stable, so it
        matches the fingerprint the server computes for the same machine)."""
        if self._accel_fp is None:
            self._accel_fp = self.accelerator.fingerprint()
        return self._accel_fp

    @property
    def options_fingerprint(self) -> str:
        if self._options_fp is None:
            self._options_fp = stable_fingerprint(self.options)
        return self._options_fp

    @property
    def parallel(self) -> bool:
        """Remote batches are sharded server-side, not forked client-side."""
        return False

    def derive(
        self,
        accelerator: Optional[Accelerator] = None,
        options: Optional[ModelOptions] = None,
    ) -> "RemoteEngine":
        """A view for another machine/options over the same connection.

        Mirrors :meth:`EvaluationEngine.derive`: the view shares this
        engine's transport, cache and stats, and ships its accelerator
        and options with each request (fingerprinted cache keys keep the
        machines' entries apart). The native spatial unrolling travels
        only while the accelerator is unchanged.
        """
        view = object.__new__(RemoteEngine)
        view.url = self.url
        view._transport = self._transport
        view.use_cache = self.use_cache
        view.cache = self.cache
        view.stats = self.stats
        view.server_name = self.server_name
        view.server_protocol = self.server_protocol
        view.admin_url = self.admin_url
        same_machine = accelerator is None or accelerator is self.accelerator
        view.accelerator = self.accelerator if same_machine else accelerator
        view.spatial_unrolling = dict(self.spatial_unrolling) if same_machine else {}
        view.options = options if options is not None else self.options
        view._accel_payload = (
            self._accel_payload if same_machine
            else accelerator_to_dict(accelerator)
        )
        view._options_payload = (
            self._options_payload if options is None
            else protocol.options_to_dict(options)
        )
        view._accel_fp = self._accel_fp if same_machine else None
        view._options_fp = self._options_fp if options is None else None
        view._model = None
        return view

    # ------------------------------------------------------------------ #
    # Evaluator surface: evaluation
    # ------------------------------------------------------------------ #

    def check(self, mapping: Mapping) -> None:
        """Raise :class:`MappingError` if ``mapping`` is infeasible here.

        Validation is pure model arithmetic, so it runs locally — no
        round trip for the mapper's feasibility probes.
        """
        if self._model is None:
            self._model = LatencyModel(self.accelerator, self.options)
        self._model.check(mapping)

    def _request_for(
        self, mapping: Mapping, validate: bool, with_energy: bool
    ) -> EvaluateRequest:
        # inject_trace() is None (no allocation, no wire field) unless a
        # tracer is ambient — call it inside the open transport span so
        # the propagated span_id names that span.
        return EvaluateRequest(
            id=self._transport.next_id(),
            layer=layer_to_dict(mapping.layer),
            mapping=mapping_to_dict(mapping),
            accelerator=self._accel_payload,
            options=self._options_payload,
            validate=validate,
            with_energy=with_energy,
            trace=inject_trace(),
        )

    def _round_trip(self, phase: str, mapping: Mapping, validate: bool,
                    with_energy: bool):
        """One evaluate round trip, wrapped in a client span when tracing.

        Under an ambient tracer this opens ``remote.evaluate``, builds
        the request *inside* it (so the injected context names that
        span), and grafts the server's shipped span subtree back under
        it — yielding one stitched cross-process tree. With the no-op
        tracer the path is byte-identical to before tracing existed.
        """
        tracer = current_tracer()
        if not tracer.enabled:
            with self.stats.phase(phase):
                response = self._transport.request(
                    self._request_for(mapping, validate, with_energy)
                )
            if isinstance(response, ErrorResponse):
                _raise_remote(response)
            return response
        with tracer.span("remote.evaluate", url=self.url, phase=phase):
            with self.stats.phase(phase):
                response = self._transport.request(
                    self._request_for(mapping, validate, with_energy)
                )
            if isinstance(response, ErrorResponse):
                _raise_remote(response)
            if response.spans:
                tracer.merge(spans_from_wire(response.spans))
        return response

    def _latency_key(self, mapping: Mapping) -> Tuple:
        return (
            "latency",
            self.accelerator_fingerprint,
            self.options_fingerprint,
            mapping.fingerprint(),
        )

    def _energy_key(self, mapping: Mapping) -> Tuple:
        return ("energy", self.accelerator_fingerprint, mapping.fingerprint())

    def evaluate(self, mapping: Mapping, validate: bool = True) -> LatencyReport:
        """Latency of ``mapping``, served from the local cache or the server.

        Cache hits return the slim wire-form report (all gated metrics
        plus the stall anatomy; no DTL objects — same as batch-core slim
        reports).
        """
        if self.use_cache:
            key = self._latency_key(mapping)
            report = self.cache.get(key)
            if report is not None:
                self.stats.cache_hits += 1
                return report
            self.stats.cache_misses += 1
        response = self._round_trip("evaluate", mapping, validate,
                                    with_energy=False)
        self.stats.evaluations += 1
        report = protocol.report_from_dict(response.report)
        if self.use_cache:
            self.cache.put(key, report)
        return report

    def evaluate_energy(self, mapping: Mapping) -> EnergyReport:
        """Dynamic energy of ``mapping`` (the server runs both models)."""
        if self.use_cache:
            key = self._energy_key(mapping)
            energy = self.cache.get(key)
            if energy is not None:
                self.stats.cache_hits += 1
                return energy
            self.stats.cache_misses += 1
        response = self._round_trip("energy", mapping, validate=False,
                                    with_energy=True)
        self.stats.energy_evaluations += 1
        energy = protocol.energy_from_dict(response.energy)
        if self.use_cache:
            self.cache.put(key, energy)
            self.cache.put(
                self._latency_key(mapping),
                protocol.report_from_dict(response.report),
            )
        return energy

    def evaluate_many(
        self,
        mappings: Iterable[Mapping],
        validate: bool = False,
        with_energy: bool = False,
    ) -> List[Optional[Evaluation]]:
        """Evaluate a batch in one pipelined burst, preserving order.

        Exactly the in-process contract: entry ``i`` is an
        :class:`~repro.engine.evaluation.Evaluation`, or ``None`` when
        mapping ``i`` was infeasible (:class:`MappingError` server-side).
        Local cache hits never touch the socket; the rest is written as
        one burst and collected out of order by request id.
        """
        mappings = list(mappings)
        self.stats.batches += 1
        tracer = current_tracer()
        if not tracer.enabled:
            return self._evaluate_burst(mappings, validate, with_energy, tracer)
        with tracer.span("remote.batch", url=self.url,
                         mappings=float(len(mappings))):
            return self._evaluate_burst(mappings, validate, with_energy, tracer)

    def _evaluate_burst(
        self,
        mappings: List[Mapping],
        validate: bool,
        with_energy: bool,
        tracer,
    ) -> List[Optional[Evaluation]]:
        results: List[Optional[Evaluation]] = [None] * len(mappings)
        pending: List[Tuple[int, EvaluateRequest]] = []
        for i, mapping in enumerate(mappings):
            if self.use_cache and not with_energy:
                report = self.cache.get(self._latency_key(mapping))
                if report is not None:
                    self.stats.cache_hits += 1
                    results[i] = Evaluation(mapping, report, None)
                    continue
                self.stats.cache_misses += 1
            pending.append((i, self._request_for(mapping, validate, with_energy)))
        if not pending:
            return results
        with self.stats.phase("batch"):
            responses = self._transport.request_many([r for _, r in pending])
        for (i, _), response in zip(pending, responses):
            if isinstance(response, ErrorResponse):
                if response.error == "MappingError":
                    self.stats.errors += 1
                    continue  # parallel-list contract: infeasible -> None
                _raise_remote(response)
            self.stats.evaluations += 1
            if tracer.enabled and response.spans:
                # merged in request order while remote.batch is open
                tracer.merge(spans_from_wire(response.spans))
            report = protocol.report_from_dict(response.report)
            energy = (
                protocol.energy_from_dict(response.energy)
                if response.energy is not None else None
            )
            if self.use_cache:
                self.cache.put(self._latency_key(mappings[i]), report)
                if energy is not None:
                    self.cache.put(self._energy_key(mappings[i]), energy)
            results[i] = Evaluation(mappings[i], report, energy)
        return results

    # ------------------------------------------------------------------ #
    # Service controls
    # ------------------------------------------------------------------ #

    def server_stats(self) -> Dict[str, float]:
        """The daemon's live counters (coalesced, warm hits, queue depth...)."""
        response = self._transport.request(
            StatsRequest(id=self._transport.next_id())
        )
        if isinstance(response, ErrorResponse):
            _raise_remote(response)
        return dict(response.stats)

    def remote_stats(self) -> RemoteStats:
        """Both sides of the connection in one snapshot.

        (``stats`` is already the client-local :class:`EngineStats`
        attribute every Evaluator carries, hence the distinct name.)
        One stats round trip per call.
        """
        return RemoteStats(
            client=self.stats.snapshot(), server=self.server_stats()
        )

    def shutdown(self) -> None:
        """Ask the daemon to drain and exit (acknowledged before draining)."""
        response = self._transport.request(
            ShutdownRequest(id=self._transport.next_id())
        )
        if isinstance(response, ErrorResponse):  # pragma: no cover
            _raise_remote(response)

    def close(self) -> None:
        """Close this engine's connection (shared with any derived views)."""
        self._transport.close()

    def __enter__(self) -> "RemoteEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"RemoteEngine({self.url!r}, accelerator="
            f"{getattr(self.accelerator, 'name', '?')!r})"
        )


def connect(
    url: str,
    *,
    timeout: Optional[float] = None,
    use_cache: bool = True,
) -> RemoteEngine:
    """Open a connection to an evaluation daemon and hand back the engine."""
    return RemoteEngine(url, timeout=timeout, use_cache=use_cache)


__all__ = [
    "RemoteEngine",
    "RemoteEvaluationError",
    "RemoteStats",
    "connect",
    "parse_url",
]
