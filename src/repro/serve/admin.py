"""The daemon's HTTP admin surface: ``/metrics``, ``/healthz``,
``/readyz``, ``/statusz`` — stdlib ``http.server`` in one thread.

``repro-latency serve --admin-port N`` (0 = ephemeral) binds a tiny
HTTP listener next to the protocol socket so the daemon is observable
from the outside with nothing but ``curl`` or a Prometheus scraper:

* ``GET /metrics`` — Prometheus text (version 0.0.4) from the server's
  :class:`~repro.observability.metrics.MetricsRegistry`: per-shard
  ``repro_serve_request_seconds`` / ``repro_serve_queue_wait_seconds``
  histograms, provenance-labeled response counters, queue depth and
  high-water gauges, plus every ``stats_snapshot()`` counter as a
  ``repro_serve_*`` gauge refreshed at scrape time.
* ``GET /healthz`` — liveness: 200 ``ok`` while serving, 503
  ``draining`` once a drain started.
* ``GET /readyz`` — readiness: identical today (the daemon binds its
  socket only after the shards are up), split out so a load balancer
  can distinguish the two when warm-up phases appear.
* ``GET /statusz`` — one JSON document: identity, uptime, protocol
  revision, shard table (queued / high-water / engines), store
  occupancy, the last-N slow requests, and flight-recorder state.
  ``/statusz?dump=1`` returns the flight ring itself as JSONL (and
  writes it to the configured ``--flight-out`` path, if any).

The handler only reads counters and GIL-atomic containers, so it never
touches the asyncio loop — a scrape can't slow a kernel down, and a
wedged event loop doesn't take the diagnostics surface with it (that is
the point: ``/statusz`` must work exactly when the daemon doesn't).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

__all__ = ["AdminServer"]

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class AdminServer:
    """The admin listener: a daemon-thread ``ThreadingHTTPServer``.

    Constructed (and closed) by the
    :class:`~repro.serve.server.EvaluationServer` when ``admin_port``
    is configured; ``port=0`` binds an ephemeral port, reported by
    :attr:`url` and in the ready file / hello response.
    """

    def __init__(self, server, host: str = "127.0.0.1", port: int = 0) -> None:
        self.server = server
        handler = _make_handler(server)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        self.port = self._httpd.server_address[1]
        self._thread: threading.Thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-admin",
            daemon=True,
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self._thread.start()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)


def _make_handler(server):
    """Build the request-handler class closed over one evaluation server."""

    class AdminHandler(BaseHTTPRequestHandler):
        # One admin surface per daemon; tie the HTTP server name to it.
        server_version = "repro-serve-admin"

        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # the daemon's own telemetry is the log

        def do_GET(self):  # noqa: N802 - stdlib casing
            parsed = urlparse(self.path)
            route = parsed.path.rstrip("/") or "/"
            if route == "/metrics":
                self._reply(
                    200, server.render_metrics(), PROMETHEUS_CONTENT_TYPE
                )
            elif route == "/healthz":
                if server._draining:
                    self._reply(503, "draining\n", "text/plain")
                else:
                    self._reply(200, "ok\n", "text/plain")
            elif route == "/readyz":
                ready = server.started_ts > 0 and not server._draining
                self._reply(
                    200 if ready else 503,
                    "ready\n" if ready else "not ready\n",
                    "text/plain",
                )
            elif route == "/statusz":
                query = parse_qs(parsed.query)
                if query.get("dump", ["0"])[0] not in ("", "0", "false"):
                    body = server.flight.to_jsonl()
                    if server.config.flight_path:
                        server.flight.dump(server.config.flight_path)
                    self._reply(200, body, "application/jsonl")
                else:
                    self._reply(
                        200,
                        json.dumps(server.status_payload(), indent=2,
                                   sort_keys=True, default=str) + "\n",
                        "application/json",
                    )
            else:
                self._reply(404, "not found\n", "text/plain")

        def _reply(self, status: int, body: str, content_type: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            try:
                self.wfile.write(payload)
            except (ConnectionError, BrokenPipeError):  # scraper went away
                pass

    return AdminHandler
