"""The line-framed JSON wire protocol of the evaluation service.

One message per ``\\n``-terminated line, each a JSON object carrying:

* ``"v"`` — the protocol schema version. A peer speaking a *newer*
  version is rejected with a clear :class:`ProtocolError` (exactly like
  the run-ledger schema gate); older versions within the same major
  surface are tolerated field-by-field.
* ``"type"`` — the message type (one of the dataclasses below).
* ``"id"`` — the request id; the matching response echoes it, so
  responses may complete out of order (the server coalesces and shards,
  so they do).

The payload serde deliberately reuses the repo's canonical schemas —
:mod:`repro.hardware.serde` for accelerators/presets,
:mod:`repro.workload.serde` / :mod:`repro.mapping.serde` for layers and
mappings — so a design point's wire form is byte-identical to its corpus
and config form, and :func:`~repro.fingerprint.stable_fingerprint`
survives the round trip (that invariant is what makes the server's
content-addressed store correct). Latency reports travel *slim*: all
Fig.-1 numbers plus the per-unit-memory stall anatomy, but no DTL
objects — the same shape the vectorized batch core produces, and
numerically exact because Python's JSON float serde is repr-based.

This module is shared verbatim by the server (:mod:`repro.serve.server`),
the blocking client (:mod:`repro.serve.client`) and the CLI; it imports
neither, so the protocol surface can be vendored by other clients.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.core.report import LatencyReport
from repro.core.step1 import ModelOptions
from repro.core.step2 import ServedMemoryStall
from repro.energy.access_counts import AccessCounts
from repro.energy.energy_model import EnergyReport
from repro.workload.operand import Operand

#: Version of the message schema this build speaks. Bump on any change
#: that an older peer could misread; peers reject anything newer.
PROTOCOL_VERSION = 1

#: Minor revision within the major schema: bumped for purely additive,
#: optional fields (``trace`` / ``spans`` / ``admin``) that an older
#: peer can safely drop. Travels as a separate ``"minor"`` key so the
#: ``"v"`` gate above keeps its exact v1 semantics — an old decoder
#: discards ``"minor"`` as an unknown field, a new decoder tolerates
#: its absence.
PROTOCOL_MINOR = 1


class ProtocolError(ValueError):
    """Malformed frame, unknown message type, or newer protocol version."""


# --------------------------------------------------------------------- #
# Payload serde: options / reports
# --------------------------------------------------------------------- #

def options_to_dict(options: ModelOptions) -> Dict[str, Any]:
    """Serialize model options (a flat dataclass of scalars)."""
    return dataclasses.asdict(options)


def options_from_dict(data: Dict[str, Any]) -> ModelOptions:
    """Inverse of :func:`options_to_dict`; unknown keys are rejected."""
    known = {f.name for f in dataclasses.fields(ModelOptions)}
    extra = set(data) - known
    if extra:
        raise ProtocolError(f"unknown ModelOptions field(s): {sorted(extra)}")
    return ModelOptions(**data)


def report_to_dict(report: LatencyReport) -> Dict[str, Any]:
    """Serialize a latency report in slim form (numbers + stall anatomy).

    DTL objects and port combinations do not travel; parity on the wire
    is defined by the gated metrics (exactly the fields the ledger and
    ``batch_scalar_parity`` compare), all of which round-trip exactly.
    """
    return {
        "layer_name": report.layer_name,
        "accelerator_name": report.accelerator_name,
        "cc_ideal": report.cc_ideal,
        "cc_spatial": report.cc_spatial,
        "ss_overall": report.ss_overall,
        "preload": report.preload,
        "offload": report.offload,
        "scenario": report.scenario,
        "served_stalls": [
            [s.operand.value, s.level, s.memory, s.ss,
             s.limiting_port[0], s.limiting_port[1]]
            for s in report.served_stalls
        ],
    }


def report_from_dict(data: Dict[str, Any]) -> LatencyReport:
    """Inverse of :func:`report_to_dict` (a slim report, like the batch core's)."""
    return LatencyReport(
        layer_name=str(data["layer_name"]),
        accelerator_name=str(data["accelerator_name"]),
        cc_ideal=float(data["cc_ideal"]),
        cc_spatial=int(data["cc_spatial"]),
        ss_overall=float(data["ss_overall"]),
        preload=float(data["preload"]),
        offload=float(data["offload"]),
        scenario=int(data["scenario"]),
        dtls=(),
        port_combinations={},
        served_stalls=tuple(
            ServedMemoryStall(
                operand=Operand(op),
                level=int(level),
                memory=str(memory),
                ss=float(ss),
                limiting_port=(str(port_mem), str(port_name)),
            )
            for op, level, memory, ss, port_mem, port_name
            in data.get("served_stalls", [])
        ),
        integration=None,
    )


def energy_to_dict(energy: EnergyReport) -> Dict[str, Any]:
    """Serialize an energy report (tuple-keyed access counts flattened)."""
    counts = energy.counts
    return {
        "accelerator_name": energy.accelerator_name,
        "layer_name": energy.layer_name,
        "mac_pj": energy.mac_pj,
        "memory_pj": dict(energy.memory_pj),
        "counts": {
            "reads_bits": [
                [m, op.value, bits] for (m, op), bits in sorted(
                    counts.reads_bits.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
                )
            ],
            "writes_bits": [
                [m, op.value, bits] for (m, op), bits in sorted(
                    counts.writes_bits.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
                )
            ],
            "link_bits": dict(counts.link_bits),
            "mac_ops": counts.mac_ops,
        },
    }


def energy_from_dict(data: Dict[str, Any]) -> EnergyReport:
    """Inverse of :func:`energy_to_dict`."""
    counts = data["counts"]
    return EnergyReport(
        accelerator_name=str(data["accelerator_name"]),
        layer_name=str(data["layer_name"]),
        counts=AccessCounts(
            reads_bits={
                (str(m), Operand(op)): float(bits)
                for m, op, bits in counts.get("reads_bits", [])
            },
            writes_bits={
                (str(m), Operand(op)): float(bits)
                for m, op, bits in counts.get("writes_bits", [])
            },
            link_bits={str(m): float(b) for m, b in counts.get("link_bits", {}).items()},
            mac_ops=int(counts.get("mac_ops", 0)),
        ),
        memory_pj={str(m): float(pj) for m, pj in data.get("memory_pj", {}).items()},
        mac_pj=float(data["mac_pj"]),
    )


# --------------------------------------------------------------------- #
# Messages
# --------------------------------------------------------------------- #

@dataclasses.dataclass(frozen=True)
class HelloRequest:
    """Handshake: the client announces itself and asks for the server's machine."""

    id: int
    client: str = "repro"


@dataclasses.dataclass(frozen=True)
class HelloResponse:
    """Handshake reply: protocol version plus the server's preset/options.

    ``preset`` is a :func:`repro.hardware.serde.preset_to_dict` payload
    (accelerator + native spatial unrolling) — everything a client needs
    to run a mapper search against the served machine without any local
    configuration. ``admin`` is the daemon's HTTP admin URL when an
    admin listener is up (v1.1, optional — absent from old servers).
    """

    id: int
    protocol: int
    server: str
    preset: Dict[str, Any]
    options: Dict[str, Any]
    admin: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class EvaluateRequest:
    """Evaluate one mapping; the payload is self-contained.

    ``accelerator``/``options`` may be omitted (``None``) to evaluate on
    the server's own machine — the common case, and cheaper to parse.

    ``trace`` (v1.1, optional) carries the caller's trace context —
    see :func:`repro.observability.distributed.inject_trace`. Both
    sides tolerate its absence and ignore malformed payloads.
    """

    id: int
    layer: Dict[str, Any]
    mapping: Dict[str, Any]
    accelerator: Optional[Dict[str, Any]] = None
    options: Optional[Dict[str, Any]] = None
    validate: bool = True
    with_energy: bool = False
    trace: Optional[Dict[str, Any]] = None


@dataclasses.dataclass(frozen=True)
class EvaluateResponse:
    """A successful evaluation: the slim report (+ energy), with provenance.

    ``source`` says how the answer was produced: ``"evaluated"`` (kernel
    ran), ``"store"`` (hit on a result stored this boot), ``"warm"``
    (hit on a row warm-started from a prior ledger), or ``"coalesced"``
    (attached to another request's in-flight evaluation).

    ``spans`` (v1.1, optional) is the server-side span subtree for this
    request — present only when the request carried a sampled ``trace``
    context; see :func:`repro.observability.distributed.spans_to_wire`.
    """

    id: int
    report: Dict[str, Any]
    energy: Optional[Dict[str, Any]] = None
    source: str = "evaluated"
    spans: Optional[List[Dict[str, Any]]] = None


@dataclasses.dataclass(frozen=True)
class StatsRequest:
    """Ask for the server's counters (health/test surface)."""

    id: int


@dataclasses.dataclass(frozen=True)
class StatsResponse:
    """Server counters: requests, evaluations, coalesced, warm hits, ..."""

    id: int
    stats: Dict[str, float]


@dataclasses.dataclass(frozen=True)
class ShutdownRequest:
    """Ask the server to drain and exit (the programmatic SIGINT)."""

    id: int


@dataclasses.dataclass(frozen=True)
class ShutdownResponse:
    """Acknowledges a shutdown request; the server drains after replying."""

    id: int


@dataclasses.dataclass(frozen=True)
class ErrorResponse:
    """Any failed request: the exception class name and its message.

    ``error`` is the *kind* a client dispatches on (``"MappingError"``,
    ``"ProtocolError"``, ``"ServerDraining"``, ``"SerdeError"``, ...);
    ``message`` is human-readable.
    """

    id: int
    error: str
    message: str


_TYPES: Dict[str, Type] = {
    "hello": HelloRequest,
    "hello_ok": HelloResponse,
    "evaluate": EvaluateRequest,
    "evaluate_ok": EvaluateResponse,
    "stats": StatsRequest,
    "stats_ok": StatsResponse,
    "shutdown": ShutdownRequest,
    "shutdown_ok": ShutdownResponse,
    "error": ErrorResponse,
}
_TYPE_OF = {cls: name for name, cls in _TYPES.items()}

#: Message classes a server accepts (everything else is a client-bound
#: response; receiving one as a request is a protocol error).
REQUEST_TYPES: Tuple[Type, ...] = (
    HelloRequest, EvaluateRequest, StatsRequest, ShutdownRequest
)


def encode(message) -> bytes:
    """One wire frame: the message as a ``\\n``-terminated JSON line."""
    cls = type(message)
    name = _TYPE_OF.get(cls)
    if name is None:
        raise ProtocolError(f"not a protocol message: {cls.__name__}")
    data = {"v": PROTOCOL_VERSION, "minor": PROTOCOL_MINOR, "type": name}
    # None-valued fields stay off the wire: every Optional field of every
    # message defaults to None, so decode restores them, frames shrink,
    # and additive fields (trace/spans/admin) are genuinely *absent* —
    # not null — when unused, which is what forward-compat tests pin.
    data.update({
        k: v for k, v in dataclasses.asdict(message).items() if v is not None
    })
    return (json.dumps(data, sort_keys=True) + "\n").encode("utf-8")


def decode(line) -> Any:
    """Parse one frame into its message dataclass.

    Raises :class:`ProtocolError` on malformed JSON, a missing/unknown
    type, or a frame stamped with a *newer* protocol version — the
    version gate every peer applies before touching the payload.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(data).__name__}")
    version = data.pop("v", None)
    data.pop("minor", None)  # additive revision — informational only
    if version is None:
        raise ProtocolError("frame has no protocol version field 'v'")
    if int(version) > PROTOCOL_VERSION:
        raise ProtocolError(
            f"peer speaks protocol v{version}; this build speaks at most "
            f"v{PROTOCOL_VERSION} — upgrade this side or downgrade the peer"
        )
    type_name = data.pop("type", None)
    cls = _TYPES.get(type_name)
    if cls is None:
        raise ProtocolError(f"unknown message type {type_name!r}")
    known = {f.name for f in dataclasses.fields(cls)}
    kwargs = {k: v for k, v in data.items() if k in known}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ProtocolError(f"bad {type_name!r} frame: {exc}") from exc


__all__ = [
    "PROTOCOL_MINOR",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REQUEST_TYPES",
    "ErrorResponse",
    "EvaluateRequest",
    "EvaluateResponse",
    "HelloRequest",
    "HelloResponse",
    "ShutdownRequest",
    "ShutdownResponse",
    "StatsRequest",
    "StatsResponse",
    "decode",
    "encode",
    "energy_from_dict",
    "energy_to_dict",
    "options_from_dict",
    "options_to_dict",
    "report_from_dict",
    "report_to_dict",
]
