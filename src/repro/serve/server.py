"""The asyncio evaluation daemon behind ``repro-latency serve``.

One process owns a pool of :class:`~repro.engine.EvaluationEngine`
workers and serves the line-framed JSON protocol of
:mod:`repro.serve.protocol` over TCP or a Unix socket. The moving parts:

* **Sharding** — every request is routed by its mapping fingerprint
  (``int(fp, 16) % shards``) to one shard: a bounded
  :class:`asyncio.Queue` drained by a dedicated single-thread executor.
  Identical design points always land on the same shard, so each
  shard's engine cache stays hot for its slice of the space and the
  kernel never runs concurrently for one fingerprint.
* **Backpressure** — the per-shard queues are bounded; when a shard is
  ``queue_depth`` deep, ``await queue.put`` suspends the connection
  handler, which stops reading that client's socket — TCP flow control
  does the rest. No unbounded buffering anywhere.
* **Coalescing** — requests carrying fingerprints already in flight
  attach to the owner's future instead of enqueuing a duplicate; the
  ``coalesced`` counter in the stats surface counts them (asserted by
  the integration tests: N concurrent duplicates run the kernel once).
* **Persistent store** — answers come, in order of preference, from the
  :class:`~repro.serve.store.ResultStore` (warm rows from prior
  ledgers, or rows evaluated this boot), from an in-flight future, or
  from the kernel; every kernel result is written through to the
  configured ledger so the *next* boot warm-starts from it.
* **Health plane** — when a progress emitter is configured the daemon
  opens one ``flow="serve"`` run and advances it per evaluation with
  per-shard worker ids and periodic cache stats; ``repro-latency top
  EVENTS --follow`` watches a live server exactly like any other flow.
* **Drain** — SIGINT/SIGTERM (or a ``shutdown`` frame) stops intake,
  fails queued-but-unstarted requests with a clean ``ServerDraining``
  error, lets in-flight kernels finish, writes one
  ``kind="interrupted"`` ledger row recording how far the daemon got,
  and closes the progress run.

The daemon is single-loop asyncio; kernels run in shard threads via
``run_in_executor``, which deliberately does *not* propagate context
variables — shard engines therefore never double-write the ambient
ledger, and all persistence goes through the store explicitly.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import signal
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.step1 import ModelOptions
from repro.engine import EvaluationCache, EvaluationEngine
from repro.hardware.accelerator import Accelerator
from repro.hardware.presets import Preset
from repro.hardware.serde import (
    SerdeError,
    accelerator_from_dict,
    preset_to_dict,
)
from repro.mapping.mapping import Mapping
from repro.mapping.serde import mapping_from_dict
from repro.observability.ledger import record_interruption
from repro.observability.stats import EngineStats
from repro.serve import protocol
from repro.serve.protocol import (
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    HelloRequest,
    HelloResponse,
    ProtocolError,
    ShutdownRequest,
    ShutdownResponse,
    StatsRequest,
    StatsResponse,
)
from repro.serve.store import ResultStore
from repro.workload.serde import layer_from_dict


class ServerDraining(RuntimeError):
    """The daemon is shutting down; the request was not evaluated."""


@dataclasses.dataclass
class ServerConfig:
    """Everything a daemon needs; the CLI builds one from flags.

    Exactly one of ``socket_path`` (Unix socket) or ``host``/``port``
    (TCP; ``port=0`` binds an ephemeral port, reported by
    :attr:`EvaluationServer.url`) selects the transport.
    ``pre_evaluate_hook`` is a test seam: called in the shard thread
    with the work item just before the kernel, it lets integration
    tests hold an evaluation open deterministically (to assert
    coalescing) without sleeping.
    """

    preset: Preset
    options: ModelOptions = dataclasses.field(default_factory=ModelOptions)
    host: str = "127.0.0.1"
    port: int = 0
    socket_path: Optional[str] = None
    shards: int = 2
    queue_depth: int = 128
    name: str = "repro-serve"
    ledger: Any = None                      # RunLedger (or None)
    warm_start: Tuple[str, ...] = ()        # prior ledger snapshots to index
    emitter: Any = None                     # ProgressEmitter (or None)
    cache_size: int = 65536                 # per-shard engine cache capacity
    pre_evaluate_hook: Optional[Callable] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")


@dataclasses.dataclass
class ServerStats:
    """The daemon's own counters (engine counters ride along in snapshots)."""

    connections: int = 0
    requests: int = 0          # evaluate requests received
    evaluations: int = 0       # kernels actually run
    energy_evaluations: int = 0
    coalesced: int = 0         # requests attached to an in-flight evaluation
    warm_hits: int = 0         # answered from a prior-boot ledger row
    store_hits: int = 0        # answered from a this-boot result
    errors: int = 0            # requests answered with an error frame
    protocol_errors: int = 0
    drained: int = 0           # requests failed by a drain

    def snapshot(self) -> Dict[str, float]:
        return {
            field.name: float(getattr(self, field.name))
            for field in dataclasses.fields(self)
        }


@dataclasses.dataclass
class _WorkItem:
    """One enqueued evaluation: parsed payload plus its completion future."""

    key: Tuple
    accelerator: Accelerator
    options: ModelOptions
    mapping: Mapping
    validate: bool
    with_energy: bool
    future: asyncio.Future


@dataclasses.dataclass(frozen=True)
class _Outcome:
    """What a shard thread hands back for one kernel run."""

    report: Any
    energy: Any
    wall_s: float


class EvaluationServer:
    """The daemon: sockets in, sharded engines out. See the module docstring."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.stats = ServerStats()
        self.store = ResultStore(config.ledger)
        self.engine_stats = EngineStats()
        self._preset_payload = preset_to_dict(config.preset)
        self._options_payload = protocol.options_to_dict(config.options)
        self._own_accel = config.preset.accelerator
        self._own_accel_fp = self._own_accel.fingerprint()
        self._own_options_fp_cache: Optional[str] = None
        # Per-shard machinery, built in start().
        self._queues: List[asyncio.Queue] = []
        self._shard_tasks: List[asyncio.Task] = []
        self._executors: List[Any] = []
        self._engines: List[Dict[Tuple[str, str], EvaluationEngine]] = []
        self._caches: List[EvaluationCache] = []
        # Coalescing: key -> the owning request's future.
        self._inflight: Dict[Tuple, asyncio.Future] = {}
        # Deserialized-accelerator memo (bounded): canonical JSON -> (accel, fp).
        self._accel_memo: "OrderedDict[str, Tuple[Accelerator, str]]" = OrderedDict()
        self._options_memo: "OrderedDict[str, Tuple[ModelOptions, str]]" = OrderedDict()
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_writers: set = set()
        self._conn_tasks: set = set()
        self._run = None            # progress RunHandle
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self.started_ts = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind sockets, spin up shards, warm-start the store."""
        from concurrent.futures import ThreadPoolExecutor

        loop = asyncio.get_running_loop()
        self.loop = loop  # handed out for run_coroutine_threadsafe (tests, ops)
        self._stopped = asyncio.Event()
        warm = self.store.warm_start(self.config.warm_start)
        for shard in range(self.config.shards):
            self._queues.append(asyncio.Queue(maxsize=self.config.queue_depth))
            self._executors.append(
                ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"repro-shard-{shard}"
                )
            )
            self._engines.append({})
            self._caches.append(EvaluationCache(self.config.cache_size))
            self._shard_tasks.append(
                loop.create_task(self._shard_loop(shard), name=f"shard-{shard}")
            )
        if self.config.socket_path:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self.config.socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.config.host, port=self.config.port
            )
        self.started_ts = time.time()
        emitter = self.config.emitter
        if emitter is not None and emitter.enabled:
            self._run = emitter.start_run(
                "serve",
                total_units=None,
                unit="evals",
                accelerator=getattr(self._own_accel, "name", ""),
            )
            if warm:
                self._run.cache_stats(warm, 0)

    @property
    def url(self) -> str:
        """The client-ready endpoint URL (``serve://host:port`` or ``unix://path``)."""
        if self.config.socket_path:
            return f"unix://{self.config.socket_path}"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return f"serve://{host}:{port}"

    async def run(
        self,
        ready_file: Optional[str] = None,
        install_signal_handlers: bool = True,
        on_ready: Optional[Callable[[str], None]] = None,
    ) -> bool:
        """Start, serve until drained, tear down; the CLI entry point.

        Writes the bound endpoint to ``ready_file`` (JSON with a
        ``"url"`` key) once listening, so scripts can wait for boot
        without racing an ephemeral port. Returns ``True`` when the
        daemon exited through an interrupt-style drain (the CLI maps
        that to exit code 130).
        """
        await self.start()
        loop = asyncio.get_running_loop()
        if install_signal_handlers:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(
                        sig, lambda s=sig: loop.create_task(
                            self.drain(reason=signal.Signals(s).name)
                        )
                    )
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        if ready_file:
            with open(ready_file, "w") as handle:
                json.dump({"url": self.url, "pid": os.getpid()}, handle)
        if on_ready is not None:
            on_ready(self.url)
        try:
            await self._stopped.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            # Closing client transports feeds EOF to every handler's
            # readline, so they all exit cleanly (no hard cancellation
            # at loop teardown).
            for writer in list(self._conn_writers):
                writer.close()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            for executor in self._executors:
                executor.shutdown(wait=True)
        return self._interrupted

    _interrupted = False

    async def drain(self, reason: str = "shutdown", interrupted: bool = None) -> None:
        """Stop intake, fail queued work cleanly, finish in-flight kernels.

        ``interrupted`` marks the drain as signal-like (defaults to true
        for anything that is not a protocol-requested ``"shutdown"``):
        it decides between a ``kind="interrupted"`` ledger row plus a
        ``RunInterrupted`` event, and a plain run finish.
        """
        if self._draining:
            return
        self._draining = True
        if interrupted is None:
            interrupted = reason != "shutdown"
        self._interrupted = interrupted
        self._fail_queued()
        for queue in self._queues:
            await queue.put(None)  # sentinel: shard exits after current work
        if self._shard_tasks:
            await asyncio.gather(*self._shard_tasks, return_exceptions=True)
        self._fail_queued()  # producers that slipped in behind the sentinel
        ledger = self.config.ledger
        if interrupted and ledger is not None and ledger.enabled:
            ledger.append(record_interruption(
                flow="serve",
                done_units=self.stats.evaluations,
                total_units=None,
                unit="evals",
                reason=reason,
                wall_time_s=time.time() - self.started_ts,
            ))
        if self._run is not None:
            if interrupted:
                self._run.interrupt(reason)
            else:
                self._run.finish()
        self._stopped.set()

    def _fail_queued(self) -> None:
        """Fail every queued-but-unstarted item with a clean drain error."""
        for queue in self._queues:
            while True:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is None:
                    continue
                self._finish_item(
                    item, error=ServerDraining(
                        "server is draining; the request was not evaluated"
                    )
                )

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #

    async def _on_connection(self, reader, writer) -> None:
        self.stats.connections += 1
        self._conn_writers.add(writer)
        self._conn_tasks.add(asyncio.current_task())
        write_lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                task = asyncio.get_running_loop().create_task(
                    self._handle_frame(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conn_writers.discard(writer)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            # Last: anything above still counts as live for run() teardown.
            self._conn_tasks.discard(asyncio.current_task())

    async def _handle_frame(self, line: bytes, writer, write_lock) -> None:
        """Decode one frame, dispatch it, write the (id-tagged) response."""
        try:
            message = protocol.decode(line)
        except ProtocolError as exc:
            self.stats.protocol_errors += 1
            request_id = self._best_effort_id(line)
            await self._send(
                writer, write_lock,
                ErrorResponse(id=request_id, error="ProtocolError", message=str(exc)),
            )
            return
        if isinstance(message, HelloRequest):
            response = HelloResponse(
                id=message.id,
                protocol=protocol.PROTOCOL_VERSION,
                server=self.config.name,
                preset=self._preset_payload,
                options=self._options_payload,
            )
        elif isinstance(message, StatsRequest):
            response = StatsResponse(id=message.id, stats=self.stats_snapshot())
        elif isinstance(message, ShutdownRequest):
            response = ShutdownResponse(id=message.id)
            await self._send(writer, write_lock, response)
            await self.drain(reason="shutdown", interrupted=False)
            return
        elif isinstance(message, EvaluateRequest):
            response = await self._handle_evaluate(message)
        else:  # a response type sent as a request
            self.stats.protocol_errors += 1
            response = ErrorResponse(
                id=getattr(message, "id", -1),
                error="ProtocolError",
                message=f"unexpected message type {type(message).__name__}",
            )
        if isinstance(response, ErrorResponse):
            self.stats.errors += 1
        await self._send(writer, write_lock, response)

    @staticmethod
    def _best_effort_id(line: bytes) -> int:
        """Recover a request id from an undecodable frame when possible."""
        try:
            data = json.loads(line.decode("utf-8", errors="replace"))
            return int(data.get("id", -1))
        except (ValueError, AttributeError):
            return -1

    @staticmethod
    async def _send(writer, write_lock, message) -> None:
        async with write_lock:
            writer.write(protocol.encode(message))
            try:
                await writer.drain()
            except (ConnectionError, OSError):  # client went away
                pass

    # ------------------------------------------------------------------ #
    # Evaluation path
    # ------------------------------------------------------------------ #

    async def _handle_evaluate(self, msg: EvaluateRequest):
        self.stats.requests += 1
        if self._draining:
            return ErrorResponse(
                id=msg.id, error="ServerDraining",
                message="server is draining; not accepting evaluations",
            )
        try:
            accelerator, accel_fp = self._resolve_accelerator(msg.accelerator)
            options, options_fp = self._resolve_options(msg.options)
            layer = layer_from_dict(msg.layer)
            mapping = mapping_from_dict(msg.mapping, layer)
            mapping_fp = mapping.fingerprint()
        except (ProtocolError, SerdeError, KeyError, ValueError, TypeError) as exc:
            return ErrorResponse(
                id=msg.id, error=type(exc).__name__, message=str(exc)
            )
        store_key = (accel_fp, options_fp, mapping_fp)
        if not msg.with_energy:
            hit = self.store.get(store_key)
            if hit is not None:
                report, warm = hit
                if warm:
                    self.stats.warm_hits += 1
                else:
                    self.stats.store_hits += 1
                return EvaluateResponse(
                    id=msg.id,
                    report=protocol.report_to_dict(report),
                    source="warm" if warm else "store",
                )
        inflight_key = store_key + (msg.with_energy,)
        owner = self._inflight.get(inflight_key)
        if owner is not None:
            self.stats.coalesced += 1
            try:
                outcome = await asyncio.shield(owner)
            except BaseException as exc:
                return self._error_response(msg.id, exc)
            return self._ok_response(msg, outcome, source="coalesced")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[inflight_key] = future
        item = _WorkItem(
            key=inflight_key,
            accelerator=accelerator,
            options=options,
            mapping=mapping,
            validate=msg.validate,
            with_energy=msg.with_energy,
            future=future,
        )
        shard = int(mapping_fp[:12], 16) % self.config.shards
        try:
            await self._queues[shard].put(item)  # backpressure point
        except BaseException:
            self._inflight.pop(inflight_key, None)
            raise
        try:
            outcome = await asyncio.shield(future)
        except BaseException as exc:
            return self._error_response(msg.id, exc)
        self.stats.evaluations += 1
        if msg.with_energy:
            self.stats.energy_evaluations += 1
        if not msg.with_energy:
            self.store.put(store_key, outcome.report, wall_time_s=outcome.wall_s)
        if self._run is not None:
            self._run.advance(
                1, wall_s=outcome.wall_s, worker=f"shard:{shard}",
            )
            if self.stats.evaluations % 32 == 0:
                self._run.cache_stats(
                    self.stats.warm_hits + self.stats.store_hits,
                    self.stats.evaluations,
                    dedup_skipped=self.stats.coalesced,
                )
        return self._ok_response(msg, outcome, source="evaluated")

    def _ok_response(
        self, msg: EvaluateRequest, outcome: _Outcome, source: str
    ) -> EvaluateResponse:
        return EvaluateResponse(
            id=msg.id,
            report=protocol.report_to_dict(outcome.report),
            energy=(
                protocol.energy_to_dict(outcome.energy)
                if outcome.energy is not None else None
            ),
            source=source,
        )

    @staticmethod
    def _error_response(request_id: int, exc: BaseException) -> ErrorResponse:
        return ErrorResponse(
            id=request_id, error=type(exc).__name__, message=str(exc)
        )

    # -- payload resolution (memoized) ---------------------------------- #

    def _resolve_accelerator(self, data) -> Tuple[Accelerator, str]:
        if data is None:
            return self._own_accel, self._own_accel_fp
        memo_key = json.dumps(data, sort_keys=True)
        hit = self._accel_memo.get(memo_key)
        if hit is not None:
            self._accel_memo.move_to_end(memo_key)
            return hit
        accelerator = accelerator_from_dict(data)
        entry = (accelerator, accelerator.fingerprint())
        self._accel_memo[memo_key] = entry
        while len(self._accel_memo) > 128:
            self._accel_memo.popitem(last=False)
        return entry

    def _resolve_options(self, data) -> Tuple[ModelOptions, str]:
        from repro.fingerprint import stable_fingerprint

        if data is None:
            if self._own_options_fp_cache is None:
                self._own_options_fp_cache = stable_fingerprint(self.config.options)
            return self.config.options, self._own_options_fp_cache
        memo_key = json.dumps(data, sort_keys=True)
        hit = self._options_memo.get(memo_key)
        if hit is not None:
            return hit
        options = protocol.options_from_dict(data)
        entry = (options, stable_fingerprint(options))
        self._options_memo[memo_key] = entry
        while len(self._options_memo) > 128:
            self._options_memo.popitem(last=False)
        return entry

    # ------------------------------------------------------------------ #
    # Shards
    # ------------------------------------------------------------------ #

    async def _shard_loop(self, shard: int) -> None:
        """Drain one shard's queue through its single-thread executor."""
        loop = asyncio.get_running_loop()
        queue = self._queues[shard]
        executor = self._executors[shard]
        while True:
            item = await queue.get()
            if item is None:
                break
            try:
                outcome = await loop.run_in_executor(
                    executor, self._evaluate_blocking, shard, item
                )
            except BaseException as exc:
                self._finish_item(item, error=exc)
            else:
                self._finish_item(item, outcome=outcome)

    def _finish_item(self, item: _WorkItem, outcome=None, error=None) -> None:
        """Resolve an item's future and release its in-flight slot."""
        self._inflight.pop(item.key, None)
        if item.future.done():  # pragma: no cover — only on double drain
            return
        if error is not None:
            item.future.set_exception(error)
        else:
            item.future.set_result(outcome)

    def _evaluate_blocking(self, shard: int, item: _WorkItem) -> _Outcome:
        """The kernel call, in the shard's thread (no ambient context here)."""
        engine = self._engine_for(shard, item)
        hook = self.config.pre_evaluate_hook
        if hook is not None:
            hook(item)
        t0 = time.perf_counter()
        report = engine.evaluate(item.mapping, validate=item.validate)
        energy = engine.evaluate_energy(item.mapping) if item.with_energy else None
        return _Outcome(report=report, energy=energy, wall_s=time.perf_counter() - t0)

    def _engine_for(self, shard: int, item: _WorkItem) -> EvaluationEngine:
        """The shard's engine for the item's (machine, options) pair.

        Engines are created lazily per pair and share the shard's cache
        plus the server-wide engine stats; only this shard's thread
        touches the dict, so no lock is needed.
        """
        key = item.key[:2]  # (accel_fp, options_fp)
        engine = self._engines[shard].get(key)
        if engine is None:
            engine = EvaluationEngine(
                item.accelerator,
                item.options,
                cache=self._caches[shard],
                stats=self.engine_stats,
                executor="serial",
            )
            self._engines[shard][key] = engine
        return engine

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats_snapshot(self) -> Dict[str, float]:
        """Server counters plus engine counters and store occupancy."""
        data = self.stats.snapshot()
        data["store_size"] = float(len(self.store))
        data["warm_rows"] = float(self.store.warm_rows)
        data["inflight"] = float(len(self._inflight))
        data["queued"] = float(sum(q.qsize() for q in self._queues))
        data["shards"] = float(self.config.shards)
        data["uptime_s"] = float(time.time() - self.started_ts) if self.started_ts else 0.0
        for key, value in self.engine_stats.snapshot().items():
            data[f"engine_{key}"] = value
        return data


__all__ = [
    "EvaluationServer",
    "ServerConfig",
    "ServerDraining",
    "ServerStats",
]
