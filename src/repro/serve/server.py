"""The asyncio evaluation daemon behind ``repro-latency serve``.

One process owns a pool of :class:`~repro.engine.EvaluationEngine`
workers and serves the line-framed JSON protocol of
:mod:`repro.serve.protocol` over TCP or a Unix socket. The moving parts:

* **Sharding** — every request is routed by its mapping fingerprint
  (``int(fp, 16) % shards``) to one shard: a bounded
  :class:`asyncio.Queue` drained by a dedicated single-thread executor.
  Identical design points always land on the same shard, so each
  shard's engine cache stays hot for its slice of the space and the
  kernel never runs concurrently for one fingerprint.
* **Backpressure** — the per-shard queues are bounded; when a shard is
  ``queue_depth`` deep, ``await queue.put`` suspends the connection
  handler, which stops reading that client's socket — TCP flow control
  does the rest. No unbounded buffering anywhere.
* **Coalescing** — requests carrying fingerprints already in flight
  attach to the owner's future instead of enqueuing a duplicate; the
  ``coalesced`` counter in the stats surface counts them (asserted by
  the integration tests: N concurrent duplicates run the kernel once).
* **Persistent store** — answers come, in order of preference, from the
  :class:`~repro.serve.store.ResultStore` (warm rows from prior
  ledgers, or rows evaluated this boot), from an in-flight future, or
  from the kernel; every kernel result is written through to the
  configured ledger so the *next* boot warm-starts from it.
* **Health plane** — when a progress emitter is configured the daemon
  opens one ``flow="serve"`` run and advances it per evaluation with
  per-shard worker ids and periodic cache stats; ``repro-latency top
  EVENTS --follow`` watches a live server exactly like any other flow.
* **Drain** — SIGINT/SIGTERM (or a ``shutdown`` frame) stops intake,
  fails queued-but-unstarted requests with a clean ``ServerDraining``
  error, lets in-flight kernels finish, writes one
  ``kind="interrupted"`` ledger row recording how far the daemon got,
  and closes the progress run.
* **Observability plane** — every request is timed per phase
  (queue-wait, coalesce-wait, kernel, store-write). Requests carrying a
  ``trace`` context get the server-side span subtree shipped back in
  the response (:mod:`repro.observability.distributed`); every request
  lands in the always-on :class:`FlightRecorder` ring (dumped on
  SIGQUIT, drain, internal error, or ``/statusz?dump=1``); requests
  over ``--slow-ms`` write a ``kind="slow_request"`` ledger row and a
  progress-stream note; and ``--admin-port`` starts the HTTP admin
  listener (:mod:`repro.serve.admin`) serving ``/metrics`` (Prometheus
  text with per-shard request histograms), ``/healthz``, ``/readyz``
  and ``/statusz``.

The daemon is single-loop asyncio; kernels run in shard threads via
``run_in_executor``, which deliberately does *not* propagate context
variables — shard engines therefore never double-write the ambient
ledger, and all persistence goes through the store explicitly.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import signal
import time
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.step1 import ModelOptions
from repro.engine import EvaluationCache, EvaluationEngine
from repro.hardware.accelerator import Accelerator
from repro.hardware.presets import Preset
from repro.hardware.serde import (
    SerdeError,
    accelerator_from_dict,
    preset_to_dict,
)
from repro.mapping.mapping import Mapping
from repro.mapping.serde import mapping_from_dict
from repro.observability.distributed import (
    FlightRecorder,
    TraceContext,
    extract_trace,
    server_span_records,
    spans_to_wire,
)
from repro.observability.ledger import record_interruption, record_slow_request
from repro.observability.metrics import MetricsRegistry
from repro.observability.span import SpanRecord
from repro.observability.stats import EngineStats
from repro.observability.tracer import Tracer, use_tracer
from repro.serve import protocol
from repro.serve.protocol import (
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    HelloRequest,
    HelloResponse,
    ProtocolError,
    ShutdownRequest,
    ShutdownResponse,
    StatsRequest,
    StatsResponse,
)
from repro.serve.store import ResultStore
from repro.workload.serde import layer_from_dict


class ServerDraining(RuntimeError):
    """The daemon is shutting down; the request was not evaluated."""


@dataclasses.dataclass
class ServerConfig:
    """Everything a daemon needs; the CLI builds one from flags.

    Exactly one of ``socket_path`` (Unix socket) or ``host``/``port``
    (TCP; ``port=0`` binds an ephemeral port, reported by
    :attr:`EvaluationServer.url`) selects the transport.
    ``pre_evaluate_hook`` is a test seam: called in the shard thread
    with the work item just before the kernel, it lets integration
    tests hold an evaluation open deterministically (to assert
    coalescing) without sleeping.

    ``admin_port`` (``None`` = off, ``0`` = ephemeral) starts the HTTP
    admin listener on ``host``; ``slow_ms`` (``None`` = off) is the
    slow-request threshold; ``flight_path`` is where the flight
    recorder auto-dumps on drain / internal error / SIGQUIT (``None``
    disables the automatic file dumps, not the recorder itself).
    """

    preset: Preset
    options: ModelOptions = dataclasses.field(default_factory=ModelOptions)
    host: str = "127.0.0.1"
    port: int = 0
    socket_path: Optional[str] = None
    shards: int = 2
    queue_depth: int = 128
    name: str = "repro-serve"
    ledger: Any = None                      # RunLedger (or None)
    warm_start: Tuple[str, ...] = ()        # prior ledger snapshots to index
    emitter: Any = None                     # ProgressEmitter (or None)
    cache_size: int = 65536                 # per-shard engine cache capacity
    pre_evaluate_hook: Optional[Callable] = None
    admin_port: Optional[int] = None        # HTTP admin listener (None = off)
    slow_ms: Optional[float] = None         # slow-request threshold (None = off)
    slow_log_size: int = 32                 # last-N slow requests kept for /statusz
    flight_capacity: int = 512              # flight-recorder ring size
    flight_path: Optional[str] = None       # auto-dump target (None = no file dumps)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")


@dataclasses.dataclass
class ServerStats:
    """The daemon's own counters (engine counters ride along in snapshots)."""

    connections: int = 0
    requests: int = 0          # evaluate requests received
    evaluations: int = 0       # kernels actually run
    energy_evaluations: int = 0
    coalesced: int = 0         # requests attached to an in-flight evaluation
    warm_hits: int = 0         # answered from a prior-boot ledger row
    store_hits: int = 0        # answered from a this-boot result
    errors: int = 0            # requests answered with an error frame
    protocol_errors: int = 0
    drained: int = 0           # requests failed by a drain
    slow_requests: int = 0     # requests over the --slow-ms threshold

    def snapshot(self) -> Dict[str, float]:
        return {
            field.name: float(getattr(self, field.name))
            for field in dataclasses.fields(self)
        }


@dataclasses.dataclass
class _WorkItem:
    """One enqueued evaluation: parsed payload plus its completion future."""

    key: Tuple
    accelerator: Accelerator
    options: ModelOptions
    mapping: Mapping
    validate: bool
    with_energy: bool
    future: asyncio.Future
    label: str = ""             # "accel_fp[:8]/mapping_fp[:12]" for notes
    traced: bool = False        # collect the kernel's span records?
    t_enqueue: float = 0.0      # perf_counter at enqueue
    queue_wait_us: float = 0.0  # written by the shard loop at pickup


@dataclasses.dataclass(frozen=True)
class _Outcome:
    """What a shard thread hands back for one kernel run."""

    report: Any
    energy: Any
    wall_s: float
    kernel_records: Tuple[SpanRecord, ...] = ()


@dataclasses.dataclass
class _Phases:
    """Per-request phase bookkeeping the response wrapper folds into
    metrics, the flight recorder, the slow log, and the span subtree."""

    shard: Optional[int] = None
    queue_wait_us: float = 0.0
    coalesce_wait_us: float = 0.0
    kernel_us: float = 0.0
    store_write_us: float = 0.0
    kernel_records: Tuple[SpanRecord, ...] = ()
    accel_fp: str = ""
    mapping_fp: str = ""
    options_fp: str = ""
    queued_at_arrival: int = 0
    evaluated: bool = False     # a kernel actually ran for this request


class EvaluationServer:
    """The daemon: sockets in, sharded engines out. See the module docstring."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self.stats = ServerStats()
        self.store = ResultStore(config.ledger)
        self.engine_stats = EngineStats()
        self._preset_payload = preset_to_dict(config.preset)
        self._options_payload = protocol.options_to_dict(config.options)
        self._own_accel = config.preset.accelerator
        self._own_accel_fp = self._own_accel.fingerprint()
        self._own_options_fp_cache: Optional[str] = None
        # Per-shard machinery, built in start().
        self._queues: List[asyncio.Queue] = []
        self._shard_tasks: List[asyncio.Task] = []
        self._executors: List[Any] = []
        self._engines: List[Dict[Tuple[str, str], EvaluationEngine]] = []
        self._caches: List[EvaluationCache] = []
        # Coalescing: key -> the owning request's future.
        self._inflight: Dict[Tuple, asyncio.Future] = {}
        # Deserialized-accelerator memo (bounded): canonical JSON -> (accel, fp).
        self._accel_memo: "OrderedDict[str, Tuple[Accelerator, str]]" = OrderedDict()
        self._options_memo: "OrderedDict[str, Tuple[ModelOptions, str]]" = OrderedDict()
        self._server: Optional[asyncio.AbstractServer] = None
        self._conn_writers: set = set()
        self._conn_tasks: set = set()
        self._run = None            # progress RunHandle
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self.started_ts = 0.0
        # Observability plane: request metrics, the always-on flight
        # recorder, the last-N slow-request ring, and (when configured)
        # the HTTP admin listener built in start().
        self.metrics = MetricsRegistry()
        self.flight = FlightRecorder(config.flight_capacity)
        self._slow_log: "deque" = deque(maxlen=max(1, config.slow_log_size))
        self._queue_highwater: List[int] = []
        self.admin = None           # repro.serve.admin.AdminServer (or None)
        self._error_dumped = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind sockets, spin up shards, warm-start the store."""
        from concurrent.futures import ThreadPoolExecutor

        loop = asyncio.get_running_loop()
        self.loop = loop  # handed out for run_coroutine_threadsafe (tests, ops)
        self._stopped = asyncio.Event()
        warm = self.store.warm_start(self.config.warm_start)
        self._queue_highwater = [0] * self.config.shards
        for shard in range(self.config.shards):
            self._queues.append(asyncio.Queue(maxsize=self.config.queue_depth))
            self._executors.append(
                ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"repro-shard-{shard}"
                )
            )
            self._engines.append({})
            self._caches.append(EvaluationCache(self.config.cache_size))
            self._shard_tasks.append(
                loop.create_task(self._shard_loop(shard), name=f"shard-{shard}")
            )
        if self.config.socket_path:
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self.config.socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.config.host, port=self.config.port
            )
        if self.config.admin_port is not None:
            from repro.serve.admin import AdminServer

            self.admin = AdminServer(
                self, host=self.config.host, port=self.config.admin_port
            )
            self.admin.start()
        # Last: started_ts > 0 is the "fully up" signal (readyz, tests).
        self.started_ts = time.time()
        emitter = self.config.emitter
        if emitter is not None and emitter.enabled:
            self._run = emitter.start_run(
                "serve",
                total_units=None,
                unit="evals",
                accelerator=getattr(self._own_accel, "name", ""),
            )
            if warm:
                self._run.cache_stats(warm, 0)

    @property
    def url(self) -> str:
        """The client-ready endpoint URL (``serve://host:port`` or ``unix://path``)."""
        if self.config.socket_path:
            return f"unix://{self.config.socket_path}"
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return f"serve://{host}:{port}"

    async def run(
        self,
        ready_file: Optional[str] = None,
        install_signal_handlers: bool = True,
        on_ready: Optional[Callable[[str], None]] = None,
    ) -> bool:
        """Start, serve until drained, tear down; the CLI entry point.

        Writes the bound endpoint to ``ready_file`` (JSON with a
        ``"url"`` key) once listening, so scripts can wait for boot
        without racing an ephemeral port. Returns ``True`` when the
        daemon exited through an interrupt-style drain (the CLI maps
        that to exit code 130).
        """
        await self.start()
        loop = asyncio.get_running_loop()
        if install_signal_handlers:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(
                        sig, lambda s=sig: loop.create_task(
                            self.drain(reason=signal.Signals(s).name)
                        )
                    )
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
            # SIGQUIT = dump the flight recorder, keep serving: the
            # classic "what is this daemon doing right now" poke.
            if hasattr(signal, "SIGQUIT"):
                try:
                    loop.add_signal_handler(signal.SIGQUIT, self.dump_flight)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass
        if ready_file:
            ready: Dict[str, Any] = {"url": self.url, "pid": os.getpid()}
            if self.admin is not None:
                ready["admin"] = self.admin.url
            with open(ready_file, "w") as handle:
                json.dump(ready, handle)
        if on_ready is not None:
            on_ready(self.url)
        try:
            await self._stopped.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            # Closing client transports feeds EOF to every handler's
            # readline, so they all exit cleanly (no hard cancellation
            # at loop teardown).
            for writer in list(self._conn_writers):
                writer.close()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            for executor in self._executors:
                executor.shutdown(wait=True)
            if self.admin is not None:
                self.admin.close()
        return self._interrupted

    _interrupted = False

    async def drain(self, reason: str = "shutdown", interrupted: bool = None) -> None:
        """Stop intake, fail queued work cleanly, finish in-flight kernels.

        ``interrupted`` marks the drain as signal-like (defaults to true
        for anything that is not a protocol-requested ``"shutdown"``):
        it decides between a ``kind="interrupted"`` ledger row plus a
        ``RunInterrupted`` event, and a plain run finish.
        """
        if self._draining:
            return
        self._draining = True
        if interrupted is None:
            interrupted = reason != "shutdown"
        self._interrupted = interrupted
        self._fail_queued()
        for queue in self._queues:
            await queue.put(None)  # sentinel: shard exits after current work
        if self._shard_tasks:
            await asyncio.gather(*self._shard_tasks, return_exceptions=True)
        self._fail_queued()  # producers that slipped in behind the sentinel
        ledger = self.config.ledger
        if interrupted and ledger is not None and ledger.enabled:
            ledger.append(record_interruption(
                flow="serve",
                done_units=self.stats.evaluations,
                total_units=None,
                unit="evals",
                reason=reason,
                wall_time_s=time.time() - self.started_ts,
            ))
        if self._run is not None:
            if interrupted:
                self._run.interrupt(reason)
            else:
                self._run.finish()
        if self.config.flight_path and len(self.flight):
            self.flight.dump(self.config.flight_path)
        self._stopped.set()

    def _fail_queued(self) -> None:
        """Fail every queued-but-unstarted item with a clean drain error."""
        for queue in self._queues:
            while True:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is None:
                    continue
                self._finish_item(
                    item, error=ServerDraining(
                        "server is draining; the request was not evaluated"
                    )
                )

    # ------------------------------------------------------------------ #
    # Connections
    # ------------------------------------------------------------------ #

    async def _on_connection(self, reader, writer) -> None:
        self.stats.connections += 1
        self._conn_writers.add(writer)
        self._conn_tasks.add(asyncio.current_task())
        write_lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                task = asyncio.get_running_loop().create_task(
                    self._handle_frame(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conn_writers.discard(writer)
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
            # Last: anything above still counts as live for run() teardown.
            self._conn_tasks.discard(asyncio.current_task())

    async def _handle_frame(self, line: bytes, writer, write_lock) -> None:
        """Decode one frame, dispatch it, write the (id-tagged) response."""
        try:
            message = protocol.decode(line)
        except ProtocolError as exc:
            self.stats.protocol_errors += 1
            request_id = self._best_effort_id(line)
            await self._send(
                writer, write_lock,
                ErrorResponse(id=request_id, error="ProtocolError", message=str(exc)),
            )
            return
        if isinstance(message, HelloRequest):
            response = HelloResponse(
                id=message.id,
                protocol=protocol.PROTOCOL_VERSION,
                server=self.config.name,
                preset=self._preset_payload,
                options=self._options_payload,
                admin=self.admin.url if self.admin is not None else None,
            )
        elif isinstance(message, StatsRequest):
            response = StatsResponse(id=message.id, stats=self.stats_snapshot())
        elif isinstance(message, ShutdownRequest):
            response = ShutdownResponse(id=message.id)
            await self._send(writer, write_lock, response)
            await self.drain(reason="shutdown", interrupted=False)
            return
        elif isinstance(message, EvaluateRequest):
            response = await self._handle_evaluate(message)
        else:  # a response type sent as a request
            self.stats.protocol_errors += 1
            response = ErrorResponse(
                id=getattr(message, "id", -1),
                error="ProtocolError",
                message=f"unexpected message type {type(message).__name__}",
            )
        if isinstance(response, ErrorResponse):
            self.stats.errors += 1
        await self._send(writer, write_lock, response)

    @staticmethod
    def _best_effort_id(line: bytes) -> int:
        """Recover a request id from an undecodable frame when possible."""
        try:
            data = json.loads(line.decode("utf-8", errors="replace"))
            return int(data.get("id", -1))
        except (ValueError, AttributeError):
            return -1

    @staticmethod
    async def _send(writer, write_lock, message) -> None:
        async with write_lock:
            writer.write(protocol.encode(message))
            try:
                await writer.drain()
            except (ConnectionError, OSError):  # client went away
                pass

    # ------------------------------------------------------------------ #
    # Evaluation path
    # ------------------------------------------------------------------ #

    async def _handle_evaluate(self, msg: EvaluateRequest):
        """Time + dispatch one evaluate request, then fold the result into
        the observability plane (metrics, flight recorder, slow log, spans)."""
        self.stats.requests += 1
        context = extract_trace(msg.trace)
        phases = _Phases(queued_at_arrival=sum(q.qsize() for q in self._queues))
        t0 = time.perf_counter()
        response = await self._evaluate_request(msg, phases, context)
        wall_s = time.perf_counter() - t0
        self._record_request(msg, response, phases, wall_s)
        if (
            context is not None
            and context.sampled
            and not isinstance(response, ErrorResponse)
        ):
            records = server_span_records(
                context=context,
                start_us=t0 * 1e6,
                end_us=(t0 + wall_s) * 1e6,
                shard=phases.shard if phases.evaluated else None,
                queue_wait_us=phases.queue_wait_us,
                coalesce_wait_us=phases.coalesce_wait_us,
                kernel_us=phases.kernel_us,
                store_write_us=phases.store_write_us,
                kernel_records=phases.kernel_records,
                source=response.source,
                mapping_fp=phases.mapping_fp[:12] or None,
                server=self.config.name,
            )
            response = dataclasses.replace(
                response, spans=spans_to_wire(records)
            )
        return response

    async def _evaluate_request(
        self,
        msg: EvaluateRequest,
        phases: _Phases,
        context: Optional[TraceContext],
    ):
        """The dispatch itself: store -> coalesce -> shard queue -> kernel."""
        if self._draining:
            return ErrorResponse(
                id=msg.id, error="ServerDraining",
                message="server is draining; not accepting evaluations",
            )
        try:
            accelerator, accel_fp = self._resolve_accelerator(msg.accelerator)
            options, options_fp = self._resolve_options(msg.options)
            layer = layer_from_dict(msg.layer)
            mapping = mapping_from_dict(msg.mapping, layer)
            mapping_fp = mapping.fingerprint()
        except (ProtocolError, SerdeError, KeyError, ValueError, TypeError) as exc:
            return ErrorResponse(
                id=msg.id, error=type(exc).__name__, message=str(exc)
            )
        phases.accel_fp = accel_fp
        phases.options_fp = options_fp
        phases.mapping_fp = mapping_fp
        shard = int(mapping_fp[:12], 16) % self.config.shards
        phases.shard = shard
        store_key = (accel_fp, options_fp, mapping_fp)
        if not msg.with_energy:
            hit = self.store.get(store_key)
            if hit is not None:
                report, warm = hit
                if warm:
                    self.stats.warm_hits += 1
                else:
                    self.stats.store_hits += 1
                return EvaluateResponse(
                    id=msg.id,
                    report=protocol.report_to_dict(report),
                    source="warm" if warm else "store",
                )
        inflight_key = store_key + (msg.with_energy,)
        owner = self._inflight.get(inflight_key)
        if owner is not None:
            self.stats.coalesced += 1
            t_wait = time.perf_counter()
            try:
                outcome = await asyncio.shield(owner)
            except BaseException as exc:
                return self._error_response(msg.id, exc)
            phases.coalesce_wait_us = (time.perf_counter() - t_wait) * 1e6
            return self._ok_response(msg, outcome, source="coalesced")
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[inflight_key] = future
        item = _WorkItem(
            key=inflight_key,
            accelerator=accelerator,
            options=options,
            mapping=mapping,
            validate=msg.validate,
            with_energy=msg.with_energy,
            future=future,
            label=f"{accel_fp[:8]}/{mapping_fp[:12]}",
            traced=context is not None and context.sampled,
            t_enqueue=time.perf_counter(),
        )
        try:
            await self._queues[shard].put(item)  # backpressure point
        except BaseException:
            self._inflight.pop(inflight_key, None)
            raise
        depth = self._queues[shard].qsize()
        if depth > self._queue_highwater[shard]:
            self._queue_highwater[shard] = depth
        try:
            outcome = await asyncio.shield(future)
        except BaseException as exc:
            return self._error_response(msg.id, exc)
        phases.evaluated = True
        phases.queue_wait_us = item.queue_wait_us
        phases.kernel_us = outcome.wall_s * 1e6
        phases.kernel_records = outcome.kernel_records
        self.stats.evaluations += 1
        if msg.with_energy:
            self.stats.energy_evaluations += 1
        if not msg.with_energy:
            t_store = time.perf_counter()
            self.store.put(store_key, outcome.report, wall_time_s=outcome.wall_s)
            phases.store_write_us = (time.perf_counter() - t_store) * 1e6
        if self._run is not None:
            self._run.advance(
                1, wall_s=outcome.wall_s, worker=f"shard:{shard}",
            )
            if self.stats.evaluations % 32 == 0:
                self._run.cache_stats(
                    self.stats.warm_hits + self.stats.store_hits,
                    self.stats.evaluations,
                    dedup_skipped=self.stats.coalesced,
                )
        return self._ok_response(msg, outcome, source="evaluated")

    def _ok_response(
        self, msg: EvaluateRequest, outcome: _Outcome, source: str
    ) -> EvaluateResponse:
        return EvaluateResponse(
            id=msg.id,
            report=protocol.report_to_dict(outcome.report),
            energy=(
                protocol.energy_to_dict(outcome.energy)
                if outcome.energy is not None else None
            ),
            source=source,
        )

    @staticmethod
    def _error_response(request_id: int, exc: BaseException) -> ErrorResponse:
        return ErrorResponse(
            id=request_id, error=type(exc).__name__, message=str(exc)
        )

    #: Error kinds a client's payload can legitimately cause; anything
    #: else is a server-side fault and triggers a flight-recorder dump.
    _CLIENT_ERRORS = frozenset({
        "MappingError", "ProtocolError", "SerdeError", "ServerDraining",
        "KeyError", "ValueError", "TypeError",
    })

    def _record_request(
        self, msg: EvaluateRequest, response, phases: _Phases, wall_s: float
    ) -> None:
        """Fold one finished request into metrics / flight ring / slow log."""
        metrics = self.metrics
        metrics.counter(
            "repro_serve_requests_total", "Evaluate requests received."
        ).inc()
        failed = isinstance(response, ErrorResponse)
        if failed:
            metrics.counter(
                "repro_serve_request_errors_total",
                "Evaluate requests answered with an error frame.",
                labels={"error": response.error},
            ).inc()
        else:
            metrics.counter(
                "repro_serve_responses_total",
                "Evaluate responses by provenance.",
                labels={"source": response.source},
            ).inc()
        shard_label = {"shard": str(phases.shard if phases.shard is not None else -1)}
        metrics.histogram(
            "repro_serve_request_seconds",
            "Server-side evaluate wall time.",
            labels=shard_label,
        ).observe(wall_s)
        if phases.evaluated:
            metrics.histogram(
                "repro_serve_queue_wait_seconds",
                "Admission-to-shard-pickup wait.",
                labels=shard_label,
            ).observe(phases.queue_wait_us / 1e6)
        entry: Dict[str, Any] = {
            "id": msg.id,
            "outcome": response.error if failed else response.source,
            "shard": phases.shard,
            "wall_ms": round(wall_s * 1e3, 3),
            "queue_wait_ms": round(phases.queue_wait_us / 1e3, 3),
            "kernel_ms": round(phases.kernel_us / 1e3, 3),
            "accel_fp": phases.accel_fp[:8],
            "mapping_fp": phases.mapping_fp[:12],
            "queue_depth": phases.queued_at_arrival,
        }
        self.flight.record(**entry)
        if (
            failed
            and response.error not in self._CLIENT_ERRORS
            and self.config.flight_path
            and not self._error_dumped
        ):
            self._error_dumped = True
            self.flight.dump(self.config.flight_path)
        slow_ms = self.config.slow_ms
        if slow_ms is not None and not failed and wall_s * 1e3 >= slow_ms:
            self.stats.slow_requests += 1
            slow = dict(entry)
            slow.update(
                ts=time.time(),
                coalesce_wait_ms=round(phases.coalesce_wait_us / 1e3, 3),
                store_write_ms=round(phases.store_write_us / 1e3, 3),
                threshold_ms=float(slow_ms),
            )
            self._slow_log.append(slow)
            metrics.counter(
                "repro_serve_slow_requests_total",
                "Requests over the --slow-ms threshold.",
            ).inc()
            ledger = self.config.ledger
            if ledger is not None and ledger.enabled:
                ledger.append(record_slow_request(
                    accelerator_fp=phases.accel_fp,
                    mapping_fp=phases.mapping_fp,
                    options_fp=phases.options_fp,
                    source=response.source,
                    shard=phases.shard,
                    total_ms=wall_s * 1e3,
                    queue_wait_ms=phases.queue_wait_us / 1e3,
                    kernel_ms=phases.kernel_us / 1e3,
                    store_write_ms=phases.store_write_us / 1e3,
                    coalesce_wait_ms=phases.coalesce_wait_us / 1e3,
                    queue_depth=phases.queued_at_arrival,
                    threshold_ms=slow_ms,
                ))
            if self._run is not None:
                self._run.heartbeat(
                    worker=f"shard:{phases.shard}",
                    note=(
                        f"slow request {phases.mapping_fp[:12]} "
                        f"{wall_s * 1e3:.0f}ms (> {slow_ms:g}ms)"
                    ),
                )

    # -- payload resolution (memoized) ---------------------------------- #

    def _resolve_accelerator(self, data) -> Tuple[Accelerator, str]:
        if data is None:
            return self._own_accel, self._own_accel_fp
        memo_key = json.dumps(data, sort_keys=True)
        hit = self._accel_memo.get(memo_key)
        if hit is not None:
            self._accel_memo.move_to_end(memo_key)
            return hit
        accelerator = accelerator_from_dict(data)
        entry = (accelerator, accelerator.fingerprint())
        self._accel_memo[memo_key] = entry
        while len(self._accel_memo) > 128:
            self._accel_memo.popitem(last=False)
        return entry

    def _resolve_options(self, data) -> Tuple[ModelOptions, str]:
        from repro.fingerprint import stable_fingerprint

        if data is None:
            if self._own_options_fp_cache is None:
                self._own_options_fp_cache = stable_fingerprint(self.config.options)
            return self.config.options, self._own_options_fp_cache
        memo_key = json.dumps(data, sort_keys=True)
        hit = self._options_memo.get(memo_key)
        if hit is not None:
            return hit
        options = protocol.options_from_dict(data)
        entry = (options, stable_fingerprint(options))
        self._options_memo[memo_key] = entry
        while len(self._options_memo) > 128:
            self._options_memo.popitem(last=False)
        return entry

    # ------------------------------------------------------------------ #
    # Shards
    # ------------------------------------------------------------------ #

    async def _shard_loop(self, shard: int) -> None:
        """Drain one shard's queue through its single-thread executor."""
        loop = asyncio.get_running_loop()
        queue = self._queues[shard]
        executor = self._executors[shard]
        while True:
            item = await queue.get()
            if item is None:
                break
            item.queue_wait_us = (time.perf_counter() - item.t_enqueue) * 1e6
            if self._run is not None:
                # Announce the kernel *before* it runs: if the shard
                # thread wedges, the stall warning names this request.
                self._run.heartbeat(
                    worker=f"shard:{shard}",
                    note=f"evaluating {item.label} (kernel)",
                )
            try:
                outcome = await loop.run_in_executor(
                    executor, self._evaluate_blocking, shard, item
                )
            except BaseException as exc:
                self._finish_item(item, error=exc)
            else:
                self._finish_item(item, outcome=outcome)

    def _finish_item(self, item: _WorkItem, outcome=None, error=None) -> None:
        """Resolve an item's future and release its in-flight slot."""
        self._inflight.pop(item.key, None)
        if item.future.done():  # pragma: no cover — only on double drain
            return
        if error is not None:
            item.future.set_exception(error)
        else:
            item.future.set_result(outcome)

    def _evaluate_blocking(self, shard: int, item: _WorkItem) -> _Outcome:
        """The kernel call, in the shard's thread (no ambient context here).

        ``run_in_executor`` deliberately does not propagate contextvars,
        so a traced request installs its *own* kernel tracer here: the
        engine's stall-attribution spans land in a fresh record list
        that travels back through the outcome and — remapped — across
        the wire.
        """
        engine = self._engine_for(shard, item)
        hook = self.config.pre_evaluate_hook
        if hook is not None:
            hook(item)
        kernel_records: Tuple[SpanRecord, ...] = ()
        t0 = time.perf_counter()
        if item.traced:
            kernel_tracer = Tracer()
            with use_tracer(kernel_tracer):
                report = engine.evaluate(item.mapping, validate=item.validate)
                energy = (
                    engine.evaluate_energy(item.mapping)
                    if item.with_energy else None
                )
            kernel_records = tuple(kernel_tracer.records)
        else:
            report = engine.evaluate(item.mapping, validate=item.validate)
            energy = engine.evaluate_energy(item.mapping) if item.with_energy else None
        return _Outcome(
            report=report,
            energy=energy,
            wall_s=time.perf_counter() - t0,
            kernel_records=kernel_records,
        )

    def _engine_for(self, shard: int, item: _WorkItem) -> EvaluationEngine:
        """The shard's engine for the item's (machine, options) pair.

        Engines are created lazily per pair and share the shard's cache
        plus the server-wide engine stats; only this shard's thread
        touches the dict, so no lock is needed.
        """
        key = item.key[:2]  # (accel_fp, options_fp)
        engine = self._engines[shard].get(key)
        if engine is None:
            engine = EvaluationEngine(
                item.accelerator,
                item.options,
                cache=self._caches[shard],
                stats=self.engine_stats,
                executor="serial",
            )
            self._engines[shard][key] = engine
        return engine

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats_snapshot(self) -> Dict[str, float]:
        """Server counters plus engine counters and store occupancy."""
        data = self.stats.snapshot()
        data["store_size"] = float(len(self.store))
        data["warm_rows"] = float(self.store.warm_rows)
        data["inflight"] = float(len(self._inflight))
        data["queued"] = float(sum(q.qsize() for q in self._queues))
        data["queue_highwater"] = float(
            max(self._queue_highwater) if self._queue_highwater else 0
        )
        data["shards"] = float(self.config.shards)
        data["uptime_s"] = float(time.time() - self.started_ts) if self.started_ts else 0.0
        for key, value in self.engine_stats.snapshot().items():
            data[f"engine_{key}"] = value
        return data

    def render_metrics(self) -> str:
        """Prometheus text for ``/metrics``: request series + fresh gauges.

        Called from the admin thread per scrape; the counter/histogram
        series accumulate on the request path, the gauges (snapshot
        counters, per-shard queue depths) are refreshed here.
        """
        metrics = self.metrics
        metrics.ingest("repro_serve", self.stats_snapshot())
        for shard, queue in enumerate(self._queues):
            labels = {"shard": str(shard)}
            metrics.gauge(
                "repro_serve_queue_depth", "Requests queued per shard.",
                labels=labels,
            ).set(queue.qsize())
            metrics.gauge(
                "repro_serve_queue_highwater",
                "Deepest the shard's queue has been this boot.",
                labels=labels,
            ).set(self._queue_highwater[shard])
        return metrics.to_prometheus()

    def status_payload(self) -> Dict[str, Any]:
        """The ``/statusz`` JSON: identity, shard table, store, slow log."""
        return {
            "server": self.config.name,
            "url": self.url if self._server is not None else "",
            "pid": os.getpid(),
            "uptime_s": time.time() - self.started_ts if self.started_ts else 0.0,
            "accelerator": getattr(self._own_accel, "name", ""),
            "accelerator_fp": self._own_accel_fp[:12],
            "protocol": f"{protocol.PROTOCOL_VERSION}.{protocol.PROTOCOL_MINOR}",
            "draining": self._draining,
            "stats": self.stats_snapshot(),
            "shards": [
                {
                    "shard": shard,
                    "queued": queue.qsize(),
                    "highwater": self._queue_highwater[shard],
                    "engines": len(self._engines[shard]),
                }
                for shard, queue in enumerate(self._queues)
            ],
            "store": {
                "size": len(self.store),
                "warm_rows": self.store.warm_rows,
            },
            "slow_requests": list(self._slow_log),
            "flight": {
                "size": len(self.flight),
                "capacity": self.flight.capacity,
                "dumps": self.flight.dumps,
                "path": self.config.flight_path,
            },
            "campaigns": self._campaign_status(),
        }

    def _campaign_status(self) -> List[Dict[str, Any]]:
        """The last few campaign rows in the daemon's ledger.

        Lets an operator see which search campaigns fed (or are feeding)
        this daemon's store straight from ``/statusz``; live campaign
        counters are on ``/metrics`` as ``repro_campaign_*`` gauges.
        """
        ledger = self.config.ledger
        if ledger is None or not getattr(ledger, "enabled", False):
            return []
        from repro.observability.campaign import campaign_records

        out = []
        for row in campaign_records(ledger.records())[-5:]:
            extra = row.extra
            out.append({
                "name": row.label,
                "partial": bool(extra.get("partial")),
                "best_objective": extra.get("best_objective"),
                "enumerated": extra.get("enumerated", 0),
                "scored": extra.get("scored", 0),
                "git_sha": row.git_sha,
            })
        return out

    def dump_flight(self, path: Optional[str] = None) -> int:
        """Dump the flight ring (SIGQUIT handler / admin hook); record count."""
        target = path or self.config.flight_path or "serve-flight.jsonl"
        return self.flight.dump(target)


__all__ = [
    "EvaluationServer",
    "ServerConfig",
    "ServerDraining",
    "ServerStats",
]
