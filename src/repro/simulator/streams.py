"""Lower a mapping onto periodic transfer-job streams for the simulator.

Each stream is one unit memory's periodic traffic (refill, flush or
partial-sum read-back) lowered into an ordered list of jobs. The schedule
parameters — period, keep-out window, bits per tile — restate the machine's
*semantics* (the same Table-I rules the analytical model uses, because the
keep-out zone is a property of the hardware, not of the model); what the
simulator adds is *state*: jobs contend for port bandwidth, chain across
levels and gate the compute clock, so stalls emerge instead of being
computed in closed form.

Job gating uses compute-local time ``c`` (ideal cycles of the temporal
schedule):

* refill of tile ``k``: may start once ``c >= k*P - X_REQ`` (non-DB; a
  double-buffered level may start a full period early) and blocks compute
  from passing ``c = k*P`` until done;
* flush of period ``k``: may start once the period's accumulation ends
  (``c >= (k+1)*P``) and blocks compute from passing ``(k+1)*P + X_REQ``;
* read-back for period ``k``: mirrors a refill at the period start with an
  ``X_REQ`` grace window into the period.

Flush jobs decode the reduction pattern exactly: period index ``k`` is
expanded in mixed radix over the loops above the level; a tile's *last*
visit (all remaining reduction digits maxed) flushes at final precision,
every other visit flushes a partial sum, and every revisit is preceded by a
read-back job.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.accelerator import Accelerator
from repro.hardware.hierarchy import MemoryLevel
from repro.hardware.port import EndpointKind
from repro.mapping.footprint import operand_footprint_elements
from repro.mapping.loop import Loop, loops_product
from repro.mapping.mapping import Mapping
from repro.observability.tracer import current_tracer
from repro.workload.operand import Operand

PortKey = Tuple[str, str]


@dataclasses.dataclass(frozen=True)
class TransferJob:
    """One tile transfer: gate, compute-blocking threshold, size, ports.

    ``bits`` is the logical tile size; ``bits_per_port`` optionally gives
    the *physical* bytes each endpoint port must move when word-size
    padding differs between source and destination (a wide-word memory
    reads whole bursts even for a narrow tile). When omitted, every port
    moves ``bits``.
    """

    stream: str
    seq: int
    gate_c: float
    threshold_c: float
    bits: float
    dep: Optional[Tuple[str, int]] = None
    bits_per_port: Optional[Dict[PortKey, float]] = None

    def port_bits(self, key: PortKey) -> float:
        """Physical bits the given port moves for this job."""
        if self.bits_per_port is None:
            return self.bits
        return self.bits_per_port.get(key, self.bits)


@dataclasses.dataclass
class JobStream:
    """A periodic sequence of :class:`TransferJob` on fixed ports."""

    name: str
    kind: str                      # "refill" | "flush" | "readback"
    operand: Operand
    level: int
    period: int
    x_req: float
    ports: Tuple[PortKey, ...]
    jobs: List[TransferJob]

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def total_bits(self) -> float:
        """Bits the stream moves across the whole layer."""
        return sum(job.bits for job in self.jobs)


def _x_req_of(level: MemoryLevel, period: int, top_ir: int) -> float:
    """Table-I allowed window (shared machine semantics)."""
    if level.instance.double_buffered or top_ir <= 1:
        return float(period)
    return period / top_ir


def _port_key_and_bw(level: MemoryLevel, operand: Operand, kind: EndpointKind) -> Tuple[PortKey, float]:
    port = level.port_for(operand, kind)
    return (level.name, port.name), port.bandwidth * level.instance.instances


def _pad_to_burst(bits: float, *levels: MemoryLevel) -> float:
    """Round a transfer up to the coarsest endpoint word size."""
    import math

    burst = max((lvl.instance.min_burst_bits for lvl in levels), default=1)
    if burst <= 1:
        return bits
    return math.ceil(bits / burst) * burst


def _mixed_radix_digits(index: int, sizes: Sequence[int]) -> List[int]:
    """Expand ``index`` over ``sizes`` (inner first)."""
    digits = []
    for size in sizes:
        digits.append(index % size)
        index //= size
    return digits


def build_streams(accelerator: Accelerator, mapping: Mapping) -> List[JobStream]:
    """All job streams of ``mapping`` on ``accelerator``.

    Traced as one ``simulator.build_streams`` span with a
    ``simulator.stream`` event per lowered stream (kind, level, period,
    allowed window, job count, traffic), so a trace shows what the
    simulator is about to contend over before any event executes.
    """
    tracer = current_tracer()
    with tracer.span("simulator.build_streams") as span:
        streams: List[JobStream] = []
        streams.extend(_refill_streams(accelerator, mapping))
        streams.extend(_output_streams(accelerator, mapping))
        if tracer.enabled:
            span.set("streams", len(streams))
            span.set("jobs", sum(len(s) for s in streams))
            for stream in streams:
                tracer.event(
                    "simulator.stream",
                    stream=stream.name,
                    kind=stream.kind,
                    operand=str(stream.operand),
                    level=stream.level,
                    period=stream.period,
                    x_req=stream.x_req,
                    jobs=len(stream),
                    total_bits=stream.total_bits,
                )
    return streams


def _refill_streams(accelerator: Accelerator, mapping: Mapping) -> List[JobStream]:
    layer = mapping.layer
    temporal = mapping.temporal
    total_cc = temporal.total_cycles
    streams: List[JobStream] = []
    for operand in (Operand.W, Operand.I):
        chain = accelerator.hierarchy.levels(operand)
        for lvl in range(len(chain) - 1):
            dst, src = chain[lvl], chain[lvl + 1]
            ext = loops_product(temporal.ir_run_above(operand, lvl, layer))
            period = temporal.cycles_at_or_below(operand, lvl) * ext
            z_total = total_cc // period
            bits = float(mapping.footprint_bits(operand, lvl))
            top_ir = loops_product(temporal.top_ir_run(operand, lvl, layer))
            x_req = _x_req_of(dst, period, top_ir)
            src_key, __ = _port_key_and_bw(src, operand, EndpointKind.TL)
            dst_key, __ = _port_key_and_bw(dst, operand, EndpointKind.FH)
            per_port = {
                src_key: _pad_to_burst(bits, src),
                dst_key: _pad_to_burst(bits, dst),
            }
            name = f"{operand}-refill-L{lvl}"
            jobs: List[TransferJob] = []
            for k in range(z_total):
                if k == 0:
                    gate, threshold = float("-inf"), 0.0
                elif dst.instance.double_buffered:
                    gate, threshold = float((k - 1) * period), float(k * period)
                else:
                    gate, threshold = k * period - x_req, float(k * period)
                # Cross-level dependencies are resolved once all levels exist.
                jobs.append(
                    TransferJob(name, k, gate, threshold, bits, dep=None,
                                bits_per_port=per_port)
                )
            streams.append(
                JobStream(
                    name=name,
                    kind="refill",
                    operand=operand,
                    level=lvl,
                    period=period,
                    x_req=x_req,
                    ports=(src_key, dst_key),
                    jobs=jobs,
                )
            )
        # Chain refills across levels now that every level's stream exists.
        _resolve_refill_deps(streams, operand)
    return streams


def _resolve_refill_deps(streams: List[JobStream], operand: Operand) -> None:
    """Attach each refill job's dependency on the covering upper-level job.

    The tile for compute window ``[k*P, (k+1)*P)`` at level ``l`` must come
    out of the upper-level tile covering time ``k*P``, i.e. job
    ``(k*P) // P_upper`` of the level-``l+1`` refill stream.
    """
    by_name = {s.name: s for s in streams}
    for stream in streams:
        if stream.kind != "refill" or stream.operand is not operand:
            continue
        upper = by_name.get(f"{operand}-refill-L{stream.level + 1}")
        if upper is None or not upper.jobs:
            continue
        z_upper = len(upper.jobs)
        stream.jobs = [
            dataclasses.replace(
                job,
                dep=(upper.name, min((job.seq * stream.period) // upper.period, z_upper - 1)),
            )
            for job in stream.jobs
        ]


def _output_streams(accelerator: Accelerator, mapping: Mapping) -> List[JobStream]:
    layer = mapping.layer
    temporal = mapping.temporal
    total_cc = temporal.total_cycles
    operand = Operand.O
    chain = accelerator.hierarchy.levels(operand)
    streams: List[JobStream] = []
    for lvl in range(len(chain) - 1):
        low, high = chain[lvl], chain[lvl + 1]
        ext_run = temporal.ir_run_above(operand, lvl, layer)
        ext = loops_product(ext_run)
        period = temporal.cycles_at_or_below(operand, lvl) * ext
        z_total = total_cc // period
        # Loops above the (extended) period window, inner first.
        above: Tuple[Loop, ...] = temporal.loops_above(operand, lvl)[len(ext_run):]
        sizes = [loop.size for loop in above]
        is_ir = [
            layer.relevance(operand, loop.dim, pr_as_r=True) == "ir" for loop in above
        ]
        elements = operand_footprint_elements(
            layer, operand, temporal, mapping.spatial, lvl
        )
        partial_bits = float(elements * layer.precision.of(operand, partial=True))
        final_bits = float(elements * layer.precision.of(operand, partial=False))
        top_ir = loops_product(temporal.top_ir_run(operand, lvl, layer))
        x_req = _x_req_of(low, period, top_ir)

        low_th, __ = _port_key_and_bw(low, operand, EndpointKind.TH)
        high_fl, __ = _port_key_and_bw(high, operand, EndpointKind.FL)

        def _per_port(bits, src_level, src_port, dst_level, dst_port):
            return {
                src_port: _pad_to_burst(bits, src_level),
                dst_port: _pad_to_burst(bits, dst_level),
            }

        flush_name = f"O-flush-L{lvl}"
        flush_jobs: List[TransferJob] = []
        rb_jobs: List[TransferJob] = []
        rb_name = f"O-readback-L{lvl}"
        high_tl, __ = _port_key_and_bw(high, operand, EndpointKind.TL)
        low_fh, __ = _port_key_and_bw(low, operand, EndpointKind.FH)
        for k in range(z_total):
            digits = _mixed_radix_digits(k, sizes)
            last_visit = all(
                d == s - 1 for d, s, ir in zip(digits, sizes, is_ir) if ir
            )
            first_visit = all(d == 0 for d, __, ir in zip(digits, sizes, is_ir) if ir)
            bits = final_bits if last_visit else partial_bits
            flush_jobs.append(
                TransferJob(
                    flush_name,
                    k,
                    gate_c=float((k + 1) * period),
                    threshold_c=(k + 1) * period + x_req,
                    bits=bits,
                    bits_per_port=_per_port(bits, low, low_th, high, high_fl),
                )
            )
            if not first_visit:
                rb_jobs.append(
                    TransferJob(
                        rb_name,
                        len(rb_jobs),
                        gate_c=k * period - x_req,
                        threshold_c=k * period + x_req,
                        bits=partial_bits,
                        dep=(flush_name, k - 1) if k >= 1 else None,
                        bits_per_port=_per_port(
                            partial_bits, high, high_tl, low, low_fh
                        ),
                    )
                )
        streams.append(
            JobStream(
                name=flush_name,
                kind="flush",
                operand=operand,
                level=lvl,
                period=period,
                x_req=x_req,
                ports=(low_th, high_fl),
                jobs=flush_jobs,
            )
        )
        if rb_jobs:
            high_tl, __ = _port_key_and_bw(high, operand, EndpointKind.TL)
            low_fh, __ = _port_key_and_bw(low, operand, EndpointKind.FH)
            streams.append(
                JobStream(
                    name=rb_name,
                    kind="readback",
                    operand=operand,
                    level=lvl,
                    period=period,
                    x_req=x_req,
                    ports=(high_tl, low_fh),
                    jobs=rb_jobs,
                )
            )
    return streams
