"""Execution traces: what the simulator did, cycle by cycle.

A :class:`TraceRecorder` passed to the engine collects every transfer
job's wall-clock start/end, the compute clock's stall intervals, and can
render a condensed text timeline or export rows for offline analysis —
the debugging view used to diagnose model/simulator disagreements.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class JobEvent:
    """One completed transfer job."""

    stream: str
    seq: int
    start: float
    end: float
    bits: float

    @property
    def duration(self) -> float:
        """Wall-clock cycles the transfer was in flight."""
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class StallInterval:
    """A wall-clock interval during which the compute clock was frozen."""

    start: float
    end: float
    compute_position: float

    @property
    def duration(self) -> float:
        """Length of the stall in cycles."""
        return self.end - self.start


class TraceRecorder:
    """Collects job and stall events from one simulation run."""

    def __init__(self) -> None:
        self.jobs: List[JobEvent] = []
        self.stalls: List[StallInterval] = []
        self._open_jobs: Dict[Tuple[str, int], float] = {}
        self._stall_began: Optional[float] = None
        self._stall_at_c: float = 0.0

    # ------------------------------------------------------------------ #
    # Hooks called by the engine
    # ------------------------------------------------------------------ #

    def job_started(self, stream: str, seq: int, t: float) -> None:
        """Record a transfer entering flight."""
        self._open_jobs[(stream, seq)] = t

    def job_finished(self, stream: str, seq: int, t: float, bits: float) -> None:
        """Record a transfer completing."""
        start = self._open_jobs.pop((stream, seq), t)
        self.jobs.append(JobEvent(stream, seq, start, t, bits))

    def compute_state(self, computing: bool, t: float, c: float) -> None:
        """Record compute-clock stall transitions."""
        if not computing and self._stall_began is None:
            self._stall_began = t
            self._stall_at_c = c
        elif computing and self._stall_began is not None:
            if t > self._stall_began:
                self.stalls.append(
                    StallInterval(self._stall_began, t, self._stall_at_c)
                )
            self._stall_began = None

    def finish(self, t: float) -> None:
        """Close any open stall interval at simulation end."""
        if self._stall_began is not None and t > self._stall_began:
            self.stalls.append(StallInterval(self._stall_began, t, self._stall_at_c))
            self._stall_began = None

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #

    def stall_by_position(self, bins: int = 10, horizon: Optional[float] = None) -> List[float]:
        """Total stall cycles binned by compute position (where it stalls)."""
        if not self.stalls:
            return [0.0] * bins
        horizon = horizon or max(s.compute_position for s in self.stalls) or 1.0
        out = [0.0] * bins
        for stall in self.stalls:
            index = min(bins - 1, int(bins * stall.compute_position / horizon))
            out[index] += stall.duration
        return out

    def busiest_streams(self, top: int = 5) -> List[Tuple[str, float]]:
        """Streams ranked by total in-flight time."""
        totals: Dict[str, float] = {}
        for job in self.jobs:
            totals[job.stream] = totals.get(job.stream, 0.0) + job.duration
        return sorted(totals.items(), key=lambda kv: -kv[1])[:top]

    def as_rows(self) -> List[Dict[str, float]]:
        """Job events as flat rows (CSV-exportable)."""
        return [
            {
                "stream": job.stream,  # type: ignore[dict-item]
                "seq": job.seq,
                "start": job.start,
                "end": job.end,
                "bits": job.bits,
            }
            for job in sorted(self.jobs, key=lambda j: j.start)
        ]

    def render(self, width: int = 72, horizon: Optional[float] = None) -> str:
        """Condensed text timeline: stall density over wall-clock time."""
        if horizon is None:
            ends = [j.end for j in self.jobs] + [s.end for s in self.stalls]
            horizon = max(ends) if ends else 1.0
        scale = horizon / width
        row = ["." for __ in range(width)]
        for stall in self.stalls:
            lo = min(width - 1, int(stall.start / scale))
            hi = min(width - 1, int(stall.end / scale))
            for i in range(lo, hi + 1):
                row[i] = "S"
        total_stall = sum(s.duration for s in self.stalls)
        return (
            f"wall-clock stall map ({total_stall:.0f} stalled of {horizon:.0f} cc):\n"
            + "".join(row)
        )
