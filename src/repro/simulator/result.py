"""Simulation results: measured cycles and where they went."""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Outcome of one cycle-level simulation run.

    ``total_cycles`` is the wall-clock cycle count from layer start to the
    last byte drained — directly comparable with
    :attr:`repro.core.report.LatencyReport.total_cycles`.
    """

    total_cycles: float
    compute_cycles: int
    preload_cycles: float
    stall_cycles: float
    drain_tail_cycles: float
    port_busy: Dict[Tuple[str, str], float]
    jobs_completed: int
    events: int

    @property
    def utilization_proxy(self) -> float:
        """Fraction of wall-clock time the MAC array was computing."""
        return self.compute_cycles / self.total_cycles if self.total_cycles else 0.0

    def port_utilization(self, port: Tuple[str, str], bandwidth: float) -> float:
        """Busy fraction of one port given its bandwidth (bits/cycle)."""
        if self.total_cycles <= 0:
            return 0.0
        return self.port_busy.get(port, 0.0) / (bandwidth * self.total_cycles)

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            "Simulation:",
            f"  total        = {self.total_cycles:12.1f} cc",
            f"  compute      = {self.compute_cycles:12d} cc",
            f"  preload      = {self.preload_cycles:12.1f} cc",
            f"  stall        = {self.stall_cycles:12.1f} cc",
            f"  drain tail   = {self.drain_tail_cycles:12.1f} cc",
            f"  jobs/events  = {self.jobs_completed} / {self.events}",
        ]
        return "\n".join(lines)


def accuracy(model_cycles: float, simulated_cycles: float) -> float:
    """The paper's accuracy metric: ``1 - |model - truth| / truth``."""
    if simulated_cycles <= 0:
        raise ValueError("simulated cycle count must be positive")
    return 1.0 - abs(model_cycles - simulated_cycles) / simulated_cycles


def within_band(
    model_cycles: float,
    simulated_cycles: float,
    rel_band: float = 2.5,
    abs_slack: float = 16.0,
) -> bool:
    """Whether the analytical CC sits inside the differential tolerance band.

    The band is multiplicative either way (``sim/rel <= model <= sim*rel``)
    plus an additive ``abs_slack`` that forgives integer boundary effects
    on tiny layers. This is the oracle both the legacy random-machine test
    and :mod:`repro.verify.properties` apply to model-vs-simulator pairs.
    """
    if rel_band < 1.0:
        raise ValueError("rel_band must be >= 1")
    upper = simulated_cycles * rel_band + abs_slack
    lower = simulated_cycles / rel_band - abs_slack
    return lower <= model_cycles <= upper
