"""The discrete-event execution engine.

The machine state is a *compute clock* ``c`` (ideal temporal-schedule
cycles completed, 0 .. CC_spatial) advancing at rate 1 whenever no
unfinished transfer job blocks it, plus a set of in-flight transfer jobs
draining bits through shared ports.

Arbitration: ports are processor-shared — an active port splits its
bandwidth equally among the jobs currently using it, and a job's transfer
rate is the minimum of its shares across the (up to two) ports it touches.
This approximates the word-interleaved round-robin of a real bus arbiter.

Within a stream jobs are serialized (a link moves one tile at a time);
across levels, refill jobs wait for the covering upper-level tile
(cut-through is not modeled — a tile must land before it is forwarded,
which is how the validation chip's DMA chain behaves).

The engine advances in variable-length segments bounded by the next event:
a job finishing, the compute clock hitting a blocking threshold or a job's
start gate, or computation completing. All stall behaviour *emerges* from
these mechanics; no closed-form stall expression appears anywhere here.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.hardware.accelerator import Accelerator
from repro.mapping.mapping import Mapping
from repro.observability.tracer import current_tracer
from repro.simulator.result import SimulationResult
from repro.simulator.streams import JobStream, PortKey, TransferJob, build_streams
from repro.simulator.trace import TraceRecorder

_EPS = 1e-9


@dataclasses.dataclass
class _StreamState:
    """Mutable cursor over one stream's serialized jobs.

    ``remaining`` tracks the in-flight job's bits *per port*: source and
    destination may move different physical sizes (word-padding) and each
    progresses at its own port share; the job completes when every port is
    drained (store-and-forward through the link buffer).
    """

    stream: JobStream
    next_index: int = 0          # first job not yet completed
    active: Optional[TransferJob] = None
    remaining: Optional[Dict[PortKey, float]] = None

    @property
    def frontier(self) -> Optional[TransferJob]:
        """Oldest incomplete job (active or not yet started)."""
        if self.active is not None:
            return self.active
        if self.next_index < len(self.stream.jobs):
            return self.stream.jobs[self.next_index]
        return None

    @property
    def done(self) -> bool:
        return self.active is None and self.next_index >= len(self.stream.jobs)

    def start(self, job: TransferJob) -> None:
        """Put ``job`` in flight."""
        self.active = job
        self.remaining = {
            key: job.port_bits(key) for key in self.stream.ports
        }

    def finish(self) -> None:
        """Clear the in-flight job and advance the cursor."""
        self.active = None
        self.remaining = None
        self.next_index += 1


class CycleSimulator:
    """Cycle-level reference simulator for one mapping on one accelerator.

    Parameters
    ----------
    accelerator / mapping:
        The design point to execute.
    max_events:
        Safety valve against runaway simulations; raises ``RuntimeError``
        when exceeded.
    """

    def __init__(
        self,
        accelerator: Accelerator,
        mapping: Mapping,
        max_events: int = 5_000_000,
        trace: Optional["TraceRecorder"] = None,
    ) -> None:
        self.accelerator = accelerator
        self.mapping = mapping
        self.max_events = max_events
        self.trace = trace
        self._port_bw: Dict[PortKey, float] = {}
        for level in accelerator.hierarchy.unique_levels():
            for port in level.instance.ports:
                self._port_bw[(level.name, port.name)] = (
                    port.bandwidth * level.instance.instances
                )

    # ------------------------------------------------------------------ #

    def run(self) -> SimulationResult:
        """Execute the layer and return the measured timing.

        Runs under a ``simulator.run`` span on the ambient tracer (one
        per simulation, carrying the measured timing decomposition), so
        simulator-validated runs show up in traces and HTML reports
        alongside the analytical model's spans.
        """
        tracer = current_tracer()
        with tracer.span("simulator.run") as span:
            result = self._execute()
            if tracer.enabled:
                span.set_many(
                    accelerator=self.accelerator.name,
                    layer=self.mapping.layer.name or "?",
                    total_cycles=result.total_cycles,
                    compute_cycles=result.compute_cycles,
                    preload_cycles=result.preload_cycles,
                    stall_cycles=result.stall_cycles,
                    drain_tail_cycles=result.drain_tail_cycles,
                    jobs_completed=result.jobs_completed,
                    events=result.events,
                )
        return result

    def _execute(self) -> SimulationResult:
        total_cc = self.mapping.temporal.total_cycles
        states = [_StreamState(s) for s in build_streams(self.accelerator, self.mapping)]
        completed_upto: Dict[str, int] = {st.stream.name: -1 for st in states}

        t = 0.0                   # wall-clock cycles
        c = 0.0                   # compute-local progress
        stall = 0.0
        preload_end: Optional[float] = None
        compute_end: Optional[float] = None
        port_busy: Dict[PortKey, float] = {}
        jobs_done = 0
        events = 0

        while True:
            events += 1
            if events > self.max_events:
                raise RuntimeError(
                    f"simulation exceeded {self.max_events} events "
                    f"({jobs_done} jobs done, t={t:.0f}, c={c:.0f})"
                )

            # 1. Start every startable frontier job.
            for st in states:
                if st.active is not None or st.done:
                    continue
                job = st.stream.jobs[st.next_index]
                if job.gate_c > c + _EPS:
                    continue
                if job.dep is not None and completed_upto[job.dep[0]] < job.dep[1]:
                    continue
                st.start(job)
                if self.trace is not None:
                    self.trace.job_started(st.stream.name, job.seq, t)

            # 2. Compute-clock limit: the lowest blocking threshold.
            limit = float("inf")
            for st in states:
                job = st.frontier
                if job is not None:
                    limit = min(limit, job.threshold_c)

            computing = c < total_cc - _EPS and c < limit - _EPS
            if self.trace is not None:
                self.trace.compute_state(computing or c >= total_cc - _EPS, t, c)

            # 3. Port shares: each port splits its bandwidth among the jobs
            # that still have bits pending on it; a job progresses on every
            # such port independently (store-and-forward buffering).
            port_users: Dict[PortKey, int] = {}
            for st in states:
                if st.active is not None and st.remaining is not None:
                    for key, rem in st.remaining.items():
                        if rem > _EPS:
                            port_users[key] = port_users.get(key, 0) + 1
            rates: List[Tuple[_StreamState, PortKey, float]] = []
            for st in states:
                if st.active is None or st.remaining is None:
                    continue
                for key, rem in st.remaining.items():
                    if rem > _EPS:
                        rates.append(
                            (st, key, self._port_bw[key] / port_users[key])
                        )

            # 4. Next event horizon.
            dt = float("inf")
            if computing:
                dt = min(dt, total_cc - c)
                if limit < float("inf"):
                    dt = min(dt, limit - c)
                for st in states:
                    if st.active is None and not st.done:
                        gate = st.stream.jobs[st.next_index].gate_c
                        if gate > c + _EPS:
                            dt = min(dt, gate - c)
            for st, key, rate in rates:
                if rate > 0:
                    dt = min(dt, st.remaining[key] / rate)

            if dt == float("inf"):
                if c >= total_cc - _EPS and all(st.done for st in states):
                    break
                blocked = [st.stream.name for st in states if not st.done]
                raise RuntimeError(
                    f"simulation deadlock at t={t:.0f}, c={c:.0f}; "
                    f"pending streams: {blocked}"
                )
            dt = max(dt, 0.0)

            # 5. Advance.
            t += dt
            if computing:
                c = min(c + dt, float(total_cc))
            elif c < total_cc - _EPS:
                stall += dt
            for st, key, rate in rates:
                st.remaining[key] = max(0.0, st.remaining[key] - rate * dt)
                port_busy[key] = port_busy.get(key, 0.0) + rate * dt

            if preload_end is None and c > _EPS:
                # Compute started during this segment: preload ended at its start.
                preload_end = t - dt
            if compute_end is None and c >= total_cc - _EPS:
                compute_end = t

            # 6. Completions (all ports drained).
            for st in {id(st): st for st, __, __r in rates}.values():
                if st.active is None or st.remaining is None:
                    continue
                if all(rem <= _EPS for rem in st.remaining.values()):
                    job = st.active
                    completed_upto[st.stream.name] = job.seq
                    st.finish()
                    jobs_done += 1
                    if self.trace is not None:
                        self.trace.job_finished(st.stream.name, job.seq, t, job.bits)

            if c >= total_cc - _EPS and all(st.done for st in states):
                break

        if compute_end is None:
            compute_end = t
        if preload_end is None:
            preload_end = 0.0
        if self.trace is not None:
            self.trace.finish(t)
        return SimulationResult(
            total_cycles=t,
            compute_cycles=total_cc,
            preload_cycles=preload_end,
            stall_cycles=max(0.0, stall - preload_end),
            drain_tail_cycles=t - compute_end,
            port_busy=port_busy,
            jobs_completed=jobs_done,
            events=events,
        )
