"""Event-driven cycle-level reference simulator (validation substrate).

The paper validates its analytical model against RTL simulation of a
taped-out accelerator (Fig. 5c). That chip is not available, so this
package provides the substitute ground truth: a stateful, event-driven
simulator of the same abstract machine. Nothing here shares code with the
closed-form stall equations — stalls *emerge* from simulated port
contention, keep-out windows, refill pipelines and drain deadlines — which
is what makes the model-vs-simulator comparison meaningful.

* :mod:`~repro.simulator.streams` — lowers a mapping onto periodic
  transfer-job streams (refills, flushes, partial-sum read-backs) with
  precise first/last-visit decoding for the output reduction pattern;
* :mod:`~repro.simulator.engine` — the discrete-event executor: a compute
  clock gated by job thresholds, processor-sharing port arbitration, and
  dependency-chained multi-hop refills;
* :class:`~repro.simulator.result.SimulationResult` — measured cycles,
  stall anatomy and per-port busy statistics;
* :mod:`~repro.simulator.rtl` — a register-stage-accurate *second* oracle
  (tick-driven, fixed-priority arbiters, its own lowering) that shares no
  evaluation code with the event engine, enabling three-way differential
  verification in :mod:`repro.verify`.
"""

from repro.simulator.engine import CycleSimulator
from repro.simulator.result import SimulationResult, accuracy
from repro.simulator.rtl import RtlSimulationResult, RtlSimulator
from repro.simulator.streams import JobStream, TransferJob, build_streams
from repro.simulator.trace import JobEvent, StallInterval, TraceRecorder

__all__ = [
    "CycleSimulator",
    "JobEvent",
    "JobStream",
    "RtlSimulationResult",
    "RtlSimulator",
    "SimulationResult",
    "StallInterval",
    "TraceRecorder",
    "TransferJob",
    "accuracy",
    "build_streams",
]
