"""Register-stage-accurate second oracle for the verify fleet.

A structurally independent re-implementation of the abstract machine:
explicit cycle-callable components (per-port fixed-priority arbiters,
FIFO'd DTL transfer engines, per-unit-memory preload/offload engines, a
MAC-array issue stage) driven by a tick scheduler, sharing *no*
evaluation code with the event-driven :class:`~repro.simulator.engine.
CycleSimulator`. Agreement between the two — exact on the certified
integral/uncontended subset, banded elsewhere — is what turns the
model-vs-simulator band check into three-way differential testing.

* :mod:`~repro.simulator.rtl.program` — the independent lowering to
  per-engine transfer FIFOs plus the static exactness analysis;
* :mod:`~repro.simulator.rtl.components` — the cycle-callable stages;
* :mod:`~repro.simulator.rtl.sim` — the tick scheduler and the
  measured :class:`~repro.simulator.rtl.sim.RtlSimulationResult`.
"""

from repro.simulator.rtl.components import (
    MacArrayIssueStage,
    OffloadEngine,
    PortArbiter,
    PreloadEngine,
    TransferEngine,
)
from repro.simulator.rtl.program import (
    EnginePlan,
    MachineProgram,
    TransferStep,
    lower_program,
)
from repro.simulator.rtl.sim import RtlSimulationResult, RtlSimulator

__all__ = [
    "EnginePlan",
    "MacArrayIssueStage",
    "MachineProgram",
    "OffloadEngine",
    "PortArbiter",
    "PreloadEngine",
    "RtlSimulationResult",
    "RtlSimulator",
    "TransferEngine",
    "TransferStep",
    "lower_program",
]
