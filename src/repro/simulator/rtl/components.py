"""Cycle-callable hardware components of the RTL backend.

Each class models one register stage of the abstract machine and exposes
tick-granular methods the scheduler calls in a fixed order every cycle:

* :class:`PortArbiter` — one per physical port. Fixed-priority,
  work-conserving: requesters are served in the documented rank order
  (refills > read-backs > flushes; W > I > O; inner levels first) and any
  bandwidth a winner leaves on the table cascades to the next requester
  in the same cycle. Contended cycles are counted — a port cycle with two
  or more requesters is exactly where this policy can diverge from the
  event engine's processor sharing, so the count is the dynamic half of
  the exactness certificate.
* :class:`TransferEngine` — one per DTL FIFO. Holds at most one
  :class:`~repro.simulator.rtl.program.TransferStep` in flight
  (store-and-forward: a tile must fully land before the next is issued)
  and tracks the per-port bits still to drain.
* :class:`PreloadEngine` / :class:`OffloadEngine` — one pair per unit
  memory. The preload engine owns the inbound FIFOs (refills and partial
  -sum read-backs into the memory), the offload engine the outbound
  flush FIFO; each issues its engines' startable steps at tick start and
  accumulates the unit memory's measured traffic.
* :class:`MacArrayIssueStage` — the compute front end: issues one
  temporal iteration per cycle while no engine's blocking threshold has
  been reached, and attributes every stalled cycle to the unit memories
  whose pending transfers block it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.simulator.rtl.program import EnginePlan, PortKey, TransferStep

_EPS = 1e-9


class TransferEngine:
    """One DTL's FIFO of transfer steps, at most one in flight."""

    def __init__(self, plan: EnginePlan) -> None:
        self.plan = plan
        self.name = plan.name
        self.priority = plan.priority
        self._next = 0
        self.active: Optional[TransferStep] = None
        self._remaining: Dict[PortKey, float] = {}
        self.bits_moved = 0.0

    @property
    def done(self) -> bool:
        return self.active is None and self._next >= len(self.plan.steps)

    @property
    def frontier(self) -> Optional[TransferStep]:
        """Oldest unretired step — in flight or still queued."""
        if self.active is not None:
            return self.active
        if self._next < len(self.plan.steps):
            return self.plan.steps[self._next]
        return None

    def next_gate(self) -> Optional[float]:
        """Gate of the queued head, when idle (None when busy or done)."""
        if self.active is None and self._next < len(self.plan.steps):
            return self.plan.steps[self._next].gate
        return None

    def try_issue(self, c: int, retired: Dict[str, int]) -> Optional[TransferStep]:
        """Put the queued head in flight if its gate and dependency allow."""
        if self.active is not None or self._next >= len(self.plan.steps):
            return None
        step = self.plan.steps[self._next]
        if step.gate > c + _EPS:
            return None
        if step.dep is not None and retired.get(step.dep[0], -1) < step.dep[1]:
            return None
        self.active = step
        self._remaining = {key: bits for key, bits in step.legs}
        return step

    def pending(self, port: PortKey) -> float:
        """Bits this engine still needs to move through ``port``."""
        if self.active is None:
            return 0.0
        return self._remaining.get(port, 0.0)

    def drain(self, port: PortKey, bits: float) -> None:
        """Consume a granted allocation on one leg."""
        if bits > 0.0 and port in self._remaining:
            self._remaining[port] = max(0.0, self._remaining[port] - bits)

    def maybe_retire(self) -> Optional[TransferStep]:
        """Retire the in-flight step once every leg has drained."""
        if self.active is None:
            return None
        if any(rem > _EPS for rem in self._remaining.values()):
            return None
        step = self.active
        self.active = None
        self._remaining = {}
        self._next += 1
        self.bits_moved += step.bits
        return step


class PortArbiter:
    """Fixed-priority, work-conserving arbiter for one physical port.

    Every cycle the scheduler hands it the engines requesting the port;
    grants are issued in ascending ``priority`` order, each engine taking
    ``min(pending, capacity_left)``, so leftover bandwidth cascades
    downward instead of being wasted. The policy is deliberately *not*
    the event engine's equal split: under contention the two backends
    disagree by design, which is why contended cycles void the
    exact-match certificate and fall back to the banded comparison.
    """

    def __init__(self, key: PortKey, bandwidth: float) -> None:
        self.key = key
        self.bandwidth = bandwidth
        self.busy_bits = 0.0
        self.contended_cycles = 0.0

    def arbitrate(
        self, requesters: List[TransferEngine], cycles: float = 1.0
    ) -> List[Tuple[TransferEngine, float]]:
        """Grant this cycle's bandwidth; returns per-engine bit rates.

        ``cycles`` scales the bookkeeping when the scheduler replays the
        identical grant pattern over a run of cycles (see the stride
        fast-path in :mod:`repro.simulator.rtl.sim`); the grants returned
        are always per-cycle rates.
        """
        queue = sorted(
            (e for e in requesters if e.pending(self.key) > _EPS),
            key=lambda e: e.priority,
        )
        if len(queue) >= 2:
            self.contended_cycles += cycles
        grants: List[Tuple[TransferEngine, float]] = []
        left = self.bandwidth
        for engine in queue:
            if left <= _EPS:
                break
            grant = min(engine.pending(self.key), left)
            left -= grant
            grants.append((engine, grant))
        return grants


class PreloadEngine:
    """Inbound side of one unit memory: refill + read-back FIFOs."""

    direction = "preload"

    def __init__(self, unit_memory: str, engines: Iterable[TransferEngine]) -> None:
        self.unit_memory = unit_memory
        self.engines = tuple(engines)

    def issue(self, c: int, retired: Dict[str, int]) -> List[TransferStep]:
        """Start every startable inbound step at tick start."""
        issued = []
        for engine in self.engines:
            step = engine.try_issue(c, retired)
            if step is not None:
                issued.append(step)
        return issued

    @property
    def bits_moved(self) -> float:
        return sum(e.bits_moved for e in self.engines)


class OffloadEngine(PreloadEngine):
    """Outbound side of one unit memory: the flush FIFO.

    Same issue mechanics as the preload side — modelled separately so a
    unit memory can preload the next tile while the previous one drains,
    exactly the overlap the predictable-offloading formalization allows.
    """

    direction = "offload"


class MacArrayIssueStage:
    """The compute front end: one temporal iteration per unstalled cycle."""

    def __init__(self, total_cycles: int) -> None:
        self.total_cycles = total_cycles
        self.c = 0
        self.stall_cycles = 0.0
        self.stall_by_memory: Dict[str, float] = {}

    @property
    def finished(self) -> bool:
        return self.c >= self.total_cycles

    def can_issue(self, limit: float) -> bool:
        """Whether the next iteration may issue under ``limit``."""
        return not self.finished and self.c < limit - _EPS

    def issue(self, cycles: int) -> None:
        """Issue ``cycles`` consecutive iterations (scheduler-validated)."""
        self.c += cycles

    def stall(self, cycles: float, blockers: List[str]) -> None:
        """Record stalled cycles, split across the blocking unit memories."""
        self.stall_cycles += cycles
        if blockers:
            share = cycles / len(blockers)
            for key in blockers:
                self.stall_by_memory[key] = (
                    self.stall_by_memory.get(key, 0.0) + share
                )
