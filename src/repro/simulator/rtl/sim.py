"""The register-stage-accurate tick scheduler.

Where :class:`repro.simulator.engine.CycleSimulator` advances continuous
time in variable-length event segments with processor-shared ports, this
backend calls every component once per integer cycle in a fixed order:

1. **issue** — each unit memory's preload/offload engine puts startable
   steps in flight, using the compute count *before* this cycle;
2. **compute decision** — the MAC-array issue stage may issue one
   temporal iteration iff no engine's blocking threshold is reached;
3. **arbitration** — every port's fixed-priority arbiter grants this
   cycle's bandwidth to its requesters (leftover cascades down-rank);
4. **retire** — at cycle end, steps whose legs all drained retire,
   unblocking dependents from the *next* cycle; the compute count
   increments.

CC_comp, CC_preload, CC_offload and the per-unit-memory stall
decomposition are *measured* off this tick stream, not computed.

Exactness
---------
When the lowered program is *integral* (every gate, threshold and leg
duration a whole number of cycles — ``MachineProgram.integral``) and the
run observed **zero contended port cycles**, the two backends' schedules
coincide event for event: every event-engine instant (gate crossing,
threshold block, leg completion) falls on a cycle boundary, and with at
most one requester per port per cycle the fixed-priority grant equals
the processor share. By induction on the first divergence, total cycle
counts must then match **exactly** — the three-way property in
:mod:`repro.verify.properties` asserts equality, not a band, on this
subset. Any contended or fractional case falls back to the sim-vs-sim
band.

A *stride* fast path replays a provably-stable cycle verbatim over a run
of cycles (bounded so no issue, retire, gate crossing or threshold block
can occur inside the run). It is a pure scheduling optimization: state
updates are the same arithmetic, so results are bit-identical with
``stride=False`` (pinned by ``tests/simulator/rtl``).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

from repro.hardware.accelerator import Accelerator
from repro.mapping.mapping import Mapping
from repro.observability.tracer import current_tracer
from repro.simulator.result import SimulationResult
from repro.simulator.rtl.components import (
    MacArrayIssueStage,
    OffloadEngine,
    PortArbiter,
    PreloadEngine,
    TransferEngine,
)
from repro.simulator.rtl.program import MachineProgram, PortKey, lower_program
from repro.simulator.trace import TraceRecorder

_EPS = 1e-9


@dataclasses.dataclass(frozen=True)
class RtlSimulationResult(SimulationResult):
    """A :class:`SimulationResult` plus the RTL backend's measurements.

    ``exact`` certifies that the run satisfied both exactness conditions
    (integral program, zero contended port cycles) — the subset on which
    the event backend must agree on ``total_cycles`` to the cycle.
    ``stall_by_memory`` is the *measured* per-unit-memory stall
    decomposition, keyed like the ledger's ``ss_comb`` map
    (``"W@LB/L0"``).
    """

    exact: bool = False
    integral: bool = False
    contended_port_cycles: float = 0.0
    stall_by_memory: Dict[str, float] = dataclasses.field(default_factory=dict)
    preload_bits: float = 0.0
    offload_bits: float = 0.0

    def summary(self) -> str:
        base = super().summary().replace("Simulation:", "RTL simulation:")
        lines = [
            base,
            f"  exact        = {self.exact} "
            f"(integral={self.integral}, "
            f"contended={self.contended_port_cycles:.0f} port-cycles)",
        ]
        for key in sorted(self.stall_by_memory):
            lines.append(f"  stall[{key}] = {self.stall_by_memory[key]:12.1f} cc")
        return "\n".join(lines)


class RtlSimulator:
    """Tick-driven second oracle for one mapping on one accelerator.

    Shares no evaluation code with the event engine: its own lowering
    (:mod:`repro.simulator.rtl.program`), its own components, its own
    scheduler. The only shared surface is the result shape.
    """

    def __init__(
        self,
        accelerator: Accelerator,
        mapping: Mapping,
        max_cycles: int = 50_000_000,
        trace: Optional[TraceRecorder] = None,
        stride: bool = True,
    ) -> None:
        self.accelerator = accelerator
        self.mapping = mapping
        self.max_cycles = max_cycles
        self.trace = trace
        self.stride = stride
        self.program: MachineProgram = lower_program(accelerator, mapping)

    # ------------------------------------------------------------------ #

    def run(self) -> RtlSimulationResult:
        """Execute the layer tick by tick and measure the timing."""
        tracer = current_tracer()
        with tracer.span("simulator.rtl.run") as span:
            result = self._execute()
            if tracer.enabled:
                span.set_many(
                    accelerator=self.accelerator.name,
                    layer=self.mapping.layer.name or "?",
                    total_cycles=result.total_cycles,
                    stall_cycles=result.stall_cycles,
                    preload_cycles=result.preload_cycles,
                    drain_tail_cycles=result.drain_tail_cycles,
                    exact=result.exact,
                    contended_port_cycles=result.contended_port_cycles,
                )
        return result

    # ------------------------------------------------------------------ #

    def _build(self) -> Tuple[
        List[TransferEngine], List[PreloadEngine], Dict[PortKey, PortArbiter],
        MacArrayIssueStage,
    ]:
        engines = [TransferEngine(plan) for plan in self.program.plans]
        arbiters = {
            key: PortArbiter(key, bw)
            for key, bw in self.program.port_bandwidth.items()
        }
        inbound: Dict[str, List[TransferEngine]] = {}
        outbound: Dict[str, List[TransferEngine]] = {}
        for engine in engines:
            side = outbound if engine.plan.kind == "flush" else inbound
            side.setdefault(engine.plan.unit_memory, []).append(engine)
        units: List[PreloadEngine] = []
        for key in sorted(set(inbound) | set(outbound)):
            if key in inbound:
                units.append(PreloadEngine(key, inbound[key]))
            if key in outbound:
                units.append(OffloadEngine(key, outbound[key]))
        issue = MacArrayIssueStage(self.program.total_cycles)
        return engines, units, arbiters, issue

    def _execute(self) -> RtlSimulationResult:
        engines, units, arbiters, mac = self._build()
        retired: Dict[str, int] = {e.name: -1 for e in engines}
        ports_of: Dict[int, Tuple[PortKey, ...]] = {
            id(e): e.plan.ports for e in engines
        }

        t = 0
        iterations = 0
        jobs_done = 0
        preload_end: Optional[int] = None
        compute_end: Optional[int] = None

        while True:
            iterations += 1
            if t > self.max_cycles or iterations > self.max_cycles:
                raise RuntimeError(
                    f"RTL simulation exceeded {self.max_cycles} cycles "
                    f"({jobs_done} steps retired, t={t}, c={mac.c})"
                )

            # 1. Issue stage. Zero-bit steps retire in place (the event
            # engine completes them in zero time too), possibly enabling
            # dependents at the same cycle, so iterate to a fixed point.
            while True:
                issued_any = False
                for unit in units:
                    for step in unit.issue(mac.c, retired):
                        issued_any = True
                        if self.trace is not None:
                            self.trace.job_started(step.engine, step.seq, float(t))
                for engine in engines:
                    if engine.active is not None and all(
                        engine.pending(p) <= _EPS for p in ports_of[id(engine)]
                    ):
                        step = engine.maybe_retire()
                        if step is not None:
                            retired[engine.name] = step.seq
                            jobs_done += 1
                            if self.trace is not None:
                                self.trace.job_finished(
                                    step.engine, step.seq, float(t), step.bits
                                )
                            issued_any = True
                if not issued_any:
                    break

            # 2. Compute decision under the lowest blocking threshold.
            limit = math.inf
            for engine in engines:
                step = engine.frontier
                if step is not None:
                    limit = min(limit, step.threshold)
            computing = mac.can_issue(limit)
            if self.trace is not None:
                self.trace.compute_state(
                    computing or mac.finished, float(t), float(mac.c)
                )

            # 3. Arbitration: per-port fixed-priority grants. Contention
            # is judged on the pre-drain request pattern (two or more
            # requesters with pending bits on one port this cycle).
            grants: List[Tuple[TransferEngine, PortKey, float]] = []
            contending: List[PortKey] = []
            for key, arbiter in arbiters.items():
                requesters = [
                    e for e in engines
                    if e.active is not None and e.pending(key) > _EPS
                ]
                if not requesters:
                    continue
                if len(requesters) >= 2:
                    contending.append(key)
                for engine, rate in arbiter.arbitrate(requesters, cycles=0.0):
                    grants.append((engine, key, rate))

            # 4. Stride: how many cycles this exact pattern provably
            # repeats (no gate crossing, threshold block, compute finish
            # or leg drain strictly inside the run).
            n = 1
            if self.stride:
                bounds: List[int] = []
                if computing:
                    bounds.append(mac.total_cycles - mac.c)
                    if limit < math.inf:
                        bounds.append(max(1, math.ceil(limit - mac.c - _EPS)))
                    for engine in engines:
                        gate = engine.next_gate()
                        if gate is not None and gate > mac.c + _EPS:
                            bounds.append(max(1, math.ceil(gate - mac.c - _EPS)))
                for engine, key, rate in grants:
                    if rate > _EPS:
                        bounds.append(
                            max(1, int(engine.pending(key) / rate + _EPS))
                        )
                if bounds:
                    n = max(1, min(bounds))

            if not computing and not grants and not mac.finished:
                pending = [e.name for e in engines if not e.done]
                raise RuntimeError(
                    f"RTL simulation deadlock at t={t}, c={mac.c}; "
                    f"pending engines: {pending}"
                )

            # 5. Advance n cycles in one step (same arithmetic as n
            # single ticks — see the stride argument in the module doc).
            for key in contending:
                arbiters[key].contended_cycles += n
            for engine, key, rate in grants:
                engine.drain(key, rate * n)
                arbiters[key].busy_bits += rate * n

            if computing:
                if preload_end is None:
                    preload_end = t
                mac.issue(n)
                if mac.finished and compute_end is None:
                    compute_end = t + n
            elif not mac.finished:
                blockers = sorted({
                    e.plan.unit_memory for e in engines
                    if e.frontier is not None
                    and e.frontier.threshold <= mac.c + _EPS
                })
                mac.stall(float(n), blockers if preload_end is not None else [])
            t += n

            # 6. Retire at cycle end.
            for engine in engines:
                step = engine.maybe_retire()
                if step is not None:
                    retired[engine.name] = step.seq
                    jobs_done += 1
                    if self.trace is not None:
                        self.trace.job_finished(
                            step.engine, step.seq, float(t), step.bits
                        )

            if mac.finished and all(e.done for e in engines):
                break

        if compute_end is None:
            compute_end = t
        if preload_end is None:
            preload_end = 0
        if self.trace is not None:
            self.trace.finish(float(t))

        contended = sum(a.contended_cycles for a in arbiters.values())
        stall = max(0.0, mac.stall_cycles - float(preload_end))
        return RtlSimulationResult(
            total_cycles=float(t),
            compute_cycles=self.program.total_cycles,
            preload_cycles=float(preload_end),
            stall_cycles=stall,
            drain_tail_cycles=float(t - compute_end),
            port_busy={
                key: a.busy_bits for key, a in arbiters.items() if a.busy_bits > 0
            },
            jobs_completed=jobs_done,
            events=iterations,
            exact=self.program.integral and contended == 0.0,
            integral=self.program.integral,
            contended_port_cycles=contended,
            stall_by_memory=dict(mac.stall_by_memory),
            preload_bits=sum(
                u.bits_moved for u in units if u.direction == "preload"
            ),
            offload_bits=sum(
                u.bits_moved for u in units if u.direction == "offload"
            ),
        )
